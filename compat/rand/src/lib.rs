//! Offline shim for the subset of `rand` this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is SplitMix64 — tiny, fast, and with well-understood
//! statistical quality more than adequate for the synthetic workloads and
//! access-pattern models in this repository. It is deliberately fully
//! deterministic per seed (there is no `thread_rng`): every consumer in
//! the workspace seeds explicitly, which is what keeps the simulations and
//! tests reproducible.

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`f64` in `[0, 1)`, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform draw in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as StandardCast>::sample_cast(rng);
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

trait StandardCast {
    fn sample_cast<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_cast {
    ($($t:ty),*) => {$(
        impl StandardCast for $t {
            fn sample_cast<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }
}
