//! NUMA cost helpers for on-node data movement and buffer placement.
//!
//! Paper §III.B.3: "For NUMA machines, the algorithm not only decides
//! process-to-core binding, but also determines the placement of FlexIO's
//! internal buffers in memory. Our default policy is that the shared memory
//! data queues and buffer pools are placed into simulation processes' local
//! NUMA domain no matter where communicating analytics processes are
//! located" — favouring the producer because the simulation is the
//! performance-bounding stage of the pipeline.

use machine::{CoreLocation, NodeParams};

/// Where the shared-memory queue/pool pages live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePlacement {
    /// In the producer's (simulation's) local NUMA domain — the default.
    ProducerLocal,
    /// In the consumer's (analytics') local NUMA domain.
    ConsumerLocal,
}

/// Time to copy `bytes` between two cores' memory domains, nanoseconds.
/// Same NUMA domain uses the local copy bandwidth; cross-domain (or
/// cross-node caller bugs) use the slower remote bandwidth.
pub fn copy_time_ns(node: &NodeParams, src: CoreLocation, dst: CoreLocation, bytes: u64) -> f64 {
    assert!(src.same_node(&dst), "copy_time_ns models on-node movement only");
    let bw = if src.same_numa(&dst) { node.local_copy_bw } else { node.remote_copy_bw };
    node.shm_latency_ns + bytes as f64 / bw * 1e9
}

/// Total modelled cost of one producer→consumer transfer of `bytes`
/// through a queue placed per `placement`: the producer's copy-in plus the
/// consumer's copy-out, each local or remote depending on where the queue
/// pages are.
pub fn queue_placement_cost(
    node: &NodeParams,
    producer: CoreLocation,
    consumer: CoreLocation,
    bytes: u64,
    placement: QueuePlacement,
) -> f64 {
    assert!(producer.same_node(&consumer));
    let queue_loc = match placement {
        QueuePlacement::ProducerLocal => producer,
        QueuePlacement::ConsumerLocal => consumer,
    };
    copy_time_ns(node, producer, queue_loc, bytes) + copy_time_ns(node, queue_loc, consumer, bytes)
}

/// The NUMA domain minimizing total modelled copy cost to a set of
/// communicating endpoints — where a coupling's buffer pool (and the
/// reactor shard that polls it) should live. With a single endpoint this
/// is producer-local placement (§III.B.3); with several it's the domain
/// hosting the most traffic, bandwidth-weighted. Endpoints must share a
/// node; ties break toward the lowest domain index.
pub fn best_domain(node: &NodeParams, endpoints: &[CoreLocation], bytes: u64) -> usize {
    let Some(first) = endpoints.first() else { return 0 };
    let mut best = (0usize, f64::INFINITY);
    for domain in 0..node.numa_domains {
        let seat = CoreLocation { node: first.node, numa: domain, core: 0 };
        let cost: f64 = endpoints.iter().map(|&e| copy_time_ns(node, e, seat, bytes)).sum();
        if cost < best.1 {
            best = (domain, cost);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::smoky;

    fn cores() -> (NodeParams, CoreLocation, CoreLocation, CoreLocation) {
        let node = smoky().node;
        let producer = CoreLocation { node: 0, numa: 0, core: 0 };
        let same_numa_consumer = CoreLocation { node: 0, numa: 0, core: 3 };
        let cross_numa_consumer = CoreLocation { node: 0, numa: 2, core: 1 };
        (node, producer, same_numa_consumer, cross_numa_consumer)
    }

    #[test]
    fn local_copy_is_faster() {
        let (node, p, same, cross) = cores();
        let local = copy_time_ns(&node, p, same, 1 << 20);
        let remote = copy_time_ns(&node, p, cross, 1 << 20);
        assert!(local < remote);
    }

    #[test]
    fn producer_local_placement_favours_producer() {
        // With a cross-NUMA consumer: producer-local means copy-in is
        // local (fast) and copy-out is remote; consumer-local flips it.
        // Total is the same under a symmetric model, so compare the
        // producer-visible share instead.
        let (node, p, _, cross) = cores();
        let bytes = 1 << 20;
        let producer_in_cost_producer_local = copy_time_ns(&node, p, p, bytes);
        let producer_in_cost_consumer_local = copy_time_ns(&node, p, cross, bytes);
        assert!(producer_in_cost_producer_local < producer_in_cost_consumer_local);
        // And the symmetric totals agree.
        let t1 = queue_placement_cost(&node, p, cross, bytes, QueuePlacement::ProducerLocal);
        let t2 = queue_placement_cost(&node, p, cross, bytes, QueuePlacement::ConsumerLocal);
        assert!((t1 - t2).abs() < 1e-9);
    }

    #[test]
    fn best_domain_is_producer_local_for_one_endpoint() {
        let (node, p, _, cross) = cores();
        assert_eq!(best_domain(&node, &[p], 1 << 20), p.numa);
        assert_eq!(best_domain(&node, &[cross], 1 << 20), cross.numa);
        assert_eq!(best_domain(&node, &[], 1 << 20), 0, "no endpoints → domain 0");
    }

    #[test]
    fn best_domain_follows_the_majority_of_traffic() {
        let node = smoky().node;
        let in2 = |core| CoreLocation { node: 0, numa: 2, core };
        let lone = CoreLocation { node: 0, numa: 0, core: 0 };
        // Two endpoints in domain 2, one in domain 0: domain 2 wins.
        assert_eq!(best_domain(&node, &[in2(0), in2(1), lone], 1 << 20), 2);
    }

    #[test]
    fn same_numa_placement_is_all_local() {
        let (node, p, same, _) = cores();
        let t = queue_placement_cost(&node, p, same, 1 << 20, QueuePlacement::ProducerLocal);
        let direct = 2.0 * copy_time_ns(&node, p, same, 1 << 20);
        assert!((t - direct).abs() < 1e-9);
    }
}
