//! The paper's S3D pipeline (§IV.B): simulation → FlexIO global-array
//! redistribution → parallel volume rendering → PPM images.
//!
//! Eight S3D_Box ranks (a 2×2×2 block decomposition) output 22 species
//! arrays every ten cycles. Two analytics ranks each subscribe to a
//! Z-slab of the global volume — a different decomposition than the
//! writers', exercising the MxN redistribution of Fig. 3 — ray-cast their
//! slab, composite depth-ordered partial images, and write a PPM per
//! rendered species.
//!
//! Run with: `cargo run --example s3d_viz`

use std::thread;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use apps::s3d::{S3dBox, S3dConfig};
use apps::{composite_slabs, render_slab, write_ppm, TransferFunction};
use flexio::{CachingLevel, FlexIo, StreamHints, WriteMode};
use machine::{laptop, CoreLocation};

const SIM_RANKS: usize = 8;
const ANA_RANKS: usize = 2;
const CYCLES: u64 = 20; // → 2 output steps at interval 10
const RENDERED_SPECIES: usize = 3; // render a subset to keep output small

fn config() -> S3dConfig {
    S3dConfig { local_n: 8, nspecies: 22, output_interval: 10, proc_grid: (2, 2, 2) }
}

fn main() {
    let io = FlexIo::single_node(laptop());
    // The paper's tuned S3D movement settings (§IV.B.1): distributions
    // and addresses are stable, so cache everything, batch the 22
    // arrays, and write asynchronously.
    let hints = StreamHints {
        caching: CachingLevel::CachingAll,
        batching: true,
        write_mode: WriteMode::Async,
        ..StreamHints::default()
    };

    let io_w = io.clone();
    let hints_w = hints.clone();
    let sim = thread::spawn(move || {
        rankrt::launch_named(SIM_RANKS, "s3d", move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..SIM_RANKS).map(|r| laptop().node.location_of(r)).collect();
            let mut writer = io_w
                .open_writer("s3d.species", rank, SIM_RANKS, roster[rank], roster, hints_w.clone())
                .expect("open writer");
            let mut sim = S3dBox::new(rank, config());
            for _ in 0..CYCLES {
                sim.step();
                if sim.should_output() {
                    writer.begin_step(sim.cycle());
                    for (name, value) in sim.output_vars() {
                        writer.write(&name, value);
                    }
                    writer.end_step();
                }
            }
            writer.close();
        })
    });

    let io_r = io.clone();
    let ana = thread::spawn(move || {
        rankrt::launch_named(ANA_RANKS, "viz", move |comm| {
            let rank = comm.rank();
            let cfg = config();
            let [gx, gy, gz] = cfg.global_shape();
            let roster: Vec<CoreLocation> =
                (0..ANA_RANKS).map(|r| laptop().node.location_of(15 - r)).collect();
            let mut reader = io_r
                .open_reader("s3d.species", rank, ANA_RANKS, roster[rank], roster, hints.clone())
                .expect("open reader");
            // Z-slab decomposition: rank 0 takes the near half, rank 1
            // the far half — nothing like the writers' 2×2×2 blocks.
            let slab_z = gz / ANA_RANKS as u64;
            let my_slab = BoxSel::new(vec![0, 0, rank as u64 * slab_z], vec![gx, gy, slab_z]);
            for s in 0..RENDERED_SPECIES {
                reader.subscribe(&format!("species{s:02}"), Selection::GlobalBox(my_slab.clone()));
            }
            let tf = TransferFunction { lo: 0.2, hi: 0.9, opacity: 0.25 };
            let dir = std::env::temp_dir().join("flexio-s3d-viz");
            std::fs::create_dir_all(&dir).expect("outdir");
            let mut images = 0usize;
            loop {
                match reader.begin_step() {
                    StepStatus::Step(step) => {
                        for s in 0..RENDERED_SPECIES {
                            let name = format!("species{s:02}");
                            let v = reader
                                .read(&name, &Selection::GlobalBox(my_slab.clone()))
                                .expect("slab assembled");
                            let VarValue::Block(block) = v else { unreachable!() };
                            let partial = render_slab(&block, &tf);
                            // Gather partial images at rank 0 in depth
                            // order and composite.
                            let mine: Vec<f64> = partial.pixels.iter().map(|&p| p as f64).collect();
                            let gathered = comm.gather(0, &rankrt::f64s_as_bytes(&mine));
                            if let Some(parts) = gathered {
                                let slabs: Vec<apps::Image> = parts
                                    .iter()
                                    .map(|bytes| apps::Image {
                                        width: gx as usize,
                                        height: gy as usize,
                                        pixels: rankrt::bytes_as_f64s(bytes)
                                            .into_iter()
                                            .map(|p| p as f32)
                                            .collect(),
                                    })
                                    .collect();
                                let composed = composite_slabs(&slabs);
                                let ppm = write_ppm(&composed);
                                let path = dir.join(format!("step{step}_{name}.ppm"));
                                std::fs::write(&path, &ppm).expect("write ppm");
                                images += 1;
                                println!(
                                    "rendered {} ({}x{}, coverage {:.2})",
                                    path.display(),
                                    gx,
                                    gy,
                                    composed.coverage()
                                );
                            }
                        }
                        reader.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            images
        })
    });

    sim.join().expect("sim");
    let images = ana.join().expect("viz");
    assert_eq!(images[0], 2 * RENDERED_SPECIES, "rank 0 writes all images");
    println!("S3D visualization pipeline complete: {} images.", images[0]);
}
