//! Differential oracle: the vectorized executor and the naive
//! row-at-a-time evaluator must produce bit-identical outputs over
//! random dtypes, shapes (owned and packed chunk views, multiple
//! writers, multiple steps) and plans (filters of varying depth,
//! aggregates, windows, limits).

use adios::ArrayData;
use evpath::ffs::PackedArray;
use flexio_query::{AggFunc, ChunkView, Executor, Expr, NaiveExecutor, Plan, QueryOutput};
use proptest::collection::vec;
use proptest::prelude::*;

/// Interesting f64 payloads: ordinary values plus the IEEE edge cases
/// (signed zero, NaN, infinities, subnormals) that would expose any
/// semantic gap between the two evaluators.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u64..2000).prop_map(|i| (i as f64 - 1000.0) / 100.0),
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(5e-324),
        Just(1e100),
    ]
}

/// One column's data with a fixed logical dtype (`0..4`: f64, u64,
/// i64, u8) in a random physical representation — owned or a packed
/// zero-copy view, chosen per chunk. The dtype is chosen once per
/// stream (a variable keeps one dtype across writers and steps), but
/// representation may vary chunk to chunk, exactly as on a live stream
/// where small chunks arrive owned and large ones packed.
fn arb_column(dtype: u8, len: usize) -> BoxedStrategy<ArrayData> {
    match dtype {
        0 => (vec(arb_f64(), len..=len), any::<bool>())
            .prop_map(|(v, packed)| {
                if packed {
                    ArrayData::Packed(PackedArray::from_f64s(&v))
                } else {
                    ArrayData::F64(v)
                }
            })
            .boxed(),
        1 => (vec(0u64..5000, len..=len), any::<bool>())
            .prop_map(|(v, packed)| {
                if packed {
                    ArrayData::Packed(PackedArray::from_u64s(&v))
                } else {
                    ArrayData::U64(v)
                }
            })
            .boxed(),
        2 => (vec(-2500i64..2500, len..=len), any::<bool>())
            .prop_map(|(v, packed)| {
                if packed {
                    ArrayData::Packed(PackedArray::from_i64s(&v))
                } else {
                    ArrayData::I64(v)
                }
            })
            .boxed(),
        _ => (vec(0u64..256, len..=len), any::<bool>())
            .prop_map(|(v, packed)| {
                let bytes: Vec<u8> = v.into_iter().map(|x| x as u8).collect();
                if packed {
                    ArrayData::Packed(PackedArray::from_bytes(&bytes))
                } else {
                    ArrayData::U8(bytes)
                }
            })
            .boxed(),
    }
}

/// A random predicate over columns `c0`/`c1` with nested arithmetic and
/// boolean structure, depth-bounded.
fn arb_pred(depth: u32) -> BoxedStrategy<Expr> {
    let leaf_num = prop_oneof![
        Just(Expr::col("c0")),
        Just(Expr::col("c1")),
        (0u64..400).prop_map(|i| Expr::lit((i as f64 - 200.0) / 20.0)),
    ];
    let num = if depth == 0 {
        leaf_num.boxed()
    } else {
        let inner = arb_num(depth - 1);
        prop_oneof![
            leaf_num,
            (inner.clone(), inner.clone(), 0u8..4).prop_map(|(a, b, op)| match op {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                _ => a.div(b),
            }),
        ]
        .boxed()
    };
    let cmp = (num.clone(), num, 0u8..6).prop_map(|(a, b, op)| match op {
        0 => a.lt(b),
        1 => a.le(b),
        2 => a.gt(b),
        3 => a.ge(b),
        4 => a.eq(b),
        _ => a.ne(b),
    });
    if depth == 0 {
        cmp.boxed()
    } else {
        let sub = arb_pred(depth - 1);
        prop_oneof![
            cmp,
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.or(b)),
            sub.prop_map(|a| a.not()),
        ]
        .boxed()
    }
}

fn arb_num(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::col("c0")),
        Just(Expr::col("c1")),
        (0u64..400).prop_map(|i| Expr::lit((i as f64 - 200.0) / 20.0)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = arb_num(depth - 1);
        prop_oneof![
            leaf,
            (inner.clone(), inner, 0u8..4).prop_map(|(a, b, op)| match op {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                _ => a.div(b),
            }),
        ]
        .boxed()
    }
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let agg = prop_oneof![
        Just(None),
        (0u8..5, 0u8..2).prop_map(|(f, c)| {
            let func = match f {
                0 => AggFunc::Sum,
                1 => AggFunc::Min,
                2 => AggFunc::Max,
                3 => AggFunc::Mean,
                _ => AggFunc::Count,
            };
            Some((func, if c == 0 { "c0" } else { "c1" }))
        }),
    ];
    let filter = prop_oneof![Just(None), arb_pred(2).prop_map(Some)];
    (filter, agg, 0u64..4, 0u64..30).prop_map(|(filter, agg, window, limit)| {
        let mut plan = Plan::select(&["c0", "c1"]);
        if let Some(f) = filter {
            plan = plan.filter(f);
        }
        if let Some((func, col)) = agg {
            plan = plan.aggregate(func, col).window(window);
        } else {
            plan = plan.limit(limit);
        }
        plan
    })
}

/// Steps × writers of two-column chunks with varying lengths and
/// physical representations; each column's dtype is fixed stream-wide.
fn arb_stream() -> impl Strategy<Value = Vec<Vec<(ArrayData, ArrayData)>>> {
    (0u8..4, 0u8..4).prop_flat_map(|(d0, d1)| {
        vec(
            vec((0usize..12).prop_flat_map(move |n| (arb_column(d0, n), arb_column(d1, n))), 1..3),
            1..4,
        )
    })
}

fn run_both(plan: &Plan, stream: &[Vec<(ArrayData, ArrayData)>]) -> (QueryOutput, QueryOutput) {
    let mut vx = Executor::new(plan.clone()).expect("valid plan");
    let mut nx = NaiveExecutor::new(plan.clone()).expect("valid plan");
    for (step, writers) in stream.iter().enumerate() {
        let chunks: Vec<ChunkView<'_>> =
            writers.iter().map(|(a, b)| ChunkView::raw(vec![a, b])).collect();
        let chunks2: Vec<ChunkView<'_>> =
            writers.iter().map(|(a, b)| ChunkView::raw(vec![a, b])).collect();
        let sv = vx.feed_step(step as u64, &chunks);
        let sn = nx.feed_step(step as u64, &chunks2);
        assert_eq!(sv, sn, "per-step stats diverged at step {step}");
    }
    (vx.finish(), nx.finish())
}

proptest! {
    /// The headline differential property: for any plan and any stream
    /// shape, vectorized ≡ naive bit-exactly.
    #[test]
    fn vectorized_equals_naive(plan in arb_plan(), stream in arb_stream()) {
        prop_assume!(plan.validate().is_ok());
        let (v, n) = run_both(&plan, &stream);
        prop_assert_eq!(v.digest(), n.digest(), "outputs diverged:\n vec: {:?}\n naive: {:?}", v, n);
    }

    /// Pre-filtered (writer-conditioned) chunks short-circuit both
    /// executors identically.
    #[test]
    fn conditioned_chunks_agree(data in vec(arb_f64(), 0..32), rows_in in 0u64..100) {
        let plan = Plan::select(&["c0"]).filter(Expr::col("c0").lt(Expr::lit(0.5)));
        let col = ArrayData::F64(data.clone());
        let mut vx = Executor::new(plan.clone()).unwrap();
        let mut nx = NaiveExecutor::new(plan).unwrap();
        let sv = vx.feed_step(0, &[ChunkView::conditioned(vec![&col], rows_in)]);
        let sn = nx.feed_step(0, &[ChunkView::conditioned(vec![&col], rows_in)]);
        prop_assert_eq!(sv, sn);
        prop_assert_eq!(sv.rows_in, rows_in);
        prop_assert_eq!(vx.finish().digest(), nx.finish().digest());
    }
}

/// Packed views must flow through the vectorized path without ever
/// being materialized — spot-check that a packed chunk and its owned
/// twin produce identical digests (covering the widening loops).
#[test]
fn packed_and_owned_twins_digest_equal() {
    let vals: Vec<f64> = (0..257).map(|i| (i as f64) * 0.25 - 32.0).collect();
    let owned = ArrayData::F64(vals.clone());
    let packed = ArrayData::Packed(PackedArray::from_f64s(&vals));
    let keys: Vec<u64> = (0..257).collect();
    let owned_k = ArrayData::U64(keys.clone());
    let packed_k = ArrayData::Packed(PackedArray::from_u64s(&keys));
    let plan = Plan::select(&["c0", "c1"])
        .filter(Expr::col("c1").lt(Expr::lit(10.0)).and(Expr::col("c0").ge(Expr::lit(8.0))));
    let mut a = Executor::new(plan.clone()).unwrap();
    let mut b = Executor::new(plan).unwrap();
    a.feed_step(0, &[ChunkView::raw(vec![&owned_k, &owned])]);
    b.feed_step(0, &[ChunkView::raw(vec![&packed_k, &packed])]);
    let (ra, rb) = (a.finish(), b.finish());
    // Same survivors, same bits — only the physical representation of
    // the output columns (always owned) could differ, and it must not.
    assert_eq!(ra.digest(), rb.digest());
    assert!(ra.rows() > 0, "filter should keep some rows");
}
