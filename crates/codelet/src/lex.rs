//! Lexer for the codelet language.

/// A lexical token with its source position (byte offset, for errors).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source where the token starts.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Identifier.
    Ident(String),
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `true`
    True,
    /// `false`
    False,
    /// `return`
    Return,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `!`
    Not,
    /// `..`
    DotDot,
    /// End of input.
    Eof,
}

/// Lexing error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string. Line (`//`) comments are skipped.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A '.' starts a float only if followed by a digit ( `0..n`
                // must lex as Int DotDot Ident ).
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    // Optional exponent.
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].is_ascii_digit() {
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &source[start..i];
                    let value = text.parse().map_err(|_| LexError {
                        message: format!("bad float literal `{text}`"),
                        offset: start,
                    })?;
                    tokens.push(Token { kind: TokenKind::Float(value), offset: start });
                } else {
                    let text = &source[start..i];
                    let value = text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal `{text}`"),
                        offset: start,
                    })?;
                    tokens.push(Token { kind: TokenKind::Int(value), offset: start });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = match word {
                    "let" => TokenKind::Let,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "return" => TokenKind::Return,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, offset: start });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".to_string(),
                            offset: start,
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            match bytes.get(i) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                other => {
                                    return Err(LexError {
                                        message: format!("bad escape {other:?}"),
                                        offset: i,
                                    })
                                }
                            }
                            i += 1;
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            _ => {
                let start = i;
                let two = if i + 1 < bytes.len() { &source[i..i + 2] } else { "" };
                let (kind, advance) = match two {
                    "==" => (TokenKind::Eq, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "&&" => (TokenKind::And, 2),
                    "||" => (TokenKind::Or, 2),
                    ".." => (TokenKind::DotDot, 2),
                    _ => match c {
                        b'(' => (TokenKind::LParen, 1),
                        b')' => (TokenKind::RParen, 1),
                        b'{' => (TokenKind::LBrace, 1),
                        b'}' => (TokenKind::RBrace, 1),
                        b'[' => (TokenKind::LBracket, 1),
                        b']' => (TokenKind::RBracket, 1),
                        b',' => (TokenKind::Comma, 1),
                        b';' => (TokenKind::Semi, 1),
                        b'=' => (TokenKind::Assign, 1),
                        b'+' => (TokenKind::Plus, 1),
                        b'-' => (TokenKind::Minus, 1),
                        b'*' => (TokenKind::Star, 1),
                        b'/' => (TokenKind::Slash, 1),
                        b'%' => (TokenKind::Percent, 1),
                        b'<' => (TokenKind::Lt, 1),
                        b'>' => (TokenKind::Gt, 1),
                        b'!' => (TokenKind::Not, 1),
                        other => {
                            return Err(LexError {
                                message: format!("unexpected character `{}`", other as char),
                                offset: start,
                            })
                        }
                    },
                };
                tokens.push(Token { kind, offset: start });
                i += advance;
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: source.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("0..10"),
            vec![TokenKind::Int(0), TokenKind::DotDot, TokenKind::Int(10), TokenKind::Eof]
        );
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5), TokenKind::Eof]);
        assert_eq!(kinds("1e3")[0], TokenKind::Int(1)); // exponent needs a '.'
        assert_eq!(kinds("1.5e3")[0], TokenKind::Float(1500.0));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("let form in_ if0"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("form".into()),
                TokenKind::Ident("in_".into()),
                TokenKind::Ident("if0".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb\"c""#), vec![TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 // comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || ="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Assign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("let x = @").unwrap_err();
        assert_eq!(err.offset, 8);
        let err = tokenize("\"unterminated").unwrap_err();
        assert_eq!(err.offset, 0);
    }
}
