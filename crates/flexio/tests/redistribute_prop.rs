//! Property tests on the MxN transfer planner: for arbitrary writer
//! decompositions and reader selections, the plan moves every needed
//! element exactly once and both sides compute identical expectations.

use adios::{ArrayData, BoxSel, LocalBlock, Selection, VarValue};
use flexio::redistribute::{
    expected_messages, extract_block_chunk, plan, BoxAssembler, Subscription, VarMeta,
};
use proptest::prelude::*;

const GLOBAL: u64 = 24;

/// A random contiguous 1-D decomposition of [0, GLOBAL) into `n` blocks.
fn arb_decomposition(n: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(1u64..=4, n - 1).prop_map(move |weights| {
        // Split points from cumulative weights, normalized to GLOBAL.
        let total: u64 = weights.iter().sum::<u64>() + 1;
        let mut cuts: Vec<u64> = weights
            .iter()
            .scan(0u64, |acc, w| {
                *acc += w;
                Some(*acc * GLOBAL / total)
            })
            .collect();
        cuts.dedup();
        let mut blocks = Vec::new();
        let mut prev = 0;
        for cut in cuts.into_iter().chain(std::iter::once(GLOBAL)) {
            if cut > prev {
                blocks.push((prev, cut - prev));
                prev = cut;
            }
        }
        blocks
    })
}

fn arb_reader_boxes(n: usize) -> impl Strategy<Value = Vec<BoxSel>> {
    proptest::collection::vec((0u64..GLOBAL, 1u64..=GLOBAL), n).prop_map(|raw| {
        raw.into_iter().map(|(o, c)| BoxSel::new(vec![o], vec![c.min(GLOBAL - o)])).collect()
    })
}

fn writer_blocks(decomp: &[(u64, u64)]) -> Vec<LocalBlock> {
    decomp
        .iter()
        .map(|&(offset, count)| {
            LocalBlock {
                global_shape: vec![GLOBAL],
                offset: vec![offset],
                count: vec![count],
                data: ArrayData::F64((offset..offset + count).map(|g| g as f64).collect()),
            }
            .validated()
        })
        .collect()
}

proptest! {
    /// Every element a reader selected arrives exactly once, with the
    /// right value, for arbitrary writer/reader decompositions.
    #[test]
    fn plan_covers_selections_exactly_once(
        decomp in arb_decomposition(4),
        boxes in arb_reader_boxes(3),
    ) {
        let blocks = writer_blocks(&decomp);
        let dists: Vec<Vec<VarMeta>> = blocks
            .iter()
            .map(|b| vec![VarMeta::of("v", &VarValue::Block(b.clone()))])
            .collect();
        let sels: Vec<Vec<Subscription>> = boxes
            .iter()
            .map(|b| vec![Subscription { var: "v".into(), sel: Selection::GlobalBox(b.clone()) }])
            .collect();
        let p = plan(&dists, &sels);
        for (r, want) in boxes.iter().enumerate() {
            let mut asm = BoxAssembler::new(want, &blocks[0]);
            for (w, block) in blocks.iter().enumerate() {
                for cp in &p[w][r] {
                    let chunk = extract_block_chunk(block, cp);
                    asm.add(&chunk);
                }
            }
            // Exactly-once delivery: received element count equals the
            // selection size (no gaps, no duplicates).
            prop_assert_eq!(asm.received_elements(), want.num_elements());
            let out = asm.finish();
            for (i, &v) in out.data.as_f64().iter().enumerate() {
                prop_assert_eq!(v, (want.offset[0] + i as u64) as f64);
            }
        }
    }

    /// Writer-side and reader-side message expectations agree for any
    /// batching setting (the invariant that lets both sides run the
    /// planner independently with no per-chunk negotiation).
    #[test]
    fn both_sides_expect_the_same_messages(
        decomp in arb_decomposition(5),
        boxes in arb_reader_boxes(2),
        batching in any::<bool>(),
    ) {
        let blocks = writer_blocks(&decomp);
        let dists: Vec<Vec<VarMeta>> = blocks
            .iter()
            .map(|b| vec![VarMeta::of("v", &VarValue::Block(b.clone()))])
            .collect();
        let sels: Vec<Vec<Subscription>> = boxes
            .iter()
            .map(|b| vec![Subscription { var: "v".into(), sel: Selection::GlobalBox(b.clone()) }])
            .collect();
        // Both sides run the same deterministic function — assert the
        // planner itself is deterministic and consistent per pair.
        let p1 = plan(&dists, &sels);
        let p2 = plan(&dists, &sels);
        prop_assert_eq!(&p1, &p2);
        for w in 0..dists.len() {
            for r in 0..sels.len() {
                let writer_sends = expected_messages(&p1[w][r], batching);
                let reader_expects = expected_messages(&p2[w][r], batching);
                prop_assert_eq!(writer_sends, reader_expects);
            }
        }
    }

    /// Chunks planned for different readers of non-overlapping boxes are
    /// disjoint per writer (no data amplification beyond selection overlap).
    #[test]
    fn disjoint_readers_get_disjoint_chunks(decomp in arb_decomposition(3)) {
        let blocks = writer_blocks(&decomp);
        let dists: Vec<Vec<VarMeta>> = blocks
            .iter()
            .map(|b| vec![VarMeta::of("v", &VarValue::Block(b.clone()))])
            .collect();
        let half = GLOBAL / 2;
        let sels: Vec<Vec<Subscription>> = [
            BoxSel::new(vec![0], vec![half]),
            BoxSel::new(vec![half], vec![GLOBAL - half]),
        ]
        .iter()
        .map(|b| vec![Subscription { var: "v".into(), sel: Selection::GlobalBox(b.clone()) }])
        .collect();
        let p = plan(&dists, &sels);
        let mut moved = 0u64;
        for row in &p {
            for chunks in row {
                for c in chunks {
                    moved += c.region.as_ref().map_or(0, |r| r.num_elements());
                }
            }
        }
        // Disjoint covering readers: every element moves exactly once.
        prop_assert_eq!(moved, GLOBAL);
    }
}
