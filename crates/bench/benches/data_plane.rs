//! **Data plane** — end-to-end steps/s and GB/s for the zero-copy data
//! path, swept over payload size × transport × batching.
//!
//! Each configuration runs a 1-writer/1-reader stream over the real
//! writer/reader engines: the writer marshals a block with the packed
//! bulk encoding and ships it with scatter-gather sends; the reader
//! decodes zero-copy views out of the shared receive buffer. Transport
//! is selected by placement exactly as in production: same core →
//! in-process, same node/different core → shared memory (2-copy pooled
//! path for large payloads).
//!
//! The `baseline` entry measures the pre-change marshaling path — the
//! legacy per-element encode plus a full owned decode — on a 64 MiB
//! payload, so the JSON records the speedup of the packed data plane
//! over per-element marshaling on the same machine.
//!
//! Results land in `BENCH_data_plane.json` at the repo root and the
//! summary JSON is printed to stdout (one line, machine-parsable).
//!
//! Run with `cargo bench --bench data_plane`. Set `DATA_PLANE_QUICK=1`
//! to shrink step counts for smoke runs.

use std::thread;
use std::time::Instant;

use adios::{
    ArrayData, BoxSel, LocalBlock, ReadEngine, Selection, StepStatus, VarValue, WriteEngine,
};
use evpath::{FieldValue, PackedArray, Record};
use flexio::{CachingLevel, FlexIo, StreamHints};
use machine::laptop;

const MIB: usize = 1 << 20;
const KIB: usize = 1 << 10;
const BASELINE_BYTES: usize = 64 * MIB;

struct RunResult {
    payload_bytes: usize,
    transport: &'static str,
    batching: bool,
    steps: u64,
    elapsed_s: f64,
}

impl RunResult {
    fn steps_per_s(&self) -> f64 {
        self.steps as f64 / self.elapsed_s
    }

    fn gbps(&self) -> f64 {
        (self.steps as f64 * self.payload_bytes as f64) / self.elapsed_s / 1e9
    }
}

/// One writer rank streams `steps` blocks of `payload_bytes` doubles to
/// one reader rank; returns wall time including stream open/close.
///
/// `packed: true` is the post-change plane: the producer hands a packed
/// payload and the stream uses bulk marshaling, scatter-gather sends and
/// zero-copy decode. `packed: false` is the pre-change baseline: owned
/// `Vec<f64>` payloads, per-element legacy encode, flat sends, owned
/// decode (the `packed_marshal: false` hint).
fn run_stream(
    payload_bytes: usize,
    transport: &'static str,
    batching: bool,
    packed: bool,
    steps: u64,
) -> f64 {
    let elems = payload_bytes / 8;
    let io = FlexIo::single_node(laptop());
    let hints = StreamHints {
        batching,
        caching: CachingLevel::CachingAll,
        packed_marshal: packed,
        ..StreamHints::default()
    };
    let writer_core = laptop().node.location_of(0);
    // Same core → inproc transport; another core on the node → shm.
    let reader_core = match transport {
        "inproc" => writer_core,
        "shm" => laptop().node.location_of(8),
        other => panic!("unknown transport {other}"),
    };

    let io_w = io.clone();
    let io_r = io;
    let hints_w = hints.clone();
    // The packed producer hands the data plane a packed payload, built
    // once outside the timed region: per-step writes then cost an Arc
    // bump, and the only payload copies measured are the transport's own
    // (one flatten for inproc, the 2-copy pooled path for shm). The
    // legacy producer keeps owned vectors, so each step's write deep
    // clones — the cost the pre-change plane always paid.
    let base: Vec<f64> = (0..elems).map(|i| i as f64).collect();
    let data = if packed {
        ArrayData::Packed(PackedArray::from_f64s(&base))
    } else {
        ArrayData::F64(base.clone())
    };
    let template = VarValue::Block(
        LocalBlock {
            global_shape: vec![elems as u64],
            offset: vec![0],
            count: vec![elems as u64],
            data,
        }
        .validated(),
    );
    drop(base);
    let start = Instant::now();
    let wt = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let mut w = io_w
                .open_writer("data_plane", 0, 1, writer_core, vec![writer_core], hints_w.clone())
                .unwrap();
            for step in 0..steps {
                w.begin_step(step);
                w.write("u", template.clone());
                w.end_step();
            }
            w.close();
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let mut r = io_r
                .open_reader("data_plane", 0, 1, reader_core, vec![reader_core], hints.clone())
                .unwrap();
            r.subscribe("u", Selection::GlobalBox(BoxSel::whole(&[elems as u64])));
            let mut seen = 0u64;
            while let StepStatus::Step(_) = r.begin_step() {
                if seen == 0 {
                    // Correctness spot-check on the first step only, so
                    // assembly cost doesn't dominate the transport numbers.
                    let got = r
                        .read("u", &Selection::GlobalBox(BoxSel::whole(&[elems as u64])))
                        .expect("first step readable");
                    if let VarValue::Block(b) = got {
                        assert_eq!(b.data.len(), elems);
                    }
                }
                seen += 1;
                r.end_step();
            }
            assert_eq!(seen, steps);
            r.close();
        })
    });
    wt.join().unwrap();
    rt.join().unwrap();
    start.elapsed().as_secs_f64()
}

/// Marshal-only context number: legacy per-element encode + owned decode
/// roundtrip of a `BASELINE_BYTES` record. Returns GB/s over the payload.
fn legacy_marshal_gbps() -> f64 {
    let elems = BASELINE_BYTES / 8;
    let data: Vec<f64> = (0..elems).map(|i| i as f64).collect();
    let rec = Record::new().with("step", FieldValue::U64(0)).with("u", FieldValue::F64Array(data));
    let iters = 3;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let wire = rec.encode_legacy();
        let back = Record::decode(&wire).expect("legacy decode");
        assert_eq!(back.get_f64_array("u").map(|a| a.len()), Some(elems));
        best = best.min(t.elapsed().as_secs_f64());
    }
    BASELINE_BYTES as f64 / best / 1e9
}

fn main() {
    // `cargo bench` passes --bench; `cargo test --benches` passes --test
    // style flags. Only run the sweep for the real bench invocation.
    if std::env::args().any(|a| a == "--test") {
        println!("data_plane: skipped under test harness");
        return;
    }
    let quick = std::env::var("DATA_PLANE_QUICK").is_ok();
    // (payload bytes, steps) — step counts scale down with size so every
    // configuration moves a comparable total volume.
    let sizes: Vec<(usize, u64)> = vec![
        (4 * KIB, if quick { 20 } else { 200 }),
        (64 * KIB, if quick { 10 } else { 100 }),
        (MIB, if quick { 6 } else { 48 }),
        (64 * MIB, if quick { 2 } else { 6 }),
    ];

    eprintln!("data_plane: marshal-only legacy roundtrip (context)...");
    let marshal_gbps = legacy_marshal_gbps();
    eprintln!("data_plane: legacy marshal roundtrip {marshal_gbps:.3} GB/s");

    // Baseline: the full pre-change data plane — owned payloads,
    // per-element encode, flat send, owned decode — end to end over the
    // same 64 MiB shm stream the packed plane is judged on.
    let base_steps = sizes.last().unwrap().1;
    let baseline = {
        let elapsed_s = run_stream(BASELINE_BYTES, "shm", true, false, base_steps);
        RunResult {
            payload_bytes: BASELINE_BYTES,
            transport: "shm",
            batching: true,
            steps: base_steps,
            elapsed_s,
        }
    };
    eprintln!(
        "data_plane: baseline (per-element plane, 64 MiB shm) {:8.1} steps/s  {:7.3} GB/s",
        baseline.steps_per_s(),
        baseline.gbps()
    );

    let mut results: Vec<RunResult> = Vec::new();
    for &(payload_bytes, steps) in &sizes {
        for transport in ["inproc", "shm"] {
            for batching in [false, true] {
                let elapsed_s = run_stream(payload_bytes, transport, batching, true, steps);
                let r = RunResult { payload_bytes, transport, batching, steps, elapsed_s };
                eprintln!(
                    "data_plane: {:>10} B  {:6}  batching={:5}  {:8.1} steps/s  {:7.3} GB/s",
                    r.payload_bytes,
                    r.transport,
                    r.batching,
                    r.steps_per_s(),
                    r.gbps()
                );
                results.push(r);
            }
        }
    }

    let best_64m_shm = results
        .iter()
        .filter(|r| r.payload_bytes == 64 * MIB && r.transport == "shm")
        .map(|r| r.gbps())
        .fold(0.0f64, f64::max);
    let speedup = best_64m_shm / baseline.gbps();

    let mut rep = bench::report::Report::new("data_plane")
        .obj(
            "baseline",
            bench::report::Obj::new()
                .str("path", "per_element_encode_flat_send")
                .u64("payload_bytes", BASELINE_BYTES as u64)
                .str("transport", "shm")
                .bool("batching", true)
                .u64("steps", baseline.steps)
                .f64("steps_per_s", baseline.steps_per_s(), 3)
                .f64("gbps", baseline.gbps(), 4),
        )
        .f64("legacy_marshal_roundtrip_gbps", marshal_gbps, 4)
        .f64("speedup_64mib_shm_vs_baseline", speedup, 2);
    for r in &results {
        rep.push(
            bench::report::Obj::new()
                .u64("payload_bytes", r.payload_bytes as u64)
                .str("transport", r.transport)
                .bool("batching", r.batching)
                .u64("steps", r.steps)
                .f64("elapsed_s", r.elapsed_s, 6)
                .f64("steps_per_s", r.steps_per_s(), 3)
                .f64("gbps", r.gbps(), 4),
        );
    }
    rep.write();
    eprintln!("data_plane: 64 MiB shm is {speedup:.2}x the per-element baseline");
}
