//! Fleet equivalence: sharding couplings over a multi-core reactor fleet
//! must be protocol-invisible. The same coupled program, the same fault
//! seed, the same data — run on the blocking thread-per-stream backend,
//! on the single-threaded reactor, and sharded across a [`ReactorFleet`]
//! of worker cores — must land on byte-identical protocol counters,
//! fault schedules and application data. Parallelism may only change
//! *when* engines get polled, never *what* they say on the wire.
//!
//! [`ReactorFleet`]: flexio_reactor::ReactorFleet

mod common;

use std::sync::Arc;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::{block_1d, couple, reader_core, reader_roster, writer_core, writer_roster};
use evpath::{FaultPlan, FaultSpec};
use flexio::{CachingLevel, FleetRuntime, FlexIo, Runtime, StreamHints, WriteMode};
use machine::laptop;
use parking_lot::Mutex;

const WRITERS: usize = 3;
const READERS: usize = 2;
const STEPS: u64 = 3;

/// Everything about a run that must be backend-independent. `retries` is
/// timing dependent (how often a wait loop wakes before the message
/// lands differs between a parked thread, a paced poll and a fleet
/// shard) and is deliberately excluded; every protocol message, fault
/// decision and healing action is not.
#[derive(Debug, PartialEq)]
struct RunSignature {
    protocol: (u64, u64, u64, u64, u64, u64, u64),
    dup_msgs: u64,
    reorder_healed: u64,
    drops_observed: u64,
    eos_synthesized: u64,
    evictions: u64,
    faults: (u64, u64, u64, u64, u64, u64, u64),
    data: Vec<Vec<f64>>,
}

fn hints_for(runtime: Runtime, write_mode: WriteMode, plan: &Arc<FaultPlan>) -> StreamHints {
    StreamHints {
        write_mode,
        caching: CachingLevel::CachingAll,
        faults: Some(Arc::clone(plan)),
        runtime,
        ..StreamHints::default()
    }
}

fn faulty_plan(seed: u64) -> Arc<FaultPlan> {
    let mut plan = FaultPlan::new(seed);
    plan.set(
        "data",
        FaultSpec { dup_per_mille: 500, reorder_per_mille: 500, ..Default::default() },
    );
    Arc::new(plan)
}

fn signature(
    link: &flexio::ProtocolCounters,
    plan: &FaultPlan,
    data: Vec<Vec<f64>>,
) -> RunSignature {
    let (_retries, dup_msgs, reorder_healed, drops_observed, eos_synthesized, evictions, _) =
        link.resilience_snapshot();
    RunSignature {
        protocol: link.snapshot(),
        dup_msgs,
        reorder_healed,
        drops_observed,
        eos_synthesized,
        evictions,
        faults: plan.counters().snapshot(),
        data,
    }
}

/// One run on a thread-per-rank backend (blocking or single-threaded
/// reactor, per the runtime hint) through the shared `couple` harness.
fn run_threaded(plan: Arc<FaultPlan>, runtime: Runtime, write_mode: WriteMode) -> RunSignature {
    let hints = hints_for(runtime, write_mode, &plan);
    let (links, reads) = couple(
        WRITERS,
        READERS,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 12));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        move |mut r, rank| {
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            r.subscribe("field", Selection::GlobalBox(my_box.clone()));
            let mut seen: Vec<f64> = Vec::new();
            loop {
                match r.begin_step() {
                    StepStatus::Step(_) => {
                        let v = r.read("field", &Selection::GlobalBox(my_box.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        seen.extend_from_slice(b.data.as_f64());
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            seen
        },
    );
    signature(&links[0].counters, &plan, reads)
}

/// The same coupled program sharded over a reactor fleet: every rank's
/// engine is a `Send` future spawned near its endpoint core, polled by
/// whichever worker thread owns its shard.
fn run_fleet(plan: Arc<FaultPlan>, threads: usize, write_mode: WriteMode) -> RunSignature {
    let hints = hints_for(Runtime::Reactor, write_mode, &plan);
    let io = FlexIo::new(laptop(), 4);
    let fleet = FleetRuntime::new(&laptop(), threads);

    let coordinator_link = Arc::new(Mutex::new(None));
    for rank in 0..WRITERS {
        let io = io.clone();
        let hints = hints.clone();
        let keep = Arc::clone(&coordinator_link);
        fleet.spawn_for(&[writer_core(rank)], async move {
            let mut w = io
                .open_writer_rt(
                    "stream",
                    rank,
                    WRITERS,
                    writer_core(rank),
                    writer_roster(WRITERS),
                    hints,
                )
                .await
                .expect("open writer");
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 12));
                w.end_step_rt().await.expect("end_step");
            }
            if rank == 0 {
                *keep.lock() = Some(w.link().clone());
            }
            w.close();
        });
    }

    let reads = Arc::new(Mutex::new(vec![Vec::new(); READERS]));
    for rank in 0..READERS {
        let io = io.clone();
        let hints = hints.clone();
        let reads = Arc::clone(&reads);
        fleet.spawn_for(&[reader_core(rank)], async move {
            let mut r = io
                .open_reader_rt(
                    "stream",
                    rank,
                    READERS,
                    reader_core(rank),
                    reader_roster(READERS),
                    hints,
                )
                .await
                .expect("open reader");
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            r.subscribe("field", Selection::GlobalBox(my_box.clone()));
            let mut seen: Vec<f64> = Vec::new();
            loop {
                match r.begin_step_rt().await.expect("begin_step") {
                    StepStatus::Step(_) => {
                        let v = r.read("field", &Selection::GlobalBox(my_box.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        seen.extend_from_slice(b.data.as_f64());
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            reads.lock()[rank] = seen;
        });
    }

    fleet.join();
    let link = coordinator_link.lock().take().expect("writer 0 kept its link");
    let reads = Arc::try_unwrap(reads).expect("fleet joined").into_inner();
    signature(&link.counters, &plan, reads)
}

#[test]
fn fleet_matches_both_single_threaded_backends_byte_for_byte() {
    let seed =
        std::env::var("FLEXIO_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBACCE4D);
    let blocking = run_threaded(faulty_plan(seed), Runtime::Blocking, WriteMode::default());
    let reactor = run_threaded(faulty_plan(seed), Runtime::Reactor, WriteMode::default());
    let fleet = run_fleet(faulty_plan(seed), 4, WriteMode::default());
    assert_eq!(
        reactor, fleet,
        "seed {seed}: sharding over a fleet changed observable protocol behavior"
    );
    assert_eq!(blocking, fleet, "seed {seed}: fleet diverged from the blocking backend");
    // Non-vacuous: the equivalence must hold *through* an active fault
    // schedule, not on a quiet channel.
    let (_, duplicated, reordered, ..) = fleet.faults;
    assert!(duplicated + reordered > 0, "seed {seed} injected nothing");
}

#[test]
fn fleet_equivalence_holds_across_the_mode_matrix() {
    // Both write modes at 1 and 4 worker threads: a 1-thread fleet is
    // the single-threaded reactor with a different scheduler, and a
    // 4-thread fleet adds true parallelism. Neither may leak into the
    // protocol. (Fault replay rides the other test; sync-mode acks and a
    // 500‰ dup/reorder storm time out on every backend alike, so the
    // matrix runs on a quiet plan to keep all cells completable.)
    let quiet = || Arc::new(FaultPlan::new(0));
    for write_mode in [WriteMode::Sync, WriteMode::Async] {
        let reference = run_threaded(quiet(), Runtime::Reactor, write_mode);
        for threads in [1, 4] {
            let fleet = run_fleet(quiet(), threads, write_mode);
            assert_eq!(
                reference, fleet,
                "mode {write_mode:?} × {threads} threads diverged from the reactor backend"
            );
        }
    }
}
