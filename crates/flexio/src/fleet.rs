//! The staging node's multi-core runtime: a [`ReactorFleet`] wired to
//! the machine's NUMA topology (paper §V applied to FlexIO itself).
//!
//! `flexio-reactor` provides the mechanism — worker threads, shard
//! injectors, the rebalancer. This module supplies the policy FlexIO
//! cares about:
//!
//! * **thread count** — the `runtime.threads` XML hint, overridden by
//!   the `FLEXIO_REACTOR_THREADS` environment variable, defaulting to
//!   the host's available parallelism (see [`resolve_threads`]).
//! * **shard→core→domain assignment** — shards stripe over the modelled
//!   node's cores ([`machine::NodeParams`]), so every NUMA domain with a
//!   shard gets its own pinned buffer pool.
//! * **buffer placement** — each worker installs a per-shard
//!   [`shm::BufferPool`] pinned to its domain via
//!   [`shm::placement::install_thread_pool`]; every shm channel a shard
//!   creates from then on allocates pooled buffers "locally".
//! * **coupling placement** — [`FleetRuntime::spawn_for`] scores the
//!   candidate domains with [`memsim::best_domain`] over the coupling's
//!   endpoint cores and spawns into the cheapest one, which is
//!   producer-local placement (§III.B.3) when the producer is the lone
//!   endpoint.
//!
//! The control-plane pollers ride the same fleet:
//! [`FleetRuntime::spawn_monitor_sink`] and
//! [`FleetRuntime::spawn_manager`] turn the relay drain and the
//! placement decision loop into reactor tasks, so a staging node runs
//! entirely on its fleet cores.

use std::future::Future;
use std::sync::Arc;
use std::time::Duration;

use flexio_reactor::{FleetHandle, FleetTopology, ReactorFleet, ShardSnapshot};
use machine::{CoreLocation, MachineModel};
use shm::BufferPool;

use crate::directory::DirectoryService;
use crate::elastic::ElasticController;
use crate::manager::PlacementManager;
use crate::relay::MonitorSink;
use crate::task::TaskHandle;

/// Per-shard pool reclamation threshold: the same 64 MiB default as a
/// private channel pool, but shared by every channel the shard owns.
const SHARD_POOL_THRESHOLD: u64 = 64 << 20;

/// Nominal transfer size used when scoring candidate NUMA domains for a
/// coupling (the cost model only needs relative ordering).
const PLACEMENT_PROBE_BYTES: u64 = 1 << 20;

/// Resolve the fleet's worker-thread count: an explicit non-zero hint
/// wins, else the `FLEXIO_REACTOR_THREADS` environment variable, else
/// the host's available parallelism.
pub fn resolve_threads(hint: usize) -> usize {
    if hint > 0 {
        return hint;
    }
    if let Some(n) = std::env::var("FLEXIO_REACTOR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A [`ReactorFleet`] plus the NUMA-pinned per-shard buffer pools and
/// the machine model its placement decisions read. See the module docs.
pub struct FleetRuntime {
    fleet: ReactorFleet,
    /// Per-shard pinned pools, in shard order (also installed
    /// thread-locally on the matching workers).
    pools: Vec<BufferPool>,
    machine: MachineModel,
}

impl FleetRuntime {
    /// Build a fleet of `threads` workers (0 = auto, see
    /// [`resolve_threads`]) striped over `machine`'s node topology, with
    /// one NUMA-pinned buffer pool per shard.
    pub fn new(machine: &MachineModel, threads: usize) -> FleetRuntime {
        let threads = resolve_threads(threads);
        let node = &machine.node;
        let topology = FleetTopology::striped(threads, node.numa_domains, node.cores_per_numa);
        let pools: Vec<BufferPool> = topology
            .slots()
            .iter()
            .map(|s| BufferPool::new_pinned(SHARD_POOL_THRESHOLD, s.numa_domain))
            .collect();
        let init_pools = pools.clone();
        let fleet = ReactorFleet::builder(topology)
            .worker_init(move |slot| {
                shm::placement::install_thread_pool(init_pools[slot.shard].clone());
            })
            .build();
        FleetRuntime { fleet, pools, machine: machine.clone() }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.fleet.threads()
    }

    /// A cloneable spawner/observer for the underlying fleet.
    pub fn handle(&self) -> FleetHandle {
        self.fleet.handle()
    }

    /// The machine model placement decisions are scored against.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Spawn onto the least-loaded shard.
    pub fn spawn(&self, fut: impl Future<Output = ()> + Send + 'static) {
        self.fleet.spawn(fut);
    }

    /// Spawn a coupling task near its endpoints: score every NUMA
    /// domain's copy cost to `endpoints` with [`memsim::best_domain`]
    /// and spawn into the cheapest domain's least-loaded shard. With one
    /// endpoint (the producer) this is the paper's producer-local
    /// placement; endpoints on other nodes can't matter to on-node
    /// buffer placement, so only same-node endpoints are scored.
    pub fn spawn_for(
        &self,
        endpoints: &[CoreLocation],
        fut: impl Future<Output = ()> + Send + 'static,
    ) {
        let local: Vec<CoreLocation> = match endpoints.first() {
            Some(first) => endpoints.iter().copied().filter(|e| e.node == first.node).collect(),
            None => Vec::new(),
        };
        if local.is_empty() {
            self.fleet.spawn(fut);
            return;
        }
        let domain = memsim::best_domain(&self.machine.node, &local, PLACEMENT_PROBE_BYTES);
        self.fleet.spawn_in_domain(domain, fut);
    }

    /// Run a pub/sub reader group's delivery loop as a fleet task placed
    /// near `endpoints` (see [`Self::spawn_for`]) — fan-out consumers
    /// land next to the data they drain. Returns the observer handle.
    pub fn spawn_reader_group(
        &self,
        group: crate::pubsub::ReaderGroup,
        endpoints: &[CoreLocation],
    ) -> crate::pubsub::GroupTaskHandle {
        let (handle, task) = group.into_task();
        self.spawn_for(endpoints, task);
        handle
    }

    /// Fold a query session into the fleet: the residual plan runs as a
    /// reactor task placed near its endpoints (see
    /// [`crate::query::QuerySession::into_task`]). Like every
    /// `spawn_*`, returns the unified [`TaskHandle`]; recover the typed
    /// observer with `handle.typed::<QueryHandle>()`.
    pub fn spawn_query(
        &self,
        session: crate::query::QuerySession,
        endpoints: &[CoreLocation],
    ) -> TaskHandle {
        let (handle, task) = session.into_task();
        self.spawn_for(endpoints, task);
        TaskHandle::new(handle)
    }

    /// Fold a monitor-relay drain into the fleet: the sink becomes a
    /// periodic reactor task (see [`MonitorSink::into_task`]). Recover
    /// the typed observer (live replica) with
    /// `handle.typed::<SinkTaskHandle>()`.
    pub fn spawn_monitor_sink(&self, sink: MonitorSink, interval: Duration) -> TaskHandle {
        let (handle, task) = sink.into_task(interval);
        self.fleet.spawn(task);
        TaskHandle::new(handle)
    }

    /// Fold a placement-manager decision loop into the fleet (see
    /// [`PlacementManager::into_task`]). Recover the typed observer
    /// (latest recommendation) with `handle.typed::<ManagerTaskHandle>()`.
    pub fn spawn_manager(
        &self,
        manager: PlacementManager,
        directory: Arc<dyn DirectoryService>,
        stream: impl Into<String>,
        rank: usize,
        interval: Duration,
    ) -> TaskHandle {
        let (handle, task) = manager.into_task(directory, stream.into(), rank, interval);
        self.fleet.spawn(task);
        TaskHandle::new(handle)
    }

    /// Fold an elastic controller's decision loop into the fleet (see
    /// [`ElasticController::into_task`]). Recover the typed observer
    /// (roster, latest decision) with `handle.typed::<ElasticHandle>()`.
    pub fn spawn_elastic(&self, controller: ElasticController) -> TaskHandle {
        let (handle, task) = controller.into_task();
        self.fleet.spawn(task);
        TaskHandle::new(handle)
    }

    /// Stats of every shard's pinned pool, in shard order:
    /// `(shard, numa_domain, stats)`.
    pub fn pool_stats(&self) -> Vec<(usize, usize, shm::PoolStats)> {
        self.pools
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.numa_domain().expect("fleet pools are pinned"), p.stats()))
            .collect()
    }

    /// Wait for every spawned task to finish and stop the workers,
    /// returning final per-shard counters.
    pub fn join(self) -> Vec<ShardSnapshot> {
        self.fleet.join()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::laptop;

    #[test]
    fn resolve_threads_prefers_explicit_hint() {
        assert_eq!(resolve_threads(3), 3);
        // 0 = auto: env or host parallelism, but never zero.
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn shards_stripe_domains_and_pools_match() {
        // laptop: 2 NUMA domains × 2 cores. 4 shards cover both domains;
        // each shard's pool is pinned to its own domain.
        let rt = FleetRuntime::new(&laptop(), 4);
        assert_eq!(rt.threads(), 4);
        let topo = rt.handle().topology().clone();
        assert!(!topo.shards_in_domain(0).is_empty());
        assert!(!topo.shards_in_domain(1).is_empty());
        for (shard, domain, _) in rt.pool_stats() {
            assert_eq!(domain, topo.slot(shard).numa_domain);
        }
        rt.join();
    }

    #[test]
    fn workers_see_their_shard_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rt = FleetRuntime::new(&laptop(), 4);
        let expect = rt.handle().topology().clone();
        let checked = Arc::new(AtomicUsize::new(0));
        for shard in 0..rt.threads() {
            let expect = expect.clone();
            let checked = Arc::clone(&checked);
            rt.handle().spawn_on(shard, async move {
                let pool = shm::placement::thread_pool().expect("worker has a pool");
                assert_eq!(pool.numa_domain(), Some(expect.slot(shard).numa_domain));
                checked.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.join();
        assert_eq!(checked.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn spawn_for_places_producer_local() {
        // A producer in domain 1: the coupling must land on a shard
        // pinned to domain 1 (laptop has 2 domains; 4 shards cover both).
        let rt = FleetRuntime::new(&laptop(), 4);
        let domain1 = rt.handle().topology().shards_in_domain(1);
        let producer = CoreLocation { node: 0, numa: 1, core: 0 };
        for _ in 0..6 {
            rt.spawn_for(&[producer], async {});
        }
        let snaps = rt.join();
        let on_domain1: u64 = domain1.iter().map(|&s| snaps[s].completed).sum();
        assert_eq!(on_domain1, 6, "producer-local placement violated: {snaps:?}");
    }
}
