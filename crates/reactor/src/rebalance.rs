//! Load-rebalance policy for the reactor fleet.
//!
//! The fleet's workers publish three per-shard signals every poll round:
//! how many tasks they own, what fraction of recent rounds did useful
//! work (poll-loop *occupancy* — the share of rounds where a task
//! progressed, a timer fired, or a step committed), and how many
//! protocol steps committed (steps/s). [`plan`] turns a snapshot of
//! those signals into at most one migration order: ship roughly half
//! the task-count gap from the hottest shard to the coldest one.
//!
//! The policy is deliberately damped — one donor→recipient pair per
//! planning round, and only when *both* the task-count gap and the
//! occupancy gap clear their thresholds. A busy-but-balanced fleet
//! (every shard saturated) must not churn tasks between cores: moving a
//! future invalidates its cache footprint and briefly strands its timer
//! deadlines on the old shard's wheel, so migration has to buy real
//! imbalance relief to be worth it.
//!
//! Pure functions over plain data: the fleet calls [`plan`] under its
//! rebalance lock, but nothing here touches threads or atomics, so the
//! policy is exhaustively unit-testable.

use std::time::Duration;

/// Tunables for the periodic rebalancer.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Minimum time between planning rounds.
    pub interval: Duration,
    /// Minimum task-count gap (hottest − coldest) before a move is
    /// considered. Below this, migration churn outweighs the imbalance.
    pub min_task_gap: usize,
    /// Minimum occupancy gap (hottest − coldest, in [0, 1]) before a
    /// move is considered. Guards the busy-but-balanced case: equal
    /// occupancy means no shard is starving even if counts differ.
    pub min_occupancy_gap: f64,
    /// Cap on tasks shipped per planning round.
    pub max_moves: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            interval: Duration::from_millis(20),
            min_task_gap: 2,
            min_occupancy_gap: 0.10,
            max_moves: 64,
        }
    }
}

/// One shard's load signals over the last planning window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Tasks currently owned (local run queue + pending injector).
    pub tasks: usize,
    /// Fraction of recent poll rounds that did useful work, in [0, 1].
    pub occupancy: f64,
    /// Protocol steps committed per second over the window.
    pub steps_per_s: f64,
}

/// A migration order: `from` ships `tasks` futures to `to`'s injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Donor shard (executes the order itself — only the owning worker
    /// thread may touch its futures).
    pub from: usize,
    /// Recipient shard.
    pub to: usize,
    /// Number of tasks to ship.
    pub tasks: usize,
}

/// Decide migrations for one planning round. Returns at most one order:
/// hottest shard → coldest shard, half the task-count gap, when both
/// the count gap and the occupancy gap clear the policy thresholds.
pub fn plan(policy: &RebalancePolicy, loads: &[ShardLoad]) -> Vec<Migration> {
    if loads.len() < 2 {
        return Vec::new();
    }
    // Hotness orders by occupancy first (a saturated poll loop is the
    // real scarcity signal), steps/s and task count as tiebreaks.
    let key = |l: &ShardLoad| (l.occupancy, l.steps_per_s, l.tasks as f64);
    let cmp = |a: &&ShardLoad, b: &&ShardLoad| {
        key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal)
    };
    let hottest = loads.iter().max_by(cmp).expect("len >= 2");
    let coldest = loads.iter().min_by(cmp).expect("len >= 2");
    if hottest.shard == coldest.shard {
        return Vec::new();
    }
    let gap = hottest.tasks.saturating_sub(coldest.tasks);
    if gap < policy.min_task_gap {
        return Vec::new();
    }
    if hottest.occupancy - coldest.occupancy < policy.min_occupancy_gap {
        return Vec::new();
    }
    let tasks = (gap / 2).min(policy.max_moves);
    if tasks == 0 {
        return Vec::new();
    }
    vec![Migration { from: hottest.shard, to: coldest.shard, tasks }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(shard: usize, tasks: usize, occupancy: f64) -> ShardLoad {
        ShardLoad { shard, tasks, occupancy, steps_per_s: 0.0 }
    }

    #[test]
    fn balanced_fleet_stays_put() {
        let p = RebalancePolicy::default();
        let loads = [load(0, 10, 0.9), load(1, 10, 0.9), load(2, 9, 0.88)];
        assert!(plan(&p, &loads).is_empty());
    }

    #[test]
    fn skew_moves_half_the_gap_to_the_coldest() {
        let p = RebalancePolicy::default();
        let loads = [load(0, 20, 0.95), load(1, 4, 0.10), load(2, 6, 0.30)];
        assert_eq!(plan(&p, &loads), vec![Migration { from: 0, to: 1, tasks: 8 }]);
    }

    #[test]
    fn busy_but_balanced_occupancy_blocks_migration() {
        // Task counts differ but both poll loops are equally saturated:
        // nobody is starving, so churn would buy nothing.
        let p = RebalancePolicy::default();
        let loads = [load(0, 20, 0.95), load(1, 10, 0.93)];
        assert!(plan(&p, &loads).is_empty());
    }

    #[test]
    fn single_shard_and_empty_are_noops() {
        let p = RebalancePolicy::default();
        assert!(plan(&p, &[]).is_empty());
        assert!(plan(&p, &[load(0, 100, 1.0)]).is_empty());
    }

    #[test]
    fn max_moves_caps_the_shipment() {
        let p = RebalancePolicy { max_moves: 3, ..Default::default() };
        let loads = [load(0, 100, 1.0), load(1, 0, 0.0)];
        assert_eq!(plan(&p, &loads), vec![Migration { from: 0, to: 1, tasks: 3 }]);
    }

    #[test]
    fn tiny_gap_below_threshold_is_left_alone() {
        let p = RebalancePolicy::default();
        let loads = [load(0, 5, 0.9), load(1, 4, 0.1)];
        assert!(plan(&p, &loads).is_empty());
    }
}
