//! End-to-end tests of the stream protocol: coupled writer/reader
//! programs running as real thread groups, exchanging real bytes.

use std::thread;

use adios::{
    ArrayData, BoxSel, LocalBlock, ReadEngine, ScalarValue, Selection, StepStatus, VarValue,
    WriteEngine,
};
use flexio::{CachingLevel, FlexIo, PluginPlacement, PluginSpec, StreamHints, WriteMode};
use machine::{laptop, CoreLocation};

/// Deterministic core roster: writers fill node 0 onward, readers fill
/// from the last node backward, so small configs get cross-placement
/// coverage.
fn writer_core(rank: usize) -> CoreLocation {
    let m = laptop().node;
    m.location_of(rank)
}

fn reader_core(rank: usize) -> CoreLocation {
    let m = laptop();
    m.node.location_of(m.total_cores() - 1 - rank)
}

fn writer_roster(n: usize) -> Vec<CoreLocation> {
    (0..n).map(writer_core).collect()
}

fn reader_roster(n: usize) -> Vec<CoreLocation> {
    (0..n).map(reader_core).collect()
}

/// Run a coupled writer/reader pair; returns (writer results, reader
/// results).
fn couple<TW, TR>(
    nwriters: usize,
    nreaders: usize,
    hints: StreamHints,
    writer_body: impl Fn(flexio::StreamWriter, usize) -> TW + Send + Sync + 'static,
    reader_body: impl Fn(flexio::StreamReader, usize) -> TR + Send + Sync + 'static,
) -> (Vec<TW>, Vec<TR>)
where
    TW: Send + 'static,
    TR: Send + 'static,
{
    let io = FlexIo::new(laptop(), 4);
    let io_w = io.clone();
    let io_r = io.clone();
    let hints_w = hints.clone();
    let hints_r = hints;
    let wt = thread::spawn(move || {
        rankrt::launch_named(nwriters, "sim", move |comm| {
            let rank = comm.rank();
            let w = io_w
                .open_writer(
                    "stream",
                    rank,
                    nwriters,
                    writer_core(rank),
                    writer_roster(nwriters),
                    hints_w.clone(),
                )
                .expect("open writer");
            writer_body(w, rank)
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch_named(nreaders, "ana", move |comm| {
            let rank = comm.rank();
            let r = io_r
                .open_reader(
                    "stream",
                    rank,
                    nreaders,
                    reader_core(rank),
                    reader_roster(nreaders),
                    hints_r.clone(),
                )
                .expect("open reader");
            reader_body(r, rank)
        })
    });
    (wt.join().expect("writers"), rt.join().expect("readers"))
}

fn block_1d(offset: u64, data: Vec<f64>, global: u64) -> VarValue {
    let count = data.len() as u64;
    VarValue::Block(
        LocalBlock {
            global_shape: vec![global],
            offset: vec![offset],
            count: vec![count],
            data: ArrayData::F64(data),
        }
        .validated(),
    )
}

#[test]
fn global_array_mxn_redistribution() {
    // 3 writers each own 4 elements of a 12-element array; 2 readers
    // split it 6/6 — the Fig. 3 MxN pattern. 3 steps.
    const STEPS: u64 = 3;
    let (_, reader_sums) = couple(
        3,
        2,
        StreamHints::default(),
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 12));
                w.end_step();
            }
            w.close();
        },
        |mut r, rank| {
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            r.subscribe("field", Selection::GlobalBox(my_box.clone()));
            let mut sums = Vec::new();
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("field", &Selection::GlobalBox(my_box.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        // Element at global index g must be step*100 + g.
                        for (i, &x) in b.data.as_f64().iter().enumerate() {
                            let g = rank as u64 * 6 + i as u64;
                            assert_eq!(x, (step * 100 + g) as f64, "step {step} idx {g}");
                        }
                        sums.push(b.data.as_f64().iter().sum::<f64>());
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            sums.len()
        },
    );
    assert_eq!(reader_sums, vec![STEPS as usize, STEPS as usize]);
}

#[test]
fn process_group_pattern_with_scalars() {
    // 4 writers; 2 readers each subscribed to two writers' groups.
    let (_, ok) = couple(
        4,
        2,
        StreamHints::default(),
        |mut w, rank| {
            w.begin_step(0);
            w.write("nparticles", VarValue::Scalar(ScalarValue::U64(100 + rank as u64)));
            w.write("zion", block_1d(0, vec![rank as f64; 5], 5));
            w.end_step();
            w.close();
        },
        |mut r, rank| {
            // Reader rank j wants writer ranks j and j+2 (the paper's
            // "analytics specifies the process groups it wants to read by
            // simulation processes' MPI ranks").
            for w in [rank, rank + 2] {
                r.subscribe("zion", Selection::ProcessGroup(w));
            }
            r.subscribe("nparticles", Selection::Scalar);
            assert_eq!(r.begin_step(), StepStatus::Step(0));
            for w in [rank, rank + 2] {
                let v = r.read("zion", &Selection::ProcessGroup(w)).unwrap();
                let VarValue::Block(b) = v else { panic!() };
                assert!(b.data.as_f64().iter().all(|&x| x == w as f64));
            }
            // Scalar comes from writer rank 0.
            let s = r.read("nparticles", &Selection::Scalar).unwrap();
            assert_eq!(s, VarValue::Scalar(ScalarValue::U64(100)));
            r.end_step();
            assert_eq!(r.begin_step(), StepStatus::EndOfStream);
            true
        },
    );
    assert_eq!(ok, vec![true, true]);
}

fn run_caching(level: CachingLevel, steps: u64) -> (u64, u64, u64, u64, u64, u64, u64) {
    let hints = StreamHints { caching: level, ..StreamHints::default() };
    // Snapshot counters only after both programs are fully done: every
    // rank returns its shared link, and we read the counters post-join.
    let (links, _) = couple(
        3,
        2,
        hints,
        move |mut w, rank| {
            for step in 0..steps {
                w.begin_step(step);
                w.write("v", block_1d(rank as u64 * 2, vec![step as f64; 2], 6));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        |mut r, _| {
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![0], vec![6])));
            while let StepStatus::Step(_) = r.begin_step() {
                r.end_step();
            }
        },
    );
    links[0].counters.snapshot()
}

#[test]
fn caching_levels_cut_handshake_traffic() {
    const STEPS: u64 = 5;
    let (g_no, e_no, b_no, d_no, ..) = run_caching(CachingLevel::NoCaching, STEPS);
    let (g_lo, e_lo, _b_lo, d_lo, ..) = run_caching(CachingLevel::CachingLocal, STEPS);
    let (g_all, e_all, b_all, d_all, ..) = run_caching(CachingLevel::CachingAll, STEPS);

    // Data volume identical in all modes.
    assert_eq!(d_no, d_lo);
    assert_eq!(d_no, d_all);

    // NO_CACHING gathers on both sides every step (writer 2 + reader 1
    // non-coordinator ranks per step), plus one: the reader rank cannot
    // know the final begin_step will hit EOS, so it eagerly re-sends its
    // subscriptions once more.
    assert_eq!(g_no, STEPS * 3 + 1, "gathers: {g_no}");
    // Exchange happens twice per step (writer_info + reader_info).
    assert_eq!(e_no, STEPS * 2);

    // CACHING_LOCAL: gather only on the first step, exchange still per step.
    assert_eq!(g_lo, 3, "local caching skips step 1 after warmup: {g_lo}");
    assert_eq!(e_lo, STEPS * 2);

    // CACHING_ALL: the whole handshake happens exactly once.
    assert_eq!(g_all, 3);
    assert_eq!(e_all, 2);
    assert_eq!(b_all, 3, "plan broadcast only once: {b_all}");
    assert!(b_no >= STEPS * 3, "plan re-broadcast every step: {b_no}");
}

#[test]
fn batching_aggregates_data_messages() {
    let run = |batching: bool| {
        let hints = StreamHints { batching, ..StreamHints::default() };
        let (counters, _) = couple(
            2,
            1,
            hints,
            |mut w, rank| {
                w.begin_step(0);
                // 22 variables, as in S3D (paper §IV.B.1).
                for v in 0..22 {
                    w.write(&format!("species{v}"), block_1d(rank as u64 * 3, vec![1.0; 3], 6));
                }
                w.end_step();
                let link = w.link().clone();
                w.close();
                link
            },
            |mut r, _| {
                for v in 0..22 {
                    r.subscribe(
                        &format!("species{v}"),
                        Selection::GlobalBox(BoxSel::new(vec![0], vec![6])),
                    );
                }
                while let StepStatus::Step(_) = r.begin_step() {
                    r.end_step();
                }
            },
        );
        counters[0].counters.snapshot().3 // data_msgs, post-join
    };
    let unbatched = run(false);
    let batched = run(true);
    assert_eq!(unbatched, 44, "22 vars × 2 writers, one message each");
    assert_eq!(batched, 2, "one batch per writer");
}

#[test]
fn sync_mode_waits_for_acks() {
    let hints = StreamHints { write_mode: WriteMode::Sync, ..StreamHints::default() };
    let (counters, _) = couple(
        2,
        2,
        hints,
        |mut w, rank| {
            for step in 0..3 {
                w.begin_step(step);
                w.write("v", block_1d(rank as u64 * 4, vec![0.5; 4], 8));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        |mut r, rank| {
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![rank as u64 * 4], vec![4])));
            while let StepStatus::Step(_) = r.begin_step() {
                r.end_step();
            }
        },
    );
    let acks = counters[0].counters.snapshot().5;
    // Each reader acks each writer that sent to it, each step. With the
    // 4-element halves each reader overlaps exactly one writer: 2 acks/step.
    assert_eq!(acks, 6, "acks={acks}");
    // And sync waits were recorded by the monitor (on either side's rank).
    // (The link is shared; writer rank 0's view suffices.)
}

#[test]
fn writer_side_plugin_conditions_data_before_transport() {
    let spec = PluginSpec {
        var: "velocity".into(),
        source: codelet::plugins::bounding_box("velocity", 10.0, 20.0),
        placement: PluginPlacement::WriterSide,
    };
    let (_, results) = couple(
        2,
        1,
        StreamHints::default(),
        |mut w, rank| {
            w.begin_step(0);
            let vals: Vec<f64> = (0..10).map(|i| (rank * 10 + i) as f64).collect();
            w.write("velocity", block_1d(0, vals, 10));
            w.end_step();
            w.close();
        },
        move |mut r, _| {
            r.subscribe("velocity", Selection::ProcessGroup(0));
            r.subscribe("velocity", Selection::ProcessGroup(1));
            r.install_plugin(spec.clone());
            assert_eq!(r.begin_step(), StepStatus::Step(0));
            // Writer 0 wrote 0..9 → only 10 survives... values 0..=9:
            // in [10,20] none. Writer 1 wrote 10..19 → all.
            let v0 = r.read("velocity", &Selection::ProcessGroup(0)).unwrap();
            let v1 = r.read("velocity", &Selection::ProcessGroup(1)).unwrap();
            let VarValue::Block(b0) = v0 else { panic!() };
            let VarValue::Block(b1) = v1 else { panic!() };
            // The plug-in also published its selection count.
            let c1 = r.read("dc_selected", &Selection::ProcessGroup(1)).unwrap();
            r.end_step();
            (b0.data.as_f64().to_vec(), b1.data.as_f64().to_vec(), c1)
        },
    );
    let (b0, b1, c1) = &results[0];
    assert!(b0.is_empty(), "no writer-0 values in range: {b0:?}");
    assert_eq!(b1.len(), 10);
    assert!(b1.iter().all(|&x| (10.0..=20.0).contains(&x)));
    assert_eq!(*c1, VarValue::Scalar(ScalarValue::I64(10)));
}

#[test]
fn plugin_migrates_between_address_spaces() {
    // Start writer-side, migrate to reader-side after step 0; the data
    // must remain identically conditioned (stateless codelets).
    let writer_spec = PluginSpec {
        var: "v".into(),
        source: codelet::plugins::unit_conversion("v", 2.0),
        placement: PluginPlacement::WriterSide,
    };
    let (_, results) = couple(
        1,
        1,
        StreamHints { write_mode: WriteMode::Sync, ..StreamHints::default() },
        |mut w, _| {
            for step in 0..4 {
                w.begin_step(step);
                w.write("v", block_1d(0, vec![1.0, 2.0, 3.0], 3));
                w.end_step();
            }
            w.close();
        },
        move |mut r, _| {
            r.subscribe("v", Selection::ProcessGroup(0));
            r.install_plugin(writer_spec.clone());
            let mut outputs = Vec::new();
            let mut migrated = false;
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("v", &Selection::ProcessGroup(0)).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        outputs.push(b.data.as_f64().to_vec());
                        r.end_step();
                        if step == 1 && !migrated {
                            migrated = true;
                            r.install_plugin(PluginSpec {
                                var: "v".into(),
                                source: codelet::plugins::unit_conversion("v", 2.0),
                                placement: PluginPlacement::ReaderSide,
                            });
                        }
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            outputs
        },
    );
    for (step, out) in results[0].iter().enumerate() {
        assert_eq!(out, &vec![2.0, 4.0, 6.0], "step {step} must be conditioned");
    }
    assert_eq!(results[0].len(), 4);
}

#[test]
fn transactional_steps_commit() {
    let hints = StreamHints { transactional: true, ..StreamHints::default() };
    let (_, steps_seen) = couple(
        2,
        2,
        hints,
        |mut w, rank| {
            for step in 0..3 {
                w.begin_step(step);
                w.write("v", block_1d(rank as u64 * 2, vec![step as f64; 2], 4));
                w.end_step(); // returns only after global 2PC commit
            }
            w.close();
        },
        |mut r, _| {
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![0], vec![4])));
            let mut seen = Vec::new();
            while let StepStatus::Step(s) = r.begin_step() {
                seen.push(s);
                r.end_step();
            }
            seen
        },
    );
    assert_eq!(steps_seen[0], vec![0, 1, 2]);
    assert_eq!(steps_seen[1], vec![0, 1, 2]);
}

#[test]
fn eos_reaches_every_reader_rank() {
    let (_, eos_counts) = couple(
        2,
        3,
        StreamHints::default(),
        |mut w, rank| {
            w.begin_step(0);
            w.write("x", block_1d(rank as u64, vec![1.0], 2));
            w.end_step();
            w.close();
        },
        |mut r, _| {
            r.subscribe("x", Selection::GlobalBox(BoxSel::new(vec![0], vec![2])));
            let mut steps = 0;
            loop {
                match r.begin_step() {
                    StepStatus::Step(_) => {
                        steps += 1;
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            // A second begin_step after EOS stays at EOS.
            assert_eq!(r.begin_step(), StepStatus::EndOfStream);
            steps
        },
    );
    assert_eq!(eos_counts, vec![1, 1, 1]);
}

#[test]
fn file_and_stream_engines_are_interchangeable() {
    // The paper's headline API property: the same application code runs
    // against file mode and stream mode (§II.B "stream mode is compatible
    // with file I/O in that it can be switched with file mode without
    // code changes"). Drive both engines through the trait objects.
    fn produce(engine: &mut dyn WriteEngine, rank: usize) {
        for step in 0..2u64 {
            engine.begin_step(step);
            engine.write(
                "field",
                block_1d(rank as u64 * 2, vec![(step * 10 + rank as u64) as f64; 2], 4),
            );
            engine.end_step();
        }
        engine.close();
    }
    fn consume(engine: &mut dyn ReadEngine) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        loop {
            match engine.begin_step() {
                StepStatus::Step(_) => {
                    let v = engine
                        .read("field", &Selection::GlobalBox(BoxSel::new(vec![0], vec![4])))
                        .unwrap();
                    let VarValue::Block(b) = v else { panic!() };
                    out.push(b.data.as_f64().to_vec());
                    engine.end_step();
                }
                StepStatus::EndOfStream => break,
            }
        }
        out
    }

    // File mode.
    let dir = std::env::temp_dir().join("flexio-engine-swap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("swap.bp");
    {
        let mut engines = adios::FileWriteEngine::create(&path, 2);
        // Interleave steps: engine API requires per-rank sequential use.
        for (rank, e) in engines.iter_mut().enumerate() {
            produce(e, rank);
        }
    }
    let mut file_reader = adios::FileReadEngine::open(&path).unwrap();
    let from_file = consume(&mut file_reader);

    // Stream mode, same closures.
    let (_, from_stream) = couple(
        2,
        1,
        StreamHints::default(),
        |mut w, rank| produce(&mut w, rank),
        |mut r, _| {
            r.subscribe("field", Selection::GlobalBox(BoxSel::new(vec![0], vec![4])));
            consume(&mut r)
        },
    );

    assert_eq!(from_file, from_stream[0], "identical app code, identical data");
    std::fs::remove_file(&path).ok();
}

#[test]
fn monitoring_observes_movement() {
    let (bytes_sent, _) = couple(
        2,
        1,
        StreamHints::default(),
        |mut w, rank| {
            w.begin_step(0);
            w.write("v", block_1d(rank as u64 * 100, vec![0.0; 100], 200));
            w.end_step();
            let link = w.link().clone();
            w.close();
            link
        },
        |mut r, _| {
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![0], vec![200])));
            while let StepStatus::Step(_) = r.begin_step() {
                r.end_step();
            }
        },
    );
    // 200 f64s plus framing — at least 1600 bytes must have been recorded.
    let total = bytes_sent[0].monitor.total_bytes(flexio::MonitorEvent::DataSend);
    assert!(total >= 1600, "monitor saw {total} bytes");
}

#[test]
fn directory_is_out_of_the_critical_path() {
    let io = FlexIo::new(laptop(), 4);
    let io_w = io.clone();
    let io_r = io.clone();
    let wt = thread::spawn(move || {
        rankrt::launch(3, move |comm| {
            let rank = comm.rank();
            let mut w = io_w
                .open_writer(
                    "d",
                    rank,
                    3,
                    writer_core(rank),
                    writer_roster(3),
                    StreamHints::default(),
                )
                .unwrap();
            for step in 0..10 {
                w.begin_step(step);
                w.write("v", block_1d(rank as u64, vec![1.0], 3));
                w.end_step();
            }
            w.close();
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch(2, move |comm| {
            let rank = comm.rank();
            let mut r = io_r
                .open_reader(
                    "d",
                    rank,
                    2,
                    reader_core(rank),
                    reader_roster(2),
                    StreamHints::default(),
                )
                .unwrap();
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![0], vec![3])));
            while let StepStatus::Step(_) = r.begin_step() {
                r.end_step();
            }
        })
    });
    wt.join().unwrap();
    rt.join().unwrap();
    // 10 steps moved data, but the directory served exactly one
    // registration and one lookup (coordinators only, setup only).
    assert_eq!(io.directory().registration_count(), 1);
    assert_eq!(io.directory().lookup_count(), 1);
}

#[test]
fn double_open_same_stream_name_fails() {
    let io = FlexIo::single_node(laptop());
    let core = CoreLocation { node: 0, numa: 0, core: 0 };
    let _w1 = io.open_writer("dup", 0, 1, core, vec![core], StreamHints::default()).unwrap();
    let err = io.open_writer("dup", 0, 1, core, vec![core], StreamHints::default());
    assert!(err.is_err(), "second registration must fail");
}

#[test]
fn reader_open_times_out_without_writer() {
    let io = FlexIo::single_node(laptop());
    let core = CoreLocation { node: 0, numa: 0, core: 0 };
    let hints = StreamHints {
        recv_timeout: std::time::Duration::from_millis(50),
        ..StreamHints::default()
    };
    let err = io.open_reader("ghost", 0, 1, core, vec![core], hints);
    assert!(err.is_err());
}

#[test]
fn cross_node_placement_uses_rdma_and_delivers() {
    // Writers on node 0, readers on node 3 (staging placement): data must
    // cross the simulated interconnect.
    let io = FlexIo::new(laptop(), 4);
    let io_w = io.clone();
    let io_r = io.clone();
    let wt = thread::spawn(move || {
        rankrt::launch(2, move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..2).map(|r| CoreLocation { node: 0, numa: 0, core: r }).collect();
            let mut w = io_w
                .open_writer("x", rank, 2, roster[rank], roster.clone(), StreamHints::default())
                .unwrap();
            w.begin_step(0);
            w.write("v", block_1d(rank as u64 * 50_000, vec![rank as f64; 50_000], 100_000));
            w.end_step();
            w.close();
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch(1, move |_comm| {
            let roster = vec![CoreLocation { node: 3, numa: 0, core: 0 }];
            let mut r = io_r
                .open_reader("x", 0, 1, roster[0], roster.clone(), StreamHints::default())
                .unwrap();
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![0], vec![100_000])));
            assert_eq!(r.begin_step(), StepStatus::Step(0));
            let v =
                r.read("v", &Selection::GlobalBox(BoxSel::new(vec![0], vec![100_000]))).unwrap();
            let VarValue::Block(b) = v else { panic!() };
            assert_eq!(b.data.as_f64()[0], 0.0);
            assert_eq!(b.data.as_f64()[99_999], 1.0);
            r.end_step();
        })
    });
    wt.join().unwrap();
    rt.join().unwrap();
}
