//! Data Conditioning plug-in management (paper §II.F).
//!
//! Plug-ins are created on the **reader** side as source strings, shipped
//! to whichever address space should run them, compiled there, and
//! executed on each matching chunk as it moves. "They can be executed
//! within the address space of either the simulation or analytics, and
//! they can be migrated across address spaces at runtime."

use codelet::Codelet;
use evpath::{FieldValue, Record};

use adios::{ArrayData, LocalBlock, VarValue};

/// Which address space runs the plug-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PluginPlacement {
    /// In the simulation's (writer's) address space — conditioning data
    /// *before* it crosses the transport (e.g. selection shrinks traffic).
    WriterSide,
    /// In the analytics' (reader's) address space.
    ReaderSide,
}

/// A deployable plug-in: the variable it conditions, its source, and
/// where it should run.
#[derive(Debug, Clone, PartialEq)]
pub struct PluginSpec {
    /// Variable name the plug-in applies to.
    pub var: String,
    /// Codelet source (what actually migrates).
    pub source: String,
    /// Current placement.
    pub placement: PluginPlacement,
}

impl PluginSpec {
    /// The same plug-in at a different placement — how migration call
    /// sites (the elastic controller, tests) respell a spec without
    /// repeating its source.
    pub fn with_placement(mut self, placement: PluginPlacement) -> PluginSpec {
        self.placement = placement;
        self
    }

    /// Encode for the deployment channel.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("var", FieldValue::Str(self.var.clone()))
            .with("source", FieldValue::Str(self.source.clone()))
            .with(
                "placement",
                FieldValue::U64(match self.placement {
                    PluginPlacement::WriterSide => 0,
                    PluginPlacement::ReaderSide => 1,
                }),
            )
    }

    /// Decode from the deployment channel.
    pub fn from_record(r: &Record) -> Option<PluginSpec> {
        Some(PluginSpec {
            var: r.get_str("var")?.to_string(),
            source: r.get_str("source")?.to_string(),
            placement: match r.get_u64("placement")? {
                0 => PluginPlacement::WriterSide,
                1 => PluginPlacement::ReaderSide,
                _ => return None,
            },
        })
    }
}

/// A compiled plug-in installed in one address space.
#[derive(Debug)]
pub struct InstalledPlugin {
    /// The spec it was built from.
    pub spec: PluginSpec,
    codelet: Codelet,
}

/// Marker extra attached to every conditioned chunk so the receiving side
/// can tell whether conditioning already happened upstream. This is what
/// makes plug-in **migration seamless**: during the handover step the
/// reader applies its local fallback copy only when the marker is absent,
/// so data is conditioned exactly once no matter which side ran first.
pub const DC_APPLIED_MARKER: &str = "dc_applied";

/// Error applying a plug-in to a chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum PluginError {
    /// Source failed to compile at install time.
    Compile(String),
    /// Runtime failure (budget, type error, ...).
    Run(String),
    /// The plug-in is restricted to 1-D f64 array variables (the
    /// process-group pattern the paper's GTS analytics uses).
    UnsupportedChunk(&'static str),
}

impl std::fmt::Display for PluginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PluginError::Compile(m) => write!(f, "plug-in failed to compile: {m}"),
            PluginError::Run(m) => write!(f, "plug-in failed at runtime: {m}"),
            PluginError::UnsupportedChunk(m) => write!(f, "unsupported chunk: {m}"),
        }
    }
}

impl std::error::Error for PluginError {}

impl InstalledPlugin {
    /// Compile (the "install" step — this is what dynamic deployment does
    /// on arrival in the target address space).
    pub fn install(spec: PluginSpec) -> Result<InstalledPlugin, PluginError> {
        let codelet =
            Codelet::compile(&spec.source).map_err(|e| PluginError::Compile(e.to_string()))?;
        Ok(InstalledPlugin { spec, codelet })
    }

    /// Condition one chunk of the plug-in's variable: the chunk's data is
    /// exposed to the codelet under the variable's name; the codelet's
    /// emitted field of that name becomes the new chunk data, and any
    /// extra emitted fields come back as metadata `(name, value)` pairs.
    pub fn apply(
        &self,
        value: &VarValue,
    ) -> Result<(VarValue, Vec<(String, VarValue)>), PluginError> {
        let VarValue::Block(block) = value else {
            return Err(PluginError::UnsupportedChunk("scalars are not conditioned"));
        };
        // The codelet needs owned element storage; decode a packed wire
        // view with one bulk conversion (no intermediate materialization —
        // the caller keeps the zero-copy view if we reject the chunk).
        let data: Vec<f64> = match &block.data {
            ArrayData::F64(data) => data.clone(),
            ArrayData::Packed(p) if p.dtype() == evpath::ffs::PackedDtype::F64 => p.to_f64_vec(),
            _ => return Err(PluginError::UnsupportedChunk("only f64 arrays supported")),
        };
        let input = Record::new().with(&self.spec.var, FieldValue::F64Array(data));
        let output = self.codelet.run(&input).map_err(|e| PluginError::Run(e.to_string()))?;

        let mut new_value = None;
        let mut extras = Vec::new();
        for (name, field) in output.iter() {
            let as_value = match field {
                FieldValue::F64Array(a) => VarValue::Block(
                    LocalBlock {
                        global_shape: vec![a.len() as u64],
                        offset: vec![0],
                        count: vec![a.len() as u64],
                        data: ArrayData::F64(a.clone()),
                    }
                    .validated(),
                ),
                FieldValue::I64(v) => VarValue::Scalar(adios::ScalarValue::I64(*v)),
                FieldValue::U64(v) => VarValue::Scalar(adios::ScalarValue::U64(*v)),
                FieldValue::F64(v) => VarValue::Scalar(adios::ScalarValue::F64(*v)),
                FieldValue::Str(s) => VarValue::Scalar(adios::ScalarValue::Str(s.clone())),
                _ => continue,
            };
            if name == self.spec.var {
                new_value = Some(as_value);
            } else {
                extras.push((name.to_string(), as_value));
            }
        }
        // Stamp the marker so the peer side never double-conditions.
        extras.push((DC_APPLIED_MARKER.to_string(), VarValue::Scalar(adios::ScalarValue::U64(1))));
        // A plug-in that emits nothing for the variable drops it entirely
        // (maximal reduction, e.g. `summarize`): represent as empty array.
        let new_value = new_value.unwrap_or_else(|| {
            VarValue::Block(
                LocalBlock {
                    global_shape: vec![0],
                    offset: vec![0],
                    count: vec![0],
                    data: ArrayData::F64(Vec::new()),
                }
                .validated(),
            )
        });
        Ok((new_value, extras))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn velocity_chunk() -> VarValue {
        VarValue::Block(
            LocalBlock {
                global_shape: vec![6],
                offset: vec![0],
                count: vec![6],
                data: ArrayData::F64(vec![0.1, 1.5, 2.9, 0.4, 1.1, 3.3]),
            }
            .validated(),
        )
    }

    #[test]
    fn spec_roundtrip() {
        let spec = PluginSpec {
            var: "velocity".into(),
            source: codelet::plugins::sampling("velocity", 2),
            placement: PluginPlacement::WriterSide,
        };
        assert_eq!(PluginSpec::from_record(&spec.to_record()), Some(spec.clone()));
    }

    #[test]
    fn bounding_box_plugin_filters_chunk() {
        let spec = PluginSpec {
            var: "velocity".into(),
            source: codelet::plugins::bounding_box("velocity", 1.0, 3.0),
            placement: PluginPlacement::WriterSide,
        };
        let p = InstalledPlugin::install(spec).unwrap();
        let (value, extras) = p.apply(&velocity_chunk()).unwrap();
        let VarValue::Block(b) = value else { panic!() };
        assert_eq!(b.data.as_f64(), &[1.5, 2.9, 1.1]);
        assert!(extras.iter().any(|(n, v)| n == "dc_selected"
            && matches!(v, VarValue::Scalar(adios::ScalarValue::I64(3)))));
    }

    #[test]
    fn summarize_plugin_drops_raw_data() {
        let spec = PluginSpec {
            var: "velocity".into(),
            source: codelet::plugins::summarize("velocity"),
            placement: PluginPlacement::WriterSide,
        };
        let p = InstalledPlugin::install(spec).unwrap();
        let (value, extras) = p.apply(&velocity_chunk()).unwrap();
        let VarValue::Block(b) = value else { panic!() };
        assert_eq!(b.num_elements(), 0, "raw data replaced by empty block");
        assert!(extras.iter().any(|(n, _)| n == "dc_mean"));
    }

    #[test]
    fn bad_source_fails_at_install_not_apply() {
        let spec = PluginSpec {
            var: "v".into(),
            source: "let x = ;".into(),
            placement: PluginPlacement::ReaderSide,
        };
        assert!(matches!(InstalledPlugin::install(spec), Err(PluginError::Compile(_))));
    }

    #[test]
    fn scalar_chunks_rejected() {
        let spec = PluginSpec {
            var: "v".into(),
            source: codelet::plugins::annotate("v", "t"),
            placement: PluginPlacement::ReaderSide,
        };
        let p = InstalledPlugin::install(spec).unwrap();
        let err = p.apply(&VarValue::Scalar(adios::ScalarValue::U64(1)));
        assert!(matches!(err, Err(PluginError::UnsupportedChunk(_))));
    }
}
