//! Online monitoring relay over EVPath stones (paper §II.G).
//!
//! "For runtime management, monitoring data captured from the simulation
//! side can be gathered online and transferred to the analytics side."
//! The relay is built exactly the way EVPath applications build event
//! paths: monitoring samples are submitted to a stone graph —
//!
//! ```text
//! [sample filter] → [annotate transform] → [bridge → transport]
//! ```
//!
//! — and the analytics side decodes the arriving records into a
//! [`PerfMonitor`] replica it can hand to the
//! [`crate::manager::PlacementManager`]. The filter keeps the relay off
//! the critical path: only every `stride`-th event crosses.

use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use evpath::{BoxedReceiver, BoxedSender, EvGraph, FieldValue, Record, RecvPoll, StoneId};

use crate::directory::{DirectoryError, DirectoryService};
use crate::link::ChannelId;
use crate::monitor::{MonitorEvent, PerfMonitor};

fn event_from_name(name: &str) -> Option<MonitorEvent> {
    Some(match name {
        "data_send" => MonitorEvent::DataSend,
        "data_recv" => MonitorEvent::DataRecv,
        "handshake" => MonitorEvent::Handshake,
        "plugin_exec" => MonitorEvent::PluginExec,
        "allocation" => MonitorEvent::Allocation,
        "sync_wait" => MonitorEvent::SyncWait,
        "pubsub_deliver" => MonitorEvent::PubSubDeliver,
        "pubsub_spill" => MonitorEvent::PubSubSpill,
        "query_rows_in" => MonitorEvent::QueryRowsIn,
        "query_rows_out" => MonitorEvent::QueryRowsOut,
        "query_bytes_pushed" => MonitorEvent::QueryBytesPushed,
        "query_bytes_saved" => MonitorEvent::QueryBytesSaved,
        "step_seal" => MonitorEvent::StepSeal,
        _ => return None,
    })
}

/// The sending (simulation-side) half of the relay: a stone graph that
/// samples, annotates and ships monitoring records.
pub struct MonitorRelay {
    graph: EvGraph,
    entry: StoneId,
    sent: u64,
}

impl MonitorRelay {
    /// Build a relay over `transport`, forwarding every `stride`-th
    /// sample, annotated with the producing `rank`.
    pub fn new(transport: BoxedSender, rank: usize, stride: u64) -> MonitorRelay {
        assert!(stride >= 1);
        let mut graph = EvGraph::new();
        let bridge = graph.bridge(transport);
        let annotate =
            graph.transform(move |r| r.with("relay_rank", FieldValue::U64(rank as u64)), bridge);
        // Sampling filter driven by a sequence number stamped on entry.
        let sample = graph
            .filter(move |r| r.get_u64("seq").is_some_and(|s| s.is_multiple_of(stride)), annotate);
        MonitorRelay { graph, entry: sample, sent: 0 }
    }

    /// Build the relay on stream `name`'s own monitoring channel,
    /// discovered through the directory service like every other channel
    /// of the link (paper §II.C.1: the directory is how the two sides
    /// find each other — the relay is no exception). The simulation-side
    /// coordinator calls this once the coupling is up (the channel's
    /// transport is placed from both coordinators' cores, so the reader
    /// side must have attached).
    pub fn for_stream(
        directory: &dyn DirectoryService,
        name: &str,
        rank: usize,
        stride: u64,
        timeout: Duration,
    ) -> Result<MonitorRelay, DirectoryError> {
        let link = directory.lookup(name, timeout)?;
        Ok(MonitorRelay::new(link.claim_sender(ChannelId::Monitor), rank, stride))
    }

    /// Submit one monitoring sample into the relay.
    pub fn publish(&mut self, event: MonitorEvent, step: u64, rank: usize, bytes: u64, nanos: u64) {
        self.publish_named(event.name(), step, rank, bytes, nanos);
    }

    /// Submit a sample under a raw event name. This is how a newer
    /// producer ships an event class an older sink has no
    /// [`MonitorEvent`] variant for — the sink forwards it into its
    /// replica's named-aggregate table rather than dropping it.
    pub fn publish_named(&mut self, name: &str, step: u64, rank: usize, bytes: u64, nanos: u64) {
        let record = Record::new()
            .with("seq", FieldValue::U64(self.sent))
            .with("event", FieldValue::Str(name.to_string()))
            .with("step", FieldValue::U64(step))
            .with("rank", FieldValue::U64(rank as u64))
            .with("bytes", FieldValue::U64(bytes))
            .with("nanos", FieldValue::U64(nanos));
        self.sent += 1;
        self.graph.submit(self.entry, record);
    }

    /// Forward an entire trace (e.g. [`PerfMonitor::dump_trace`] output).
    /// Event names are forwarded verbatim — a trace from a newer build
    /// loses nothing on its way through an older relay.
    pub fn publish_trace(&mut self, trace: &[Record]) {
        for r in trace {
            let (Some(event), Some(step), Some(rank), Some(bytes), Some(nanos)) = (
                r.get_str("event").map(str::to_string),
                r.get_u64("step"),
                r.get_u64("rank"),
                r.get_u64("bytes"),
                r.get_u64("nanos"),
            ) else {
                continue;
            };
            self.publish_named(&event, step, rank as usize, bytes, nanos);
        }
    }
}

/// The receiving (analytics-side) half: drains relayed records into a
/// local [`PerfMonitor`] replica.
pub struct MonitorSink {
    rx: BoxedReceiver,
    replica: PerfMonitor,
    closed: bool,
    corrupt_frames: u64,
    /// Link-level protocol counters to mirror transport health into, so a
    /// dead or corrupting monitor peer shows up in the same
    /// `closed_channels`/`corrupt_frames` books as data-plane channels.
    counters: Option<Arc<crate::protocol::ProtocolCounters>>,
}

impl MonitorSink {
    /// Wrap the receiving end of the relay transport.
    pub fn new(rx: BoxedReceiver) -> MonitorSink {
        MonitorSink {
            rx,
            replica: PerfMonitor::new(),
            closed: false,
            corrupt_frames: 0,
            counters: None,
        }
    }

    /// Mirror transport health (peer close, corrupt frames) into a link's
    /// shared protocol counters. [`Self::for_stream`] installs the
    /// stream's own counters automatically.
    pub fn with_counters(mut self, counters: Arc<crate::protocol::ProtocolCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Attach to stream `name`'s monitoring channel through the directory
    /// service (the analytics-side counterpart of
    /// [`MonitorRelay::for_stream`]).
    pub fn for_stream(
        directory: &dyn DirectoryService,
        name: &str,
        timeout: Duration,
    ) -> Result<MonitorSink, DirectoryError> {
        let link = directory.lookup(name, timeout)?;
        let counters = Arc::clone(&link.counters);
        Ok(MonitorSink::new(link.claim_receiver(ChannelId::Monitor)).with_counters(counters))
    }

    /// Drain every currently-available relayed sample; returns how many
    /// were absorbed. Driven by the readiness poll so the sink can tell
    /// "queue momentarily empty" (drain again later) from "the producing
    /// side is gone" ([`Self::peer_closed`]); corrupt frames are counted
    /// and skipped — monitoring is advisory, never worth failing over.
    pub fn drain(&mut self) -> usize {
        let mut absorbed = 0;
        loop {
            let bytes = match self.rx.poll_recv() {
                RecvPoll::Msg(bytes) => bytes,
                RecvPoll::Empty => break,
                RecvPoll::Closed => {
                    if !self.closed {
                        if let Some(c) = &self.counters {
                            c.bump(&c.closed_channels);
                        }
                    }
                    self.closed = true;
                    break;
                }
                RecvPoll::Corrupt(_) => {
                    self.corrupt_frames += 1;
                    if let Some(c) = &self.counters {
                        c.bump(&c.corrupt_frames);
                    }
                    continue;
                }
            };
            let Ok(r) = Record::decode(&bytes) else { continue };
            let Some(name) = r.get_str("event") else { continue };
            match event_from_name(name) {
                Some(event) => {
                    let (Some(step), Some(rank), Some(payload), Some(nanos)) = (
                        r.get_u64("step"),
                        r.get_u64("rank"),
                        r.get_u64("bytes"),
                        r.get_u64("nanos"),
                    ) else {
                        continue;
                    };
                    self.replica.record(event, step, rank as usize, payload, nanos);
                }
                // An event class this build does not know — a newer
                // producer on the other end. Forward the counters into
                // the by-name table instead of silently dropping them.
                None => {
                    let payload = r.get_u64("bytes").unwrap_or(0);
                    let nanos = r.get_u64("nanos").unwrap_or(0);
                    self.replica.record_named(name, payload, nanos);
                }
            }
            absorbed += 1;
        }
        absorbed
    }

    /// Whether a drain observed the relay's producing side gone for good.
    /// The manager loop uses this to stop polling a dead relay instead of
    /// spinning on an empty queue forever.
    pub fn peer_closed(&self) -> bool {
        self.closed
    }

    /// Transport frames that arrived damaged and were skipped.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// The local replica of the remote side's monitor — feed this to a
    /// [`crate::manager::PlacementManager`].
    pub fn monitor(&self) -> &PerfMonitor {
        &self.replica
    }

    /// Convert the sink into a periodic drain task for a reactor (one of
    /// the staging node's ad-hoc pollers folded into the fleet). The
    /// task drains every `interval`, ends on its own when the producing
    /// side goes away, and can be ended early through the handle's
    /// `stop`. The handle shares the live [`PerfMonitor`] replica, so a
    /// manager can read it while the task runs.
    pub fn into_task(
        mut self,
        interval: Duration,
    ) -> (SinkTaskHandle, impl Future<Output = ()> + Send) {
        let handle = SinkTaskHandle {
            absorbed: Arc::new(AtomicU64::new(0)),
            corrupt: Arc::new(AtomicU64::new(0)),
            closed: Arc::new(AtomicBool::new(false)),
            stop: Arc::new(AtomicBool::new(false)),
            done: Arc::new(AtomicBool::new(false)),
            replica: self.replica.clone(),
        };
        let (absorbed, corrupt, closed, stop, done) = (
            Arc::clone(&handle.absorbed),
            Arc::clone(&handle.corrupt),
            Arc::clone(&handle.closed),
            Arc::clone(&handle.stop),
            Arc::clone(&handle.done),
        );
        let task = async move {
            while !stop.load(Ordering::Acquire) {
                let n = self.drain();
                if n > 0 {
                    absorbed.fetch_add(n as u64, Ordering::Relaxed);
                    flexio_reactor::note_progress();
                }
                corrupt.store(self.corrupt_frames, Ordering::Relaxed);
                if self.peer_closed() {
                    closed.store(true, Ordering::Release);
                    break;
                }
                flexio_reactor::sleep(interval).await;
            }
            done.store(true, Ordering::Release);
        };
        (handle, task)
    }
}

/// Observer/controller for a fleet-spawned [`MonitorSink::into_task`]
/// drain loop. Cloning shares the underlying state.
#[derive(Clone)]
pub struct SinkTaskHandle {
    absorbed: Arc<AtomicU64>,
    corrupt: Arc<AtomicU64>,
    closed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    replica: PerfMonitor,
}

impl SinkTaskHandle {
    /// Samples absorbed into the replica so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed.load(Ordering::Relaxed)
    }

    /// Damaged frames skipped so far.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Whether the task saw the producing side gone (and exited).
    pub fn peer_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// The live monitor replica (shared with the running task).
    pub fn monitor(&self) -> &PerfMonitor {
        &self.replica
    }

    /// Ask the task to exit after its current drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl crate::task::ControlTask for SinkTaskHandle {
    fn kind(&self) -> &'static str {
        "monitor_sink"
    }

    fn stop(&self) {
        SinkTaskHandle::stop(self);
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("absorbed", self.absorbed()),
            ("corrupt_frames", self.corrupt_frames()),
            ("peer_closed", u64::from(self.peer_closed())),
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PlacementManager;
    use crate::plugins::PluginPlacement;
    use evpath::inproc_pair;

    #[test]
    fn relay_ships_samples_across_a_transport() {
        let (tx, rx) = inproc_pair();
        let mut relay = MonitorRelay::new(tx, 3, 1);
        let mut sink = MonitorSink::new(rx);
        for step in 0..5 {
            relay.publish(MonitorEvent::DataSend, step, 3, 1000, 50);
        }
        assert_eq!(sink.drain(), 5);
        assert_eq!(sink.monitor().total_bytes(MonitorEvent::DataSend), 5000);
        assert_eq!(sink.monitor().count(MonitorEvent::DataSend), 5);
    }

    #[test]
    fn sampling_stride_thins_the_stream() {
        let (tx, rx) = inproc_pair();
        let mut relay = MonitorRelay::new(tx, 0, 4);
        let mut sink = MonitorSink::new(rx);
        for step in 0..20 {
            relay.publish(MonitorEvent::Handshake, step, 0, 0, 10);
        }
        // Only seq 0, 4, 8, 12, 16 cross.
        assert_eq!(sink.drain(), 5);
    }

    #[test]
    fn trace_replay_reconstructs_the_remote_view() {
        // Simulation side records into its monitor; the trace is relayed;
        // the analytics-side replica agrees on aggregates.
        let origin = PerfMonitor::new();
        for step in 0..4 {
            origin.record(MonitorEvent::DataSend, step, 1, 2048, 100);
            origin.record(MonitorEvent::PluginExec, step, 1, 0, 7_000);
        }
        let (tx, rx) = inproc_pair();
        let mut relay = MonitorRelay::new(tx, 1, 1);
        relay.publish_trace(&origin.dump_trace());
        let mut sink = MonitorSink::new(rx);
        sink.drain();
        let replica = sink.monitor();
        assert_eq!(
            replica.total_bytes(MonitorEvent::DataSend),
            origin.total_bytes(MonitorEvent::DataSend)
        );
        assert_eq!(
            replica.total_nanos(MonitorEvent::PluginExec),
            origin.total_nanos(MonitorEvent::PluginExec)
        );
        assert_eq!(
            replica.bytes_per_step(MonitorEvent::DataSend, 1),
            origin.bytes_per_step(MonitorEvent::DataSend, 1)
        );
    }

    #[test]
    fn relayed_monitor_drives_placement_decisions() {
        // The §II.G loop end to end: remote samples → replica → manager.
        let (tx, rx) = inproc_pair();
        let mut relay = MonitorRelay::new(tx, 0, 1);
        for step in 0..5 {
            relay.publish(MonitorEvent::DataSend, step, 0, 50 << 20, 0);
        }
        let mut sink = MonitorSink::new(rx);
        sink.drain();
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::ReaderSide)
            .build_manager();
        let rec = mgr.decide(sink.monitor(), 0);
        assert_eq!(rec.placement, PluginPlacement::WriterSide);
    }

    #[test]
    fn garbage_is_ignored_but_unknown_events_are_forwarded() {
        let (mut tx, rx) = inproc_pair();
        // Undecodable bytes and event-less records stay ignored…
        tx.send(b"not a record");
        tx.send(&Record::new().with("step", FieldValue::U64(1)).encode());
        // …but a well-formed record with an event name this build does
        // not know is forwarded into the named-aggregate table (a newer
        // producer must not lose counters through an older sink).
        tx.send(
            &Record::new()
                .with("event", FieldValue::Str("gpu_kernel".into()))
                .with("step", FieldValue::U64(3))
                .with("rank", FieldValue::U64(0))
                .with("bytes", FieldValue::U64(512))
                .with("nanos", FieldValue::U64(9))
                .encode(),
        );
        let mut sink = MonitorSink::new(rx);
        assert_eq!(sink.drain(), 1);
        assert_eq!(sink.monitor().named("gpu_kernel"), Some((1, 512, 9)));
    }

    #[test]
    fn trace_replay_preserves_unknown_event_names() {
        let origin = PerfMonitor::new();
        origin.record_named("gpu_kernel", 64, 5);
        let trace = vec![Record::new()
            .with("event", FieldValue::Str("gpu_kernel".into()))
            .with("step", FieldValue::U64(0))
            .with("rank", FieldValue::U64(0))
            .with("bytes", FieldValue::U64(64))
            .with("nanos", FieldValue::U64(5))];
        let (tx, rx) = inproc_pair();
        let mut relay = MonitorRelay::new(tx, 0, 1);
        relay.publish_trace(&trace);
        let mut sink = MonitorSink::new(rx);
        sink.drain();
        assert_eq!(sink.monitor().named("gpu_kernel"), origin.named("gpu_kernel"));
    }

    #[test]
    fn sink_reports_a_dead_relay() {
        let (mut tx, rx) = inproc_pair();
        let mut relay_alive_sink = MonitorSink::new(rx);
        tx.send(
            &Record::new()
                .with("event", FieldValue::Str("data_send".into()))
                .with("step", FieldValue::U64(0))
                .with("rank", FieldValue::U64(0))
                .with("bytes", FieldValue::U64(8))
                .with("nanos", FieldValue::U64(1))
                .encode(),
        );
        assert_eq!(relay_alive_sink.drain(), 1);
        assert!(!relay_alive_sink.peer_closed(), "producer still holds the transport");
        drop(tx);
        assert_eq!(relay_alive_sink.drain(), 0);
        assert!(relay_alive_sink.peer_closed(), "drain must observe the producer's death");
    }
}
