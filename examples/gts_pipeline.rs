//! The paper's GTS pipeline (§IV.A), end to end and fully functional:
//!
//! 1. four GTS ranks push particles and output `zion`/`electrons` arrays
//!    (7 attributes each) every two cycles, through FlexIO stream mode
//!    with the process-group I/O pattern;
//! 2. a **Data Conditioning plug-in** — the velocity bounding box — is
//!    deployed from the analytics side *into the simulation's address
//!    space*, so the ~20% range query runs before data crosses the
//!    transport;
//! 3. two analytics ranks compute the particle distribution function,
//!    merge 1-D/2-D histograms across ranks, and write them as CSV files
//!    for parallel-coordinates visualization.
//!
//! Run with: `cargo run --example gts_pipeline`

use std::thread;

use adios::{ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use apps::gts::{Gts, GtsConfig, ATTRS, VPAR};
use apps::{distribution_function, Histogram1D, Histogram2D};
use flexio::{FlexIo, PluginPlacement, PluginSpec, StreamHints};
use machine::{laptop, CoreLocation};

const SIM_RANKS: usize = 4;
const ANA_RANKS: usize = 2;
const CYCLES: u64 = 8; // → 4 output steps at interval 2

fn main() {
    let io = FlexIo::single_node(laptop());
    let hints = StreamHints { batching: true, ..StreamHints::default() };

    // --- estimate the ~20%-core velocity band from a throwaway rank so
    //     the reader can parameterize its DC plug-in up front.
    let probe = Gts::new(0, GtsConfig::default());
    let dist = distribution_function(&probe.zion().data, 256, (-2.0, 2.0));
    let (v_lo, v_hi) = (dist.quantile(0.40), dist.quantile(0.60));
    println!("range query band: v_par in [{v_lo:.3}, {v_hi:.3}] (~20% of particles)");

    let io_w = io.clone();
    let hints_w = hints.clone();
    let sim = thread::spawn(move || {
        rankrt::launch_named(SIM_RANKS, "gts", move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..SIM_RANKS).map(|r| laptop().node.location_of(r)).collect();
            let mut writer = io_w
                .open_writer(
                    "gts.particles",
                    rank,
                    SIM_RANKS,
                    roster[rank],
                    roster,
                    hints_w.clone(),
                )
                .expect("open writer");
            let mut gts =
                Gts::new(rank, GtsConfig { particles_per_rank: 3000, ..Default::default() });
            let mut written = 0u64;
            for _ in 0..CYCLES {
                gts.step();
                if gts.should_output() {
                    writer.begin_step(gts.cycle());
                    for (name, value) in gts.output_vars() {
                        // GTS writes whole particle arrays; the plug-in
                        // needs the flat v_par column alongside.
                        writer.write(&name, value);
                    }
                    writer.write(
                        "v_par",
                        VarValue::Block(
                            adios::LocalBlock {
                                global_shape: vec![gts.zion().len() as u64],
                                offset: vec![0],
                                count: vec![gts.zion().len() as u64],
                                data: adios::ArrayData::F64(gts.zion().column(VPAR)),
                            }
                            .validated(),
                        ),
                    );
                    writer.end_step();
                    written += 1;
                }
            }
            writer.close();
            written
        })
    });

    let io_r = io.clone();
    let ana = thread::spawn(move || {
        rankrt::launch_named(ANA_RANKS, "analytics", move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..ANA_RANKS).map(|r| laptop().node.location_of(15 - r)).collect();
            let mut reader = io_r
                .open_reader("gts.particles", rank, ANA_RANKS, roster[rank], roster, hints.clone())
                .expect("open reader");
            // Reader rank j consumes the process groups of writers j, j+2.
            let my_writers = [rank, rank + ANA_RANKS];
            for w in my_writers {
                reader.subscribe("zion", Selection::ProcessGroup(w));
                reader.subscribe("v_par", Selection::ProcessGroup(w));
                reader.subscribe("nparticles", Selection::ProcessGroup(w));
            }
            // Deploy the range query INTO the simulation (writer side):
            // only the ~20% core band crosses the transport.
            if rank == 0 {
                reader.install_plugin(PluginSpec {
                    var: "v_par".to_string(),
                    source: codelet::plugins::bounding_box("v_par", v_lo, v_hi),
                    placement: PluginPlacement::WriterSide,
                });
            }

            let mut h1 = Histogram1D::new(v_lo - 0.05, v_hi + 0.05, 32);
            let mut h2 = Histogram2D::new((v_lo, v_hi), (0.0, 1.5), 16, 16);
            let mut total_in = 0u64;
            let mut total_selected = 0u64;
            let mut steps = 0u64;
            loop {
                match reader.begin_step() {
                    StepStatus::Step(_) => {
                        for w in my_writers {
                            let n = match reader.read("nparticles", &Selection::ProcessGroup(w)) {
                                Some(VarValue::Scalar(adios::ScalarValue::U64(n))) => n,
                                _ => 0,
                            };
                            total_in += n;
                            if let Some(VarValue::Block(selected)) =
                                reader.read("v_par", &Selection::ProcessGroup(w))
                            {
                                let vals = selected.data.as_f64();
                                total_selected += vals.len() as u64;
                                for &v in vals {
                                    h1.add(v);
                                    h2.add(v, v.abs());
                                }
                            }
                        }
                        steps += 1;
                        reader.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            // Merge across analytics ranks (histogram reduction).
            let merged = comm.allreduce_sum_f64_vec(&h1.bins);
            h1.bins = merged;
            let merged2 = comm.allreduce_sum_f64_vec(&h2.bins);
            h2.bins = merged2;
            let selected = comm.allreduce_sum_u64(total_selected);
            let seen = comm.allreduce_sum_u64(total_in);
            if rank == 0 {
                let dir = std::env::temp_dir().join("flexio-gts-pipeline");
                std::fs::create_dir_all(&dir).expect("outdir");
                let csv = dir.join("vpar_hist.csv");
                std::fs::write(&csv, h1.to_csv()).expect("write histogram");
                println!("steps analyzed: {steps}");
                println!(
                    "selectivity: {selected}/{seen} = {:.1}% (paper: ~20%)",
                    selected as f64 / seen as f64 * 100.0
                );
                println!("1-D histogram written to {}", csv.display());
                println!("2-D histogram mass: {}", h2.total());
            }
            (seen, selected)
        })
    });

    let written = sim.join().expect("sim");
    let results = ana.join().expect("ana");
    assert!(written.iter().all(|&w| w == CYCLES / 2));
    let (seen, selected) = results[0];
    let frac = selected as f64 / seen as f64;
    assert!((0.10..=0.35).contains(&frac), "selectivity {frac} strayed from the ~20% band");
    assert_eq!(ATTRS, 7, "paper's seven-attribute layout");
    println!("GTS pipeline complete.");
}
