//! Runtime values of the codelet VM.

use std::cell::RefCell;
use std::rc::Rc;

/// A runtime value. Arrays have reference semantics (`push(out, x)`
/// mutates the array bound to `out`), matching what C-like plug-in code
//  expects of pointers.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Double.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<String>),
    /// Array of doubles.
    FloatArr(Rc<RefCell<Vec<f64>>>),
    /// Array of integers.
    IntArr(Rc<RefCell<Vec<i64>>>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::FloatArr(_) => "float[]",
            Value::IntArr(_) => "int[]",
        }
    }

    /// Numeric view: ints widen to float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view (floats do not silently truncate).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Truthiness: only `Bool` has one (no implicit int→bool).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Build a float array value.
    pub fn float_arr(v: Vec<f64>) -> Value {
        Value::FloatArr(Rc::new(RefCell::new(v)))
    }

    /// Build an int array value.
    pub fn int_arr(v: Vec<i64>) -> Value {
        Value::IntArr(Rc::new(RefCell::new(v)))
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }
}

/// Structural equality used by `==`/`!=` (numeric comparison widens ints).
pub fn values_equal(a: &Value, b: &Value) -> Option<bool> {
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => Some(x == y),
        (Value::Str(x), Value::Str(y)) => Some(x == y),
        (Value::FloatArr(x), Value::FloatArr(y)) => Some(*x.borrow() == *y.borrow()),
        (Value::IntArr(x), Value::IntArr(y)) => Some(*x.borrow() == *y.borrow()),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Some(x == y),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn arrays_share_storage() {
        let a = Value::float_arr(vec![1.0]);
        let b = a.clone();
        if let Value::FloatArr(arr) = &a {
            arr.borrow_mut().push(2.0);
        }
        if let Value::FloatArr(arr) = &b {
            assert_eq!(*arr.borrow(), vec![1.0, 2.0]);
        }
    }

    #[test]
    fn equality_across_numeric_types() {
        assert_eq!(values_equal(&Value::Int(2), &Value::Float(2.0)), Some(true));
        assert_eq!(values_equal(&Value::Int(2), &Value::Str(Rc::new("2".into()))), None);
        assert_eq!(
            values_equal(&Value::float_arr(vec![1.0]), &Value::float_arr(vec![1.0])),
            Some(true)
        );
    }
}
