//! Collective operations layered on point-to-point messaging.
//!
//! The FlexIO handshake protocol (paper §II.C) uses gather, exchange and
//! broadcast among each side's ranks; placement bootstrap uses allgather and
//! reductions. All collectives here use simple, deterministic algorithms
//! (flat root-based trees for gather/bcast, dissemination for barrier),
//! which is appropriate for the in-process scale of this runtime.

use crate::comm::{Comm, Tag, COLLECTIVE_SEQ_WINDOWS, COLLECTIVE_SLOTS, COLLECTIVE_TAG_BASE};

/// Per-operation slot offsets within a collective's sequence window.
/// Slots 0..63 are the barrier's per-round tags.
const SLOT_BCAST: Tag = 64;
const SLOT_GATHER: Tag = 65;
const SLOT_SCATTER: Tag = 66;
const SLOT_ALLTOALL: Tag = 67;
/// Middleware-reserved tags live below the collective space entirely.
const TAG_RESERVED: Tag = COLLECTIVE_TAG_BASE - 1024;

/// Tag for `slot` within the window of collective sequence `seq`.
/// Sequence numbers wrap after [`COLLECTIVE_SEQ_WINDOWS`] calls, which is
/// safe because far fewer than 8192 collectives can be in flight at once.
fn coll_tag(seq: u64, slot: Tag) -> Tag {
    debug_assert!(slot < COLLECTIVE_SLOTS);
    COLLECTIVE_TAG_BASE + (seq % COLLECTIVE_SEQ_WINDOWS) * COLLECTIVE_SLOTS + slot
}

impl Comm {
    /// Block until every rank of the communicator has entered the barrier.
    ///
    /// Uses the dissemination algorithm: `ceil(log2(n))` rounds, in round
    /// `k` rank `r` signals `r + 2^k (mod n)` and waits on `r - 2^k (mod n)`.
    pub fn barrier(&self) {
        let seq = self.next_collective_seq();
        let n = self.size();
        if n == 1 {
            return;
        }
        let mut round: Tag = 0;
        let mut dist = 1;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            // Round-specific tag within this barrier's sequence window:
            // at most 64 dissemination rounds are possible (2^64 ranks).
            self.send(to, coll_tag(seq, round), &[]);
            let _ = self.recv(from, coll_tag(seq, round));
            round += 1;
            dist <<= 1;
        }
    }

    /// Broadcast `data` from `root` to every rank; each rank returns the
    /// root's bytes.
    pub fn bcast(&self, root: usize, data: &[u8]) -> Vec<u8> {
        let tag = coll_tag(self.next_collective_seq(), SLOT_BCAST);
        assert!(root < self.size());
        if self.size() == 1 {
            return data.to_vec();
        }
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    self.send(r, tag, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, tag)
        }
    }

    /// Gather every rank's `data` at `root`. The root receives
    /// `Some(contributions)` indexed by rank; other ranks receive `None`.
    pub fn gather(&self, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let tag = coll_tag(self.next_collective_seq(), SLOT_GATHER);
        assert!(root < self.size());
        if self.rank() == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = data.to_vec();
            for _ in 0..self.size() - 1 {
                let (src, payload) = self.recv_any(tag);
                out[src] = payload;
            }
            Some(out)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// Gather every rank's `data` at every rank (gather + broadcast).
    pub fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let gathered = self.gather(0, data);
        let packed = if self.rank() == 0 {
            pack_parts(&gathered.expect("root gathers"))
        } else {
            Vec::new()
        };
        let packed = self.bcast(0, &packed);
        unpack_parts(&packed)
    }

    /// Scatter: root supplies one byte-vector per rank; each rank (root
    /// included) returns its own slice.
    pub fn scatter(&self, root: usize, parts: Option<&[Vec<u8>]>) -> Vec<u8> {
        assert!(root < self.size());
        let tag = coll_tag(self.next_collective_seq(), SLOT_SCATTER);
        if self.rank() == root {
            let parts = parts.expect("root must supply parts");
            assert_eq!(parts.len(), self.size(), "one part per rank");
            for (r, part) in parts.iter().enumerate() {
                if r != root {
                    self.send(r, tag, part);
                }
            }
            parts[root].clone()
        } else {
            self.recv(root, tag)
        }
    }

    /// Personalized all-to-all: `parts[r]` goes to rank `r`; returns the
    /// vector of bytes received from each rank.
    pub fn alltoall(&self, parts: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let tag = coll_tag(self.next_collective_seq(), SLOT_ALLTOALL);
        assert_eq!(parts.len(), self.size(), "one part per rank");
        for (r, part) in parts.iter().enumerate() {
            if r != self.rank() {
                self.send(r, tag, part);
            }
        }
        let mut out = vec![Vec::new(); self.size()];
        out[self.rank()] = parts[self.rank()].clone();
        for _ in 0..self.size() - 1 {
            let (src, payload) = self.recv_any(tag);
            out[src] = payload;
        }
        out
    }

    /// Sum-reduce a `u64` to `root`; the root gets `Some(total)`.
    pub fn reduce_sum_u64(&self, root: usize, value: u64) -> Option<u64> {
        let contributions = self.gather(root, &value.to_le_bytes())?;
        Some(
            contributions
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload")))
                .sum(),
        )
    }

    /// Sum-reduce a `u64` to every rank.
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        let total = self.reduce_sum_u64(0, value);
        let bytes = self.bcast(0, &total.unwrap_or(0).to_le_bytes());
        u64::from_le_bytes(bytes.try_into().expect("u64 payload"))
    }

    /// Sum-reduce an `f64` to every rank.
    pub fn allreduce_sum_f64(&self, value: f64) -> f64 {
        let contributions = self.gather(0, &value.to_le_bytes());
        let total: f64 = match contributions {
            Some(parts) => parts
                .iter()
                .map(|b| f64::from_le_bytes(b.as_slice().try_into().expect("f64 payload")))
                .sum(),
            None => 0.0,
        };
        let bytes = self.bcast(0, &total.to_le_bytes());
        f64::from_le_bytes(bytes.try_into().expect("f64 payload"))
    }

    /// Max-reduce a `u64` to every rank.
    pub fn allreduce_max_u64(&self, value: u64) -> u64 {
        let contributions = self.gather(0, &value.to_le_bytes());
        let total: u64 = match contributions {
            Some(parts) => parts
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload")))
                .max()
                .unwrap_or(0),
            None => 0,
        };
        let bytes = self.bcast(0, &total.to_le_bytes());
        u64::from_le_bytes(bytes.try_into().expect("u64 payload"))
    }

    /// Element-wise sum of equal-length `f64` vectors, result on all ranks.
    /// Used by analytics to merge histograms (paper §IV.A).
    pub fn allreduce_sum_f64_vec(&self, values: &[f64]) -> Vec<f64> {
        let bytes = crate::typed::f64s_as_bytes(values);
        let contributions = self.gather(0, &bytes);
        let merged = match contributions {
            Some(parts) => {
                let mut acc = vec![0.0f64; values.len()];
                for part in &parts {
                    let vals = crate::typed::bytes_as_f64s(part);
                    assert_eq!(vals.len(), acc.len(), "vectors must be same length");
                    for (a, v) in acc.iter_mut().zip(vals) {
                        *a += v;
                    }
                }
                crate::typed::f64s_as_bytes(&acc)
            }
            None => Vec::new(),
        };
        let merged = self.bcast(0, &merged);
        crate::typed::bytes_as_f64s(&merged)
    }

    /// Unused-reserved tag helper exposed for middleware layers that need a
    /// tag space disjoint from both user tags and collective tags.
    pub fn reserved_tag(slot: u64) -> Tag {
        assert!(slot < 512, "reserved tag slot out of range");
        TAG_RESERVED + slot
    }
}

/// Length-prefixed packing of byte parts (used by allgather's broadcast leg).
fn pack_parts(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| 8 + p.len()).sum();
    let mut out = Vec::with_capacity(8 + total);
    out.extend_from_slice(&(parts.len() as u64).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

fn unpack_parts(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut cursor = 0usize;
    let read_u64 = |cursor: &mut usize| {
        let v = u64::from_le_bytes(bytes[*cursor..*cursor + 8].try_into().unwrap());
        *cursor += 8;
        v
    };
    let count = read_u64(&mut cursor) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u64(&mut cursor) as usize;
        out.push(bytes[cursor..cursor + len].to_vec());
        cursor += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::launch;

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        launch(8, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            assert_eq!(c2.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let results = launch(5, |comm| comm.bcast(3, &[comm.rank() as u8]));
        for r in results {
            assert_eq!(r, vec![3]);
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let results = launch(4, |comm| comm.gather(1, &[comm.rank() as u8 * 10]));
        assert!(results[0].is_none());
        let at_root = results[1].as_ref().unwrap();
        assert_eq!(at_root, &vec![vec![0], vec![10], vec![20], vec![30]]);
    }

    #[test]
    fn allgather_delivers_everywhere() {
        let results = launch(6, |comm| comm.allgather(&(comm.rank() as u64).to_le_bytes()));
        for per_rank in results {
            let vals: Vec<u64> = per_rank
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
                .collect();
            assert_eq!(vals, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn scatter_distributes_parts() {
        let results = launch(3, |comm| {
            if comm.rank() == 0 {
                let parts = vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()];
                comm.scatter(0, Some(&parts))
            } else {
                comm.scatter(0, None)
            }
        });
        assert_eq!(results, vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]);
    }

    #[test]
    fn alltoall_transposes() {
        let results = launch(3, |comm| {
            let parts: Vec<Vec<u8>> =
                (0..3).map(|dst| vec![comm.rank() as u8, dst as u8]).collect();
            comm.alltoall(&parts)
        });
        for (rank, received) in results.iter().enumerate() {
            for (src, msg) in received.iter().enumerate() {
                assert_eq!(msg, &vec![src as u8, rank as u8]);
            }
        }
    }

    #[test]
    fn reductions() {
        let sums = launch(4, |comm| comm.allreduce_sum_u64(comm.rank() as u64 + 1));
        assert_eq!(sums, vec![10, 10, 10, 10]);
        let maxes = launch(4, |comm| comm.allreduce_max_u64(comm.rank() as u64 * 7));
        assert_eq!(maxes, vec![21, 21, 21, 21]);
        let fsums = launch(3, |comm| comm.allreduce_sum_f64(0.5));
        for v in fsums {
            assert!((v - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn back_to_back_gathers_never_cross_match() {
        // Regression: without per-collective sequence tags, a fast rank's
        // round-2 contribution could satisfy the root's round-1 receive
        // (needs >= 3 ranks to manifest). Run many consecutive gathers
        // with skewed rank speeds and verify every round's contents.
        let results = launch(5, |comm| {
            let mut ok = true;
            for round in 0u64..50 {
                // Skew: higher ranks race ahead.
                if comm.rank() == 1 {
                    std::thread::yield_now();
                }
                let payload = (round * 100 + comm.rank() as u64).to_le_bytes();
                if let Some(parts) = comm.gather(0, &payload) {
                    for (rank, part) in parts.iter().enumerate() {
                        let v = u64::from_le_bytes(part.as_slice().try_into().unwrap());
                        ok &= v == round * 100 + rank as u64;
                    }
                }
            }
            ok
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn back_to_back_barriers_and_alltoalls() {
        let results = launch(4, |comm| {
            for _ in 0..20 {
                comm.barrier();
            }
            for round in 0u64..10 {
                let parts: Vec<Vec<u8>> = (0..4).map(|d| vec![(round * 4 + d) as u8]).collect();
                let got = comm.alltoall(&parts);
                for (src, msg) in got.iter().enumerate() {
                    assert_eq!(msg[0], (round * 4 + comm.rank() as u64) as u8, "from {src}");
                }
            }
            true
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn vector_reduction_merges_histograms() {
        let results = launch(4, |comm| {
            let mut hist = vec![0.0f64; 8];
            hist[comm.rank() * 2] = 1.0;
            comm.allreduce_sum_f64_vec(&hist)
        });
        for hist in results {
            assert_eq!(hist, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        }
    }
}
