//! Connection management: the fabric of channels between the two coupled
//! programs, with transports auto-selected from placement (paper §II.A:
//! "intra- vs inter-node transports are automatically configured according
//! to the placements of communicating simulation and online analytics
//! processes").

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adios::GroupConfig;
use evpath::{
    inproc_pair, BoxedReceiver, BoxedSender, EvReceiver, EvSender, FaultPlan, FaultSpec,
    NetTransport, Record, RecvPoll, ShmTransport,
};
use machine::{CoreLocation, MachineModel};
use netsim::NetSim;
use parking_lot::{Condvar, Mutex};

use crate::directory::{DirectoryError, DirectoryService, InProcDirectory};
use crate::monitor::PerfMonitor;
use crate::protocol::{CachingLevel, ProtocolCounters, WriteMode};
use crate::reader::StreamReader;
use crate::writer::StreamWriter;

/// Which engine backend drives a stream's protocol steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// One OS thread per stream side; receive waits park the thread
    /// (the original backend, and the default).
    Blocking,
    /// Poll-driven state machines on the single-threaded
    /// `flexio-reactor` event loop. Through the blocking `StreamWriter`
    /// / `StreamReader` API each protocol call runs on a caller-thread
    /// mini event loop; the `*_rt` async entry points let one reactor
    /// thread multiplex many streams.
    Reactor,
}

impl Runtime {
    /// Parse an XML `runtime` hint value.
    pub fn from_hint(value: &str) -> Option<Runtime> {
        match value {
            "blocking" | "thread" => Some(Runtime::Blocking),
            "reactor" => Some(Runtime::Reactor),
            _ => None,
        }
    }
}

/// Process-wide default runtime: `FLEXIO_RUNTIME=reactor` flips every
/// stream that doesn't set an explicit hint, which is how the verify
/// suite replays the whole mode-matrix and fault battery on the reactor
/// backend without touching the tests.
fn default_runtime() -> Runtime {
    static DEFAULT: std::sync::OnceLock<Runtime> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FLEXIO_RUNTIME")
            .ok()
            .as_deref()
            .and_then(Runtime::from_hint)
            .unwrap_or(Runtime::Blocking)
    })
}

/// Which byte transport a stream's channels run over.
///
/// `Auto` is the paper's behaviour — placement picks in-proc, shm or the
/// RDMA fabric per channel. The explicit selections force every channel
/// of the stream onto one backend, which is how the verify suite replays
/// the whole mode-matrix and fault battery over real sockets
/// (`FLEXIO_TRANSPORT=tcp`) without touching the tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Placement-driven choice (in-proc / shm / RDMA-sim).
    Auto,
    /// Force the shared-memory queue for every channel.
    Shm,
    /// Force loopback TCP sockets for every channel.
    Tcp,
    /// Force Unix-domain sockets for every channel.
    Uds,
}

impl Transport {
    /// Parse an XML `transport` hint value (also the `FLEXIO_TRANSPORT`
    /// environment syntax).
    pub fn from_hint(value: &str) -> Option<Transport> {
        match value {
            "auto" => Some(Transport::Auto),
            "shm" => Some(Transport::Shm),
            "tcp" => Some(Transport::Tcp),
            "uds" => Some(Transport::Uds),
            _ => None,
        }
    }
}

/// Process-wide default transport: `FLEXIO_TRANSPORT=tcp|uds|shm` flips
/// every stream that doesn't set an explicit `transport` hint.
fn default_transport() -> Transport {
    static DEFAULT: std::sync::OnceLock<Transport> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FLEXIO_TRANSPORT")
            .ok()
            .as_deref()
            .and_then(Transport::from_hint)
            .unwrap_or(Transport::Auto)
    })
}

/// Per-stream tuning hints, populated from the XML config (§II.B: "To
/// tune transports, transport-specific parameters specified as hints in an
/// XML configuration file are passed to the FlexIO runtime").
#[derive(Debug, Clone)]
pub struct StreamHints {
    /// Handshake caching level.
    pub caching: CachingLevel,
    /// Pack all of a step's chunks per receiver into one message.
    pub batching: bool,
    /// Sync vs async write calls.
    pub write_mode: WriteMode,
    /// Shared-memory queue depth.
    pub queue_entries: usize,
    /// Shared-memory inline payload capacity.
    pub inline_capacity: usize,
    /// Receive timeout for the timeout-and-retry resiliency scheme.
    pub recv_timeout: Duration,
    /// Retry attempts before giving up.
    pub retries: u32,
    /// Run the 2-phase-commit step transaction protocol.
    pub transactional: bool,
    /// Deterministic fault schedule to install on every channel of the
    /// stream (None in production; tests and chaos runs set it).
    pub faults: Option<Arc<FaultPlan>>,
    /// Reader coordinator synthesizes end-of-stream when the writer goes
    /// silent past the timeout budget, instead of surfacing an error —
    /// the paper's "degrade gracefully when the producer dies" posture.
    pub eos_on_silence: bool,
    /// Use the packed bulk marshaling + scatter-gather send data plane
    /// (the default). `false` restores the per-element encode and flat
    /// single-copy send path, kept as the A/B baseline for the
    /// data-plane ablation bench.
    pub packed_marshal: bool,
    /// Engine backend: thread-per-stream blocking calls (default) or the
    /// single-threaded reactor event loop.
    pub runtime: Runtime,
    /// Worker threads for the reactor fleet (`crate::fleet`): 0 = auto
    /// (the `FLEXIO_REACTOR_THREADS` env var, else the host's available
    /// parallelism). Ignored by the blocking backend.
    pub runtime_threads: usize,
    /// Byte transport beneath every channel of the stream.
    pub transport: Transport,
    /// Budget for establishing one socket connection (covers the window
    /// where the peer process has registered but not finished binding).
    pub net_connect_timeout: Duration,
    /// Per-frame payload cap on socket channels, in bytes; a length field
    /// above it reads as a corrupt frame.
    pub net_max_frame: u32,
}

impl Default for StreamHints {
    fn default() -> Self {
        StreamHints {
            caching: CachingLevel::NoCaching,
            batching: false,
            write_mode: WriteMode::Async,
            queue_entries: 64,
            inline_capacity: 512,
            recv_timeout: Duration::from_secs(10),
            retries: 3,
            transactional: false,
            faults: None,
            eos_on_silence: false,
            packed_marshal: true,
            runtime: default_runtime(),
            runtime_threads: 0,
            transport: default_transport(),
            net_connect_timeout: Duration::from_secs(2),
            net_max_frame: evpath::MAX_FRAME_LEN,
        }
    }
}

/// The typed vocabulary of XML `<hint>` names the runtime understands.
/// [`StreamHints::from_config`] and [`crate::directory::DirectoryConfig`]
/// look hints up through this enum instead of scattering string literals,
/// so a typo'd key is a compile error (and the round-trip test iterates
/// [`HintKey::ALL`] to prove every key is actually parsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintKey {
    /// Handshake caching level (`NO_CACHING`/`CACHING_LOCAL`/`CACHING_ALL`).
    Caching,
    /// Pack a step's chunks per receiver into one message.
    Batching,
    /// `true` = async writes, any other value = sync.
    Async,
    /// Shared-memory queue depth.
    QueueEntries,
    /// Shared-memory inline payload capacity in bytes.
    InlineCapacity,
    /// Receive timeout in milliseconds.
    TimeoutMs,
    /// Retry attempts before giving up.
    Retries,
    /// Run the 2-phase-commit step transaction protocol.
    Transactional,
    /// Synthesize end-of-stream when the writer goes silent.
    EosOnSilence,
    /// Packed bulk marshaling + scatter-gather sends (default `true`).
    PackedMarshal,
    /// Engine backend (`blocking`/`reactor`).
    Runtime,
    /// Reactor-fleet worker thread count (0 = auto).
    RuntimeThreads,
    /// Byte transport beneath every channel (`auto`/`shm`/`tcp`/`uds`).
    TransportSel,
    /// Socket connect budget in milliseconds.
    NetConnectMs,
    /// Socket per-frame payload cap in mebibytes.
    NetMaxFrameMb,
    /// Enables the `fault.*` hint family (the family's per-channel knobs
    /// are parsed by prefix, not by this enum).
    FaultSeed,
    /// Directory registry lock stripes.
    DirectoryShards,
    /// Directory nodes (>1 builds a gossip-replicated cluster).
    DirectoryNodes,
    /// Anti-entropy gossip round interval in milliseconds.
    DirectoryGossipMs,
    /// Expected pub/sub reader-group count (sizing/observability only).
    PubsubGroups,
    /// Pub/sub in-memory replay ring bound, in steps.
    PubsubReplaySteps,
    /// Directory for BP spill segments (enables durable replay).
    PubsubSpillDir,
    /// Default pub/sub delivery QoS (`lossless`/`latest`).
    PubsubQos,
    /// Enable writer-side query pushdown (default `true`).
    QueryPushdown,
    /// Tumbling-window width in steps for query aggregates (0 = one
    /// window over the whole stream).
    QueryWindowSteps,
    /// Cap on total query output rows (0 = unlimited).
    QueryMaxRows,
    /// Run the naive row-at-a-time oracle next to the vectorized
    /// executor and assert bit-identical results (default `false`).
    QueryOracle,
    /// Elastic controller decision cadence in milliseconds.
    ElasticIntervalMs,
    /// Elastic reader-roster floor (never scale below).
    ElasticMinReaders,
    /// Elastic reader-roster ceiling (provisioned rank slots).
    ElasticMaxReaders,
    /// Steps of reader lag tolerated before adding a rank.
    ElasticTargetLag,
}

impl HintKey {
    /// Every key, for exhaustive round-trip tests.
    pub const ALL: &'static [HintKey] = &[
        HintKey::Caching,
        HintKey::Batching,
        HintKey::Async,
        HintKey::QueueEntries,
        HintKey::InlineCapacity,
        HintKey::TimeoutMs,
        HintKey::Retries,
        HintKey::Transactional,
        HintKey::EosOnSilence,
        HintKey::PackedMarshal,
        HintKey::Runtime,
        HintKey::RuntimeThreads,
        HintKey::TransportSel,
        HintKey::NetConnectMs,
        HintKey::NetMaxFrameMb,
        HintKey::FaultSeed,
        HintKey::DirectoryShards,
        HintKey::DirectoryNodes,
        HintKey::DirectoryGossipMs,
        HintKey::PubsubGroups,
        HintKey::PubsubReplaySteps,
        HintKey::PubsubSpillDir,
        HintKey::PubsubQos,
        HintKey::QueryPushdown,
        HintKey::QueryWindowSteps,
        HintKey::QueryMaxRows,
        HintKey::QueryOracle,
        HintKey::ElasticIntervalMs,
        HintKey::ElasticMinReaders,
        HintKey::ElasticMaxReaders,
        HintKey::ElasticTargetLag,
    ];

    /// The XML hint name this key reads.
    pub fn as_str(&self) -> &'static str {
        match self {
            HintKey::Caching => "caching",
            HintKey::Batching => "batching",
            HintKey::Async => "async",
            HintKey::QueueEntries => "queue_entries",
            HintKey::InlineCapacity => "inline_capacity",
            HintKey::TimeoutMs => "timeout_ms",
            HintKey::Retries => "retries",
            HintKey::Transactional => "transactional",
            HintKey::EosOnSilence => "eos_on_silence",
            HintKey::PackedMarshal => "packed_marshal",
            HintKey::Runtime => "runtime",
            HintKey::RuntimeThreads => "runtime.threads",
            HintKey::TransportSel => "transport",
            HintKey::NetConnectMs => "net.connect_ms",
            HintKey::NetMaxFrameMb => "net.max_frame_mb",
            HintKey::FaultSeed => "fault.seed",
            HintKey::DirectoryShards => "directory.shards",
            HintKey::DirectoryNodes => "directory.nodes",
            HintKey::DirectoryGossipMs => "directory.gossip_ms",
            HintKey::PubsubGroups => "pubsub.groups",
            HintKey::PubsubReplaySteps => "pubsub.replay_steps",
            HintKey::PubsubSpillDir => "pubsub.spill_dir",
            HintKey::PubsubQos => "pubsub.qos",
            HintKey::QueryPushdown => "query.pushdown",
            HintKey::QueryWindowSteps => "query.window_steps",
            HintKey::QueryMaxRows => "query.max_rows",
            HintKey::QueryOracle => "query.oracle",
            HintKey::ElasticIntervalMs => "elastic.interval_ms",
            HintKey::ElasticMinReaders => "elastic.min_readers",
            HintKey::ElasticMaxReaders => "elastic.max_readers",
            HintKey::ElasticTargetLag => "elastic.target_lag",
        }
    }
}

impl StreamHints {
    /// A fluent builder starting from the defaults, so call sites (and
    /// tests) state only the knobs they mean instead of mutating public
    /// fields.
    pub fn builder() -> StreamHintsBuilder {
        StreamHintsBuilder { hints: StreamHints::default() }
    }

    /// Derive hints from a parsed group configuration.
    pub fn from_config(cfg: &GroupConfig) -> StreamHints {
        let hint = |k: HintKey| cfg.hint(k.as_str());
        let hint_bool = |k: HintKey| cfg.hint_bool(k.as_str());
        let hint_u64 = |k: HintKey| cfg.hint_u64(k.as_str());
        let mut h = StreamHints::default();
        if let Some(c) = hint(HintKey::Caching).and_then(CachingLevel::from_hint) {
            h.caching = c;
        }
        h.batching = hint_bool(HintKey::Batching);
        if hint_bool(HintKey::Async) {
            h.write_mode = WriteMode::Async;
        } else if hint(HintKey::Async).is_some() {
            h.write_mode = WriteMode::Sync;
        }
        if let Some(q) = hint_u64(HintKey::QueueEntries) {
            h.queue_entries = q as usize;
        }
        if let Some(cap) = hint_u64(HintKey::InlineCapacity) {
            h.inline_capacity = cap as usize;
        }
        if let Some(ms) = hint_u64(HintKey::TimeoutMs) {
            h.recv_timeout = Duration::from_millis(ms);
        }
        if let Some(r) = hint_u64(HintKey::Retries) {
            h.retries = r as u32;
        }
        h.transactional = hint_bool(HintKey::Transactional);
        h.eos_on_silence = hint_bool(HintKey::EosOnSilence);
        // Defaults to true, so only an explicit hint may flip it —
        // `hint_bool` alone would silently disable packing on every
        // config that doesn't mention it.
        if hint(HintKey::PackedMarshal).is_some() {
            h.packed_marshal = hint_bool(HintKey::PackedMarshal);
        }
        if let Some(rt) = hint(HintKey::Runtime).and_then(Runtime::from_hint) {
            h.runtime = rt;
        }
        if let Some(n) = hint_u64(HintKey::RuntimeThreads) {
            h.runtime_threads = n as usize;
        }
        if let Some(t) = hint(HintKey::TransportSel).and_then(Transport::from_hint) {
            h.transport = t;
        }
        if let Some(ms) = hint_u64(HintKey::NetConnectMs) {
            h.net_connect_timeout = Duration::from_millis(ms);
        }
        if let Some(mb) = hint_u64(HintKey::NetMaxFrameMb) {
            h.net_max_frame = (mb as u32).saturating_mul(1 << 20);
        }
        h.faults = fault_plan_from_config(cfg).map(Arc::new);
        h
    }
}

/// Builder returned by [`StreamHints::builder`].
#[derive(Debug, Clone)]
pub struct StreamHintsBuilder {
    hints: StreamHints,
}

impl StreamHintsBuilder {
    /// Handshake caching level.
    pub fn caching(mut self, caching: CachingLevel) -> Self {
        self.hints.caching = caching;
        self
    }

    /// Pack a step's chunks per receiver into one message.
    pub fn batching(mut self, batching: bool) -> Self {
        self.hints.batching = batching;
        self
    }

    /// Sync vs async write calls.
    pub fn write_mode(mut self, mode: WriteMode) -> Self {
        self.hints.write_mode = mode;
        self
    }

    /// Shared-memory queue depth.
    pub fn queue_entries(mut self, entries: usize) -> Self {
        self.hints.queue_entries = entries;
        self
    }

    /// Shared-memory inline payload capacity.
    pub fn inline_capacity(mut self, bytes: usize) -> Self {
        self.hints.inline_capacity = bytes;
        self
    }

    /// Receive timeout for the timeout-and-retry scheme.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.hints.recv_timeout = timeout;
        self
    }

    /// Retry attempts before giving up.
    pub fn retries(mut self, retries: u32) -> Self {
        self.hints.retries = retries;
        self
    }

    /// Run the 2-phase-commit step transaction protocol.
    pub fn transactional(mut self, on: bool) -> Self {
        self.hints.transactional = on;
        self
    }

    /// Install a deterministic fault schedule on the stream's channels.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.hints.faults = Some(plan);
        self
    }

    /// Synthesize end-of-stream when the writer goes silent.
    pub fn eos_on_silence(mut self, on: bool) -> Self {
        self.hints.eos_on_silence = on;
        self
    }

    /// Packed bulk marshaling + scatter-gather sends.
    pub fn packed_marshal(mut self, on: bool) -> Self {
        self.hints.packed_marshal = on;
        self
    }

    /// Engine backend.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.hints.runtime = runtime;
        self
    }

    /// Reactor-fleet worker thread count (0 = auto).
    pub fn runtime_threads(mut self, threads: usize) -> Self {
        self.hints.runtime_threads = threads;
        self
    }

    /// Byte transport beneath every channel of the stream.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.hints.transport = transport;
        self
    }

    /// Socket connect budget.
    pub fn net_connect_timeout(mut self, timeout: Duration) -> Self {
        self.hints.net_connect_timeout = timeout;
        self
    }

    /// Socket per-frame payload cap in bytes.
    pub fn net_max_frame(mut self, bytes: u32) -> Self {
        self.hints.net_max_frame = bytes;
        self
    }

    /// Finish, yielding the hints.
    pub fn build(self) -> StreamHints {
        self.hints
    }
}

/// Parse the `fault.*` hint family into a [`FaultPlan`]. `fault.seed`
/// enables the plan; per-channel knobs are `fault.<label>.<param>` where
/// `label` is a channel-label prefix (`data`, `ack:1->0`, `ctrl:w2r`, ...)
/// or `default`, and `param` is one of `drop_pm`, `dup_pm`, `reorder_pm`,
/// `delay_pm`, `delay_ms`, `crash_sender_after`, `crash_receiver_after`,
/// `stall_ms`.
fn fault_plan_from_config(cfg: &GroupConfig) -> Option<FaultPlan> {
    let seed = cfg.hint_u64(HintKey::FaultSeed.as_str())?;
    let mut specs: BTreeMap<String, FaultSpec> = BTreeMap::new();
    for (key, value) in cfg.hints_with_prefix("fault.") {
        let rest = &key["fault.".len()..];
        if rest == "seed" {
            continue;
        }
        let Some((label, param)) = rest.rsplit_once('.') else {
            continue;
        };
        let Ok(n) = value.parse::<u64>() else {
            continue;
        };
        let spec = specs.entry(label.to_string()).or_default();
        match param {
            "drop_pm" => spec.drop_per_mille = n as u16,
            "dup_pm" => spec.dup_per_mille = n as u16,
            "reorder_pm" => spec.reorder_per_mille = n as u16,
            "delay_pm" => spec.delay_per_mille = n as u16,
            "delay_ms" => spec.delay = Duration::from_millis(n),
            "crash_sender_after" => spec.crash_sender_after = Some(n),
            "crash_receiver_after" => spec.crash_receiver_after = Some(n),
            "stall_ms" => spec.stall = Some(Duration::from_millis(n)),
            _ => {}
        }
    }
    let mut plan = FaultPlan::new(seed);
    for (label, spec) in specs {
        if label == "default" {
            plan.set_default(spec);
        } else {
            plan.set(&label, spec);
        }
    }
    Some(plan)
}

/// Identifies one directed channel within a stream's link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelId {
    /// Data: writer rank → reader rank.
    Data {
        /// Writer rank.
        w: usize,
        /// Reader rank.
        r: usize,
    },
    /// Acks: reader rank → writer rank.
    Ack {
        /// Writer rank.
        w: usize,
        /// Reader rank.
        r: usize,
    },
    /// Coordinator control, writer coord → reader coord.
    ControlToReader,
    /// Coordinator control, reader coord → writer coord.
    ControlToWriter,
    /// Side channel within the writer program: rank ↔ coordinator.
    WriterSide {
        /// Rank.
        rank: usize,
        /// Direction: true = rank→coordinator.
        up: bool,
    },
    /// Side channel within the reader program: rank ↔ coordinator.
    ReaderSide {
        /// Rank.
        rank: usize,
        /// Direction: true = rank→coordinator.
        up: bool,
    },
    /// Monitoring relay: writer coordinator → reader coordinator. Off the
    /// data path; discovered through the directory like every other
    /// channel of the link.
    Monitor,
}

impl ChannelId {
    /// Stable human-readable label, the key fault plans target channels by
    /// (and the seed domain for per-channel fault RNG streams).
    pub fn label(&self) -> String {
        match self {
            ChannelId::Data { w, r } => format!("data:{w}->{r}"),
            ChannelId::Ack { w, r } => format!("ack:{r}->{w}"),
            ChannelId::ControlToReader => "ctrl:w2r".to_string(),
            ChannelId::ControlToWriter => "ctrl:r2w".to_string(),
            ChannelId::WriterSide { rank, up } => {
                format!("wside:{rank}:{}", if *up { "up" } else { "down" })
            }
            ChannelId::ReaderSide { rank, up } => {
                format!("rside:{rank}:{}", if *up { "up" } else { "down" })
            }
            ChannelId::Monitor => "mon:w2r".to_string(),
        }
    }
}

// ----------------------------------------------------------- seq framing

/// Out-of-order messages buffered before giving up on a gap (writing the
/// missing sequence numbers off as dropped).
const GAP_SKIP_THRESHOLD: usize = 4;

/// Sender half of the sequence-framing layer installed when a fault plan
/// is active: prepends a little-endian `u64` sequence number so the
/// receiving [`SeqReceiver`] can discard duplicates, heal reorders and
/// observe drops. Not installed on fault-free streams — the framing byte
/// cost and counters stay out of the default path.
struct SeqSender {
    inner: BoxedSender,
    next: u64,
}

impl EvSender for SeqSender {
    fn send(&mut self, payload: &[u8]) {
        self.send_vectored(&[payload]);
    }

    fn send_vectored(&mut self, segments: &[&[u8]]) {
        // The sequence header rides as one more leading segment, so a
        // scatter-gather send stays scatter-gather through this layer.
        let header = self.next.to_le_bytes();
        let mut framed: Vec<&[u8]> = Vec::with_capacity(segments.len() + 1);
        framed.push(&header);
        framed.extend_from_slice(segments);
        self.next += 1;
        self.inner.send_vectored(&framed);
    }

    fn transport_name(&self) -> &'static str {
        self.inner.transport_name()
    }
}

/// Receiver half of the sequence-framing layer: delivers payloads in
/// sequence order, deduplicating repeats (`dup_msgs`), buffering and
/// re-sorting early arrivals (`reorder_healed`) and skipping over gaps
/// once [`GAP_SKIP_THRESHOLD`] later messages have piled up
/// (`drops_observed`).
struct SeqReceiver {
    inner: BoxedReceiver,
    next: u64,
    early: BTreeMap<u64, Vec<u8>>,
    counters: Arc<ProtocolCounters>,
}

impl EvReceiver for SeqReceiver {
    fn recv(&mut self) -> Vec<u8> {
        // Spin → yield → park: hot streams stay in the nanosecond regime,
        // idle ones stop burning the helper core (this used to be a fixed
        // 100 µs sleep loop).
        let mut backoff = flexio_reactor::Backoff::new();
        loop {
            if let Some(msg) = self.try_recv() {
                return msg;
            }
            backoff.snooze();
        }
    }

    fn poll_recv(&mut self) -> RecvPoll {
        loop {
            if let Some(msg) = self.early.remove(&self.next) {
                self.next += 1;
                self.counters.bump(&self.counters.reorder_healed);
                return RecvPoll::Msg(msg);
            }
            let framed = match self.inner.poll_recv() {
                RecvPoll::Msg(framed) => framed,
                RecvPoll::Empty => return RecvPoll::Empty,
                RecvPoll::Corrupt(reason) => return RecvPoll::Corrupt(reason),
                RecvPoll::Closed => {
                    if self.early.is_empty() {
                        return RecvPoll::Closed;
                    }
                    // The wire is done but the reorder buffer still holds
                    // early arrivals: the missing predecessors can never
                    // come, so write the gap off as drops (same accounting
                    // as the threshold path) and drain what survived.
                    let lowest = *self.early.keys().next().expect("early set non-empty");
                    for _ in self.next..lowest {
                        self.counters.bump(&self.counters.drops_observed);
                    }
                    self.next = lowest;
                    continue;
                }
            };
            if framed.len() < 8 {
                // Not ours; a fault layer cannot shrink frames below the
                // header we added, so treat it as garbage and move on.
                self.counters.bump(&self.counters.drops_observed);
                continue;
            }
            let seq = u64::from_le_bytes(framed[..8].try_into().unwrap());
            let payload = framed[8..].to_vec();
            if seq < self.next {
                self.counters.bump(&self.counters.dup_msgs);
                continue;
            }
            if seq == self.next {
                self.next += 1;
                return RecvPoll::Msg(payload);
            }
            if self.early.insert(seq, payload).is_some() {
                // A duplicate of a message still parked in the reorder
                // buffer: same dedup as the `seq < next` path.
                self.counters.bump(&self.counters.dup_msgs);
            }
            if self.early.len() >= GAP_SKIP_THRESHOLD {
                let lowest = *self.early.keys().next().expect("early set non-empty");
                for _ in self.next..lowest {
                    self.counters.bump(&self.counters.drops_observed);
                }
                self.next = lowest;
            }
        }
    }
}

enum ParkedHalf {
    Sender(BoxedSender),
    Receiver(BoxedReceiver),
}

struct Halves {
    parked: HashMap<ChannelId, ParkedHalf>,
}

/// Shared state of one stream's link between the two programs. Created by
/// the writer coordinator, found by the reader coordinator through the
/// [`Directory`].
pub struct LinkState {
    /// Writer rank count.
    pub writer_count: usize,
    /// Writer rank core placements (index = rank).
    pub writer_cores: Vec<CoreLocation>,
    reader_info: Mutex<Option<(usize, Vec<CoreLocation>)>>,
    reader_ready: Condvar,
    halves: Mutex<Halves>,
    half_ready: Condvar,
    net: Option<NetSim>,
    /// Protocol counters shared by both sides.
    pub counters: Arc<ProtocolCounters>,
    /// Performance monitor shared by both sides.
    pub monitor: PerfMonitor,
    hints_queue_entries: usize,
    hints_inline_capacity: usize,
    hints_transport: Transport,
    hints_net_max_frame: u32,
    /// Fault schedule installed on channels (from the writer's hints);
    /// shared so both sides observe one deterministic plan.
    faults: Option<Arc<FaultPlan>>,
    /// Reader ranks written off after repeated ack timeouts. The writer
    /// plans later steps around them; they never receive data again.
    evicted: Mutex<HashSet<usize>>,
    /// Cross-process channel factory. When set, this link half lives in
    /// its own OS process: channels are real sockets dialed through the
    /// fabric instead of halves parked in shared memory.
    fabric: Option<Arc<crate::procnet::ProcFabric>>,
    /// Subsystem payload riding the directory registration: the pub/sub
    /// layer attaches its [`crate::pubsub::StreamLog`] here so reader
    /// groups discover the log through the same [`DirectoryService`]
    /// lookup that resolves stream contacts.
    attachment: Mutex<Option<Arc<dyn std::any::Any + Send + Sync>>>,
}

impl LinkState {
    pub(crate) fn new(
        writer_count: usize,
        writer_cores: Vec<CoreLocation>,
        net: Option<NetSim>,
        hints: &StreamHints,
    ) -> Arc<LinkState> {
        Arc::new(LinkState {
            writer_count,
            writer_cores,
            reader_info: Mutex::new(None),
            reader_ready: Condvar::new(),
            halves: Mutex::new(Halves { parked: HashMap::new() }),
            half_ready: Condvar::new(),
            net,
            counters: ProtocolCounters::new_shared(),
            monitor: PerfMonitor::new(),
            hints_queue_entries: hints.queue_entries,
            hints_inline_capacity: hints.inline_capacity,
            hints_transport: hints.transport,
            hints_net_max_frame: hints.net_max_frame,
            faults: hints.faults.clone(),
            evicted: Mutex::new(HashSet::new()),
            fabric: None,
            attachment: Mutex::new(None),
        })
    }

    /// A link half for a rank process of a cross-process coupling: every
    /// channel is a socket made by `fabric`, so this process never parks
    /// transport halves for a peer (there is no shared address space to
    /// park them in).
    pub(crate) fn new_remote(
        writer_count: usize,
        writer_cores: Vec<CoreLocation>,
        hints: &StreamHints,
        fabric: Arc<crate::procnet::ProcFabric>,
    ) -> Arc<LinkState> {
        Arc::new(LinkState {
            writer_count,
            writer_cores,
            reader_info: Mutex::new(None),
            reader_ready: Condvar::new(),
            halves: Mutex::new(Halves { parked: HashMap::new() }),
            half_ready: Condvar::new(),
            net: None,
            counters: ProtocolCounters::new_shared(),
            monitor: PerfMonitor::new(),
            hints_queue_entries: hints.queue_entries,
            hints_inline_capacity: hints.inline_capacity,
            hints_transport: hints.transport,
            hints_net_max_frame: hints.net_max_frame,
            faults: hints.faults.clone(),
            evicted: Mutex::new(HashSet::new()),
            fabric: Some(fabric),
            attachment: Mutex::new(None),
        })
    }

    /// Minimal link for unit tests.
    pub fn for_tests() -> Arc<LinkState> {
        LinkState::new(
            1,
            vec![CoreLocation { node: 0, numa: 0, core: 0 }],
            None,
            &StreamHints::default(),
        )
    }

    /// Attach a subsystem payload to this link (see the `attachment`
    /// field). Last write wins.
    pub fn set_attachment(&self, payload: Arc<dyn std::any::Any + Send + Sync>) {
        *self.attachment.lock() = Some(payload);
    }

    /// Downcast the attached payload, if any.
    pub fn attachment<T: std::any::Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.attachment.lock().clone().and_then(|a| a.downcast::<T>().ok())
    }

    /// The reader coordinator announces its side.
    pub fn set_reader_info(&self, count: usize, cores: Vec<CoreLocation>) {
        let mut ri = self.reader_info.lock();
        assert!(ri.is_none(), "reader already attached to this stream");
        *ri = Some((count, cores));
        self.reader_ready.notify_all();
    }

    /// Non-blocking peek at the reader side's attachment (the reactor's
    /// poll-driven analogue of [`Self::wait_reader_info`]).
    pub fn try_reader_info(&self) -> Option<(usize, Vec<CoreLocation>)> {
        self.reader_info.lock().clone()
    }

    /// Wait until the reader side has attached; returns `(count, cores)`.
    pub fn wait_reader_info(&self, timeout: Duration) -> Option<(usize, Vec<CoreLocation>)> {
        let mut ri = self.reader_info.lock();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(info) = ri.clone() {
                return Some(info);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.reader_ready.wait_for(&mut ri, deadline - now);
        }
    }

    fn endpoints_of(&self, id: ChannelId) -> (CoreLocation, CoreLocation) {
        let reader_cores =
            || self.reader_info.lock().clone().expect("reader info needed for channel placement").1;
        match id {
            ChannelId::Data { w, r } => (self.writer_cores[w], reader_cores()[r]),
            ChannelId::Ack { w, r } => (reader_cores()[r], self.writer_cores[w]),
            ChannelId::ControlToReader => (self.writer_cores[0], reader_cores()[0]),
            ChannelId::ControlToWriter => (reader_cores()[0], self.writer_cores[0]),
            ChannelId::WriterSide { rank, up } => {
                let (a, b) = (self.writer_cores[rank], self.writer_cores[0]);
                if up {
                    (a, b)
                } else {
                    (b, a)
                }
            }
            ChannelId::ReaderSide { rank, up } => {
                let cores = reader_cores();
                let (a, b) = (cores[rank], cores[0]);
                if up {
                    (a, b)
                } else {
                    (b, a)
                }
            }
            ChannelId::Monitor => (self.writer_cores[0], reader_cores()[0]),
        }
    }

    /// Build the right transport for a channel given its endpoints'
    /// placement: shared memory on-node, RDMA across nodes, in-proc when
    /// both endpoints are the *same core* (inline placement). An explicit
    /// `transport` hint (or `FLEXIO_TRANSPORT`) overrides placement and
    /// forces every channel onto one backend.
    fn make_transport(&self, src: CoreLocation, dst: CoreLocation) -> (BoxedSender, BoxedReceiver) {
        match self.hints_transport {
            Transport::Auto => {}
            Transport::Shm => {
                return ShmTransport::pair(self.hints_queue_entries, self.hints_inline_capacity)
            }
            Transport::Tcp | Transport::Uds => {
                let kind = if self.hints_transport == Transport::Tcp {
                    evpath::SocketKind::Tcp
                } else {
                    evpath::SocketKind::Uds
                };
                let (tx, rx) = evpath::socket::raw_socket_pair(kind);
                let mut receiver = evpath::SocketReceiver::over(rx);
                receiver.set_max_frame(self.hints_net_max_frame);
                return (evpath::sender_over(tx), Box::new(receiver));
            }
        }
        if src == dst {
            return inproc_pair();
        }
        if src.same_node(&dst) {
            return ShmTransport::pair(self.hints_queue_entries, self.hints_inline_capacity);
        }
        match &self.net {
            Some(net) => NetTransport::pair(net, src.node, dst.node),
            // Without a network model (single-node tests), fall back to
            // the in-process transport.
            None => inproc_pair(),
        }
    }

    /// Claim the sending half of a channel, creating the pair on first
    /// claim and parking the other half for the peer. With a fault plan
    /// installed the half is wrapped: protocol → seq framing → fault layer
    /// → raw transport.
    pub fn claim_sender(&self, id: ChannelId) -> BoxedSender {
        let raw = if let Some(fabric) = &self.fabric {
            fabric.make_sender(id)
        } else {
            let mut halves = self.halves.lock();
            if let Some(ParkedHalf::Sender(s)) = halves.parked.remove(&id) {
                s
            } else {
                let (src, dst) = self.endpoints_of(id);
                let (tx, rx) = self.make_transport(src, dst);
                halves.parked.insert(id, ParkedHalf::Receiver(rx));
                self.half_ready.notify_all();
                tx
            }
        };
        match &self.faults {
            None => raw,
            Some(plan) => {
                Box::new(SeqSender { inner: plan.wrap_sender(&id.label(), raw), next: 0 })
            }
        }
    }

    /// Claim the receiving half of a channel (see [`Self::claim_sender`]).
    pub fn claim_receiver(&self, id: ChannelId) -> BoxedReceiver {
        let raw = if let Some(fabric) = &self.fabric {
            fabric.make_receiver(id)
        } else {
            let mut halves = self.halves.lock();
            if let Some(ParkedHalf::Receiver(r)) = halves.parked.remove(&id) {
                r
            } else {
                let (src, dst) = self.endpoints_of(id);
                let (tx, rx) = self.make_transport(src, dst);
                halves.parked.insert(id, ParkedHalf::Sender(tx));
                self.half_ready.notify_all();
                rx
            }
        };
        match &self.faults {
            None => raw,
            Some(plan) => Box::new(SeqReceiver {
                inner: plan.wrap_receiver(&id.label(), raw),
                next: 0,
                early: BTreeMap::new(),
                counters: Arc::clone(&self.counters),
            }),
        }
    }

    /// The fault plan installed on this link, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Write a reader rank off as dead. Returns true on the first eviction
    /// of that rank (callers bump the eviction counter exactly once).
    pub fn evict_reader(&self, rank: usize) -> bool {
        self.evicted.lock().insert(rank)
    }

    /// Reader ranks evicted so far.
    pub fn evicted_readers(&self) -> HashSet<usize> {
        self.evicted.lock().clone()
    }

    /// Whether a reader rank has been evicted.
    pub fn is_evicted(&self, rank: usize) -> bool {
        self.evicted.lock().contains(&rank)
    }
}

/// Receive a [`Record`] with the timeout-and-retry resiliency scheme
/// (§II.H: "the current version uses simple timeout-and-retry schemes to
/// cope with errors and failures during data movement").
///
/// Attempt `i` waits `hints.recv_timeout × 2^min(i, 3)` — exponential
/// backoff so a transiently slow peer (delay faults, long simulation
/// phases) is given progressively more slack before the stream is
/// declared dead. Every attempt after the first bumps
/// [`ProtocolCounters::retries`].
pub fn recv_record(
    rx: &mut BoxedReceiver,
    hints: &StreamHints,
    counters: &ProtocolCounters,
) -> Result<Record, StreamError> {
    for attempt in 0..=hints.retries {
        if attempt > 0 {
            counters.bump(&counters.retries);
        }
        let timeout = hints.recv_timeout * (1u32 << attempt.min(3));
        let deadline = Instant::now() + timeout;
        // Spin briefly for low latency, then yield, then park in bounded
        // sleeps so a reader blocked across a long simulation phase does
        // not burn the very helper core the placement gave it.
        let mut backoff = flexio_reactor::Backoff::new();
        loop {
            match rx.poll_recv() {
                evpath::RecvPoll::Msg(bytes) => return decode_record(bytes, hints),
                evpath::RecvPoll::Corrupt(reason) => {
                    // Previously swallowed as `None` and retried until the
                    // timeout budget ran out; a consumed-but-invalid frame
                    // is a definite event, so surface it.
                    counters.bump(&counters.corrupt_frames);
                    return Err(StreamError::Corrupt(format!("transport frame: {reason}")));
                }
                evpath::RecvPoll::Closed => {
                    // The peer endpoint is gone and the queue is drained:
                    // no amount of waiting produces another message, so
                    // fail the same way an exhausted retry budget would —
                    // the callers' timeout handling (EOS synthesis, reader
                    // eviction) is exactly the right degradation — just
                    // without burning the remaining budget.
                    counters.bump(&counters.closed_channels);
                    return Err(StreamError::Timeout);
                }
                evpath::RecvPoll::Empty => {}
            }
            if Instant::now() >= deadline {
                break; // retry
            }
            backoff.snooze_capped(deadline.saturating_duration_since(Instant::now()));
        }
    }
    Err(StreamError::Timeout)
}

/// Poll-driven variant of [`recv_record`] for reactor tasks: identical
/// timeout schedule, retry accounting and failure mapping, but the waits
/// between polls yield to the enclosing event loop (via
/// [`flexio_reactor::Pacing`]) instead of parking the thread, so one
/// reactor core can hold many of these waits open at once.
pub async fn recv_record_rt(
    rx: &mut BoxedReceiver,
    hints: &StreamHints,
    counters: &ProtocolCounters,
) -> Result<Record, StreamError> {
    for attempt in 0..=hints.retries {
        if attempt > 0 {
            counters.bump(&counters.retries);
        }
        let timeout = hints.recv_timeout * (1u32 << attempt.min(3));
        let deadline = Instant::now() + timeout;
        let mut pacing = flexio_reactor::Pacing::new();
        loop {
            match rx.poll_recv() {
                evpath::RecvPoll::Msg(bytes) => return decode_record(bytes, hints),
                evpath::RecvPoll::Corrupt(reason) => {
                    counters.bump(&counters.corrupt_frames);
                    return Err(StreamError::Corrupt(format!("transport frame: {reason}")));
                }
                evpath::RecvPoll::Closed => {
                    counters.bump(&counters.closed_channels);
                    return Err(StreamError::Timeout);
                }
                evpath::RecvPoll::Empty => {}
            }
            if Instant::now() >= deadline {
                break; // retry
            }
            pacing.pause(Some(deadline)).await;
        }
    }
    Err(StreamError::Timeout)
}

/// Decode a received message with the plane selected by the hints: packed
/// decodes against the shared receive buffer (large array payloads come
/// back as zero-copy views into `bytes`), legacy decodes owned.
fn decode_record(bytes: Vec<u8>, hints: &StreamHints) -> Result<Record, StreamError> {
    let decoded = if hints.packed_marshal {
        Record::decode_shared(&std::sync::Arc::new(bytes))
    } else {
        Record::decode(&bytes)
    };
    decoded.map_err(|e| StreamError::Corrupt(e.to_string()))
}

/// Stream-layer error.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// Peer did not produce a message within timeout × retries.
    Timeout,
    /// A message failed to decode.
    Corrupt(String),
    /// Protocol violation (unexpected message kind).
    Protocol(String),
    /// Directory failure at open.
    Directory(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Timeout => write!(f, "receive timed out after retries"),
            StreamError::Corrupt(m) => write!(f, "corrupt message: {m}"),
            StreamError::Protocol(m) => write!(f, "protocol violation: {m}"),
            StreamError::Directory(m) => write!(f, "directory: {m}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DirectoryError> for StreamError {
    fn from(e: DirectoryError) -> Self {
        StreamError::Directory(e.to_string())
    }
}

/// The FlexIO runtime context: directory service + interconnect model +
/// machine description. One per coupled-application deployment; clone
/// freely.
#[derive(Clone)]
pub struct FlexIo {
    directory: Arc<dyn DirectoryService>,
    net: Option<NetSim>,
    machine: Arc<MachineModel>,
    /// Program-local bulletin letting non-coordinator ranks find the link
    /// their coordinator opened (the directory itself stays
    /// coordinator-only, as in the paper).
    bulletin: Arc<(Mutex<HashMap<String, Arc<LinkState>>>, Condvar)>,
}

impl FlexIo {
    /// Build a runtime for `machine`, with an RDMA fabric spanning
    /// `active_nodes` compute nodes.
    pub fn new(machine: MachineModel, active_nodes: usize) -> FlexIo {
        let net = NetSim::new(machine.interconnect, active_nodes.max(1));
        FlexIo {
            directory: Arc::new(InProcDirectory::new()),
            net: Some(net),
            machine: Arc::new(machine),
            bulletin: Arc::new((Mutex::new(HashMap::new()), Condvar::new())),
        }
    }

    /// Single-node runtime (no interconnect model) for tests and
    /// helper-core/inline-only deployments.
    pub fn single_node(machine: MachineModel) -> FlexIo {
        FlexIo {
            directory: Arc::new(InProcDirectory::new()),
            net: None,
            machine: Arc::new(machine),
            bulletin: Arc::new((Mutex::new(HashMap::new()), Condvar::new())),
        }
    }

    /// Swap the connection-management backend (default:
    /// [`InProcDirectory`]) for any other [`DirectoryService`] — a
    /// [`crate::directory::ShardedDirectory`], a handle onto a
    /// gossip-replicated [`crate::directory::DirectoryCluster`], or a
    /// test double. Builder-style: `FlexIo::new(...).with_directory(d)`.
    pub fn with_directory(mut self, directory: Arc<dyn DirectoryService>) -> FlexIo {
        self.directory = directory;
        self
    }

    /// The directory service handle.
    pub fn directory(&self) -> &Arc<dyn DirectoryService> {
        &self.directory
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Open the writer side of stream `name` from one writer rank.
    /// Rank 0 acts as coordinator: it creates the link and registers it.
    /// Every rank passes its own `core` placement and the total count.
    pub fn open_writer(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        core: CoreLocation,
        all_cores: Vec<CoreLocation>,
        hints: StreamHints,
    ) -> Result<StreamWriter, StreamError> {
        if hints.runtime == Runtime::Reactor {
            return flexio_reactor::block_on(
                self.open_writer_rt(name, rank, nranks, core, all_cores, hints),
            );
        }
        assert_eq!(all_cores.len(), nranks);
        assert_eq!(all_cores[rank], core, "rank's own core must match the roster");
        let link = if rank == 0 {
            let link = LinkState::new(nranks, all_cores, self.net.clone(), &hints);
            self.directory.register(name, Arc::clone(&link))?;
            self.post_bulletin(&format!("w:{name}"), Arc::clone(&link));
            link
        } else {
            self.wait_bulletin(&format!("w:{name}"), hints.recv_timeout)
                .ok_or(StreamError::Timeout)?
        };
        Ok(StreamWriter::new(link, rank, nranks, name.to_string(), hints))
    }

    /// Poll-driven variant of [`Self::open_writer`] for reactor tasks:
    /// identical protocol, but every wait (the non-coordinator bulletin
    /// wait) yields to the event loop instead of parking the thread.
    pub async fn open_writer_rt(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        core: CoreLocation,
        all_cores: Vec<CoreLocation>,
        hints: StreamHints,
    ) -> Result<StreamWriter, StreamError> {
        assert_eq!(all_cores.len(), nranks);
        assert_eq!(all_cores[rank], core, "rank's own core must match the roster");
        let link = if rank == 0 {
            let link = LinkState::new(nranks, all_cores, self.net.clone(), &hints);
            self.directory.register(name, Arc::clone(&link))?;
            self.post_bulletin(&format!("w:{name}"), Arc::clone(&link));
            link
        } else {
            self.bulletin_rt(&format!("w:{name}"), hints.recv_timeout)
                .await
                .ok_or(StreamError::Timeout)?
        };
        Ok(StreamWriter::new(link, rank, nranks, name.to_string(), hints))
    }

    /// Open the reader side of stream `name` from one reader rank.
    /// Rank 0 acts as coordinator: it looks the stream up in the
    /// directory and attaches the reader side.
    pub fn open_reader(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        core: CoreLocation,
        all_cores: Vec<CoreLocation>,
        hints: StreamHints,
    ) -> Result<StreamReader, StreamError> {
        if hints.runtime == Runtime::Reactor {
            return flexio_reactor::block_on(
                self.open_reader_rt(name, rank, nranks, core, all_cores, hints),
            );
        }
        assert_eq!(all_cores.len(), nranks);
        assert_eq!(all_cores[rank], core, "rank's own core must match the roster");
        let link = if rank == 0 {
            // A fault plan may schedule a directory stall: the lookup
            // budget shrinks by the stall, exactly as if the directory
            // server were slow to respond.
            let mut budget = hints.recv_timeout;
            if let Some(plan) = &hints.faults {
                if let Some(stall) = plan.spec_for("dir").stall {
                    plan.note_stall();
                    std::thread::sleep(stall);
                    budget = budget.saturating_sub(stall);
                }
            }
            let link = self.directory.lookup(name, budget)?;
            link.set_reader_info(nranks, all_cores);
            self.post_bulletin(&format!("r:{name}"), Arc::clone(&link));
            link
        } else {
            self.wait_bulletin(&format!("r:{name}"), hints.recv_timeout)
                .ok_or(StreamError::Timeout)?
        };
        Ok(StreamReader::new(link, rank, nranks, name.to_string(), hints))
    }

    /// Poll-driven variant of [`Self::open_reader`] for reactor tasks:
    /// the directory lookup, the scheduled directory stall and the
    /// non-coordinator bulletin wait all become event-loop yields, so one
    /// reactor thread can open many streams concurrently.
    pub async fn open_reader_rt(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        core: CoreLocation,
        all_cores: Vec<CoreLocation>,
        hints: StreamHints,
    ) -> Result<StreamReader, StreamError> {
        assert_eq!(all_cores.len(), nranks);
        assert_eq!(all_cores[rank], core, "rank's own core must match the roster");
        let link = if rank == 0 {
            // Same stall semantics as the blocking path: the fault plan's
            // scheduled directory stall shrinks the lookup budget.
            let mut budget = hints.recv_timeout;
            if let Some(plan) = &hints.faults {
                if let Some(stall) = plan.spec_for("dir").stall {
                    plan.note_stall();
                    flexio_reactor::sleep(stall).await;
                    budget = budget.saturating_sub(stall);
                }
            }
            let deadline = Instant::now() + budget;
            let mut pacing = flexio_reactor::Pacing::new();
            let link = loop {
                if let Some(link) = self.directory.try_lookup(name) {
                    break link;
                }
                if Instant::now() >= deadline {
                    return Err(DirectoryError::LookupTimeout(name.to_string()).into());
                }
                pacing.pause(Some(deadline)).await;
            };
            link.set_reader_info(nranks, all_cores);
            self.post_bulletin(&format!("r:{name}"), Arc::clone(&link));
            link
        } else {
            self.bulletin_rt(&format!("r:{name}"), hints.recv_timeout)
                .await
                .ok_or(StreamError::Timeout)?
        };
        Ok(StreamReader::new(link, rank, nranks, name.to_string(), hints))
    }

    pub(crate) fn post_bulletin(&self, key: &str, link: Arc<LinkState>) {
        let (lock, cvar) = &*self.bulletin;
        lock.lock().insert(key.to_string(), link);
        cvar.notify_all();
    }

    pub(crate) fn wait_bulletin(&self, key: &str, timeout: Duration) -> Option<Arc<LinkState>> {
        let (lock, cvar) = &*self.bulletin;
        let mut map = lock.lock();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(link) = map.get(key) {
                return Some(Arc::clone(link));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            cvar.wait_for(&mut map, deadline - now);
        }
    }

    fn try_bulletin(&self, key: &str) -> Option<Arc<LinkState>> {
        self.bulletin.0.lock().get(key).map(Arc::clone)
    }

    /// Poll the bulletin until `key` appears or `timeout` expires,
    /// yielding to the event loop between polls.
    async fn bulletin_rt(&self, key: &str, timeout: Duration) -> Option<Arc<LinkState>> {
        let deadline = Instant::now() + timeout;
        let mut pacing = flexio_reactor::Pacing::new();
        loop {
            if let Some(link) = self.try_bulletin(key) {
                return Some(link);
            }
            if Instant::now() >= deadline {
                return None;
            }
            pacing.pause(Some(deadline)).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn link_with_cores() -> Arc<LinkState> {
        let link = LinkState::new(
            2,
            vec![
                CoreLocation { node: 0, numa: 0, core: 0 },
                CoreLocation { node: 0, numa: 0, core: 1 },
            ],
            None,
            &StreamHints::default(),
        );
        link.set_reader_info(1, vec![CoreLocation { node: 0, numa: 1, core: 0 }]);
        link
    }

    #[test]
    fn claim_pairs_connect() {
        let link = link_with_cores();
        let id = ChannelId::Data { w: 1, r: 0 };
        let mut tx = link.claim_sender(id);
        let mut rx = link.claim_receiver(id);
        tx.send(b"through the link");
        assert_eq!(rx.recv(), b"through the link");
    }

    #[test]
    fn claim_order_is_irrelevant() {
        let link = link_with_cores();
        let id = ChannelId::Ack { w: 0, r: 0 };
        let link2 = Arc::clone(&link);
        let t = thread::spawn(move || {
            let mut rx = link2.claim_receiver(id);
            rx.recv()
        });
        thread::sleep(Duration::from_millis(10));
        let mut tx = link.claim_sender(id);
        tx.send(b"late sender");
        assert_eq!(t.join().unwrap(), b"late sender");
    }

    #[test]
    fn same_core_uses_inproc_and_same_node_uses_shm() {
        let link = link_with_cores();
        // Writer rank 0 -> writer coordinator is the same core: inproc.
        let tx = link.claim_sender(ChannelId::WriterSide { rank: 0, up: true });
        assert_eq!(tx.transport_name(), "inproc");
        // Writer 1 (node0/numa0) -> reader 0 (node0/numa1): shared memory.
        let tx = link.claim_sender(ChannelId::Data { w: 1, r: 0 });
        assert_eq!(tx.transport_name(), "shm");
    }

    #[test]
    fn cross_node_uses_rdma() {
        let link = LinkState::new(
            1,
            vec![CoreLocation { node: 0, numa: 0, core: 0 }],
            Some(NetSim::new(machine::InterconnectParams::gemini(), 2)),
            &StreamHints::default(),
        );
        link.set_reader_info(1, vec![CoreLocation { node: 1, numa: 0, core: 0 }]);
        let tx = link.claim_sender(ChannelId::Data { w: 0, r: 0 });
        assert_eq!(tx.transport_name(), "rdma");
    }

    #[test]
    fn wait_reader_info_blocks_and_delivers() {
        let link = LinkState::new(
            1,
            vec![CoreLocation { node: 0, numa: 0, core: 0 }],
            None,
            &StreamHints::default(),
        );
        let l2 = Arc::clone(&link);
        let t = thread::spawn(move || l2.wait_reader_info(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        link.set_reader_info(3, vec![CoreLocation { node: 0, numa: 0, core: 1 }; 3]);
        let (count, cores) = t.join().unwrap().unwrap();
        assert_eq!(count, 3);
        assert_eq!(cores.len(), 3);
    }

    #[test]
    fn recv_record_times_out_and_counts_retries() {
        let (_tx, mut rx) = inproc_pair();
        let hints = StreamHints {
            recv_timeout: Duration::from_millis(5),
            retries: 2,
            ..Default::default()
        };
        let counters = ProtocolCounters::new_shared();
        let err = recv_record(&mut rx, &hints, &counters);
        assert_eq!(err, Err(StreamError::Timeout));
        assert_eq!(counters.resilience_snapshot().0, 2, "one bump per retry attempt");
    }

    #[test]
    fn recv_record_backs_off_exponentially() {
        // 3 retries at 5ms base: 5 + 10 + 20 + 40 = 75ms minimum.
        let (_tx, mut rx) = inproc_pair();
        let hints = StreamHints {
            recv_timeout: Duration::from_millis(5),
            retries: 3,
            ..Default::default()
        };
        let counters = ProtocolCounters::new_shared();
        let start = Instant::now();
        let err = recv_record(&mut rx, &hints, &counters);
        assert_eq!(err, Err(StreamError::Timeout));
        assert!(
            start.elapsed() >= Duration::from_millis(75),
            "attempts must back off, not retry at a fixed pace (took {:?})",
            start.elapsed()
        );
    }

    #[test]
    fn hints_from_config() {
        let cfg = adios::IoConfig::from_xml(
            r#"<adios-config><group name="g"><method transport="STREAM">
               <hint name="caching" value="CACHING_ALL"/>
               <hint name="batching" value="true"/>
               <hint name="async" value="true"/>
               <hint name="queue_entries" value="256"/>
               <hint name="timeout_ms" value="1234"/>
            </method></group></adios-config>"#,
        )
        .unwrap();
        let h = StreamHints::from_config(cfg.group("g").unwrap());
        assert_eq!(h.caching, CachingLevel::CachingAll);
        assert!(h.batching);
        assert_eq!(h.write_mode, WriteMode::Async);
        assert_eq!(h.queue_entries, 256);
        assert_eq!(h.recv_timeout, Duration::from_millis(1234));
        assert!(h.faults.is_none());
        assert!(!h.eos_on_silence);
    }

    #[test]
    fn fault_hints_from_config() {
        let cfg = adios::IoConfig::from_xml(
            r#"<adios-config><group name="g"><method transport="STREAM">
               <hint name="fault.seed" value="99"/>
               <hint name="fault.default.delay_ms" value="7"/>
               <hint name="fault.default.delay_pm" value="50"/>
               <hint name="fault.data.drop_pm" value="120"/>
               <hint name="fault.ctrl:w2r.crash_sender_after" value="3"/>
               <hint name="fault.dir.stall_ms" value="25"/>
               <hint name="eos_on_silence" value="true"/>
            </method></group></adios-config>"#,
        )
        .unwrap();
        let h = StreamHints::from_config(cfg.group("g").unwrap());
        assert!(h.eos_on_silence);
        let plan = h.faults.expect("fault.seed must enable a plan");
        assert_eq!(plan.seed(), 99);
        assert_eq!(plan.spec_for("data:1->0").drop_per_mille, 120);
        assert_eq!(plan.spec_for("ctrl:w2r").crash_sender_after, Some(3));
        assert_eq!(plan.spec_for("dir").stall, Some(Duration::from_millis(25)));
        let dflt = plan.spec_for("ack:0->0");
        assert_eq!(dflt.delay, Duration::from_millis(7));
        assert_eq!(dflt.delay_per_mille, 50);
    }

    #[test]
    fn seq_framing_heals_reorder_and_discards_duplicates() {
        let mut plan = FaultPlan::new(21);
        plan.set(
            "data",
            FaultSpec { reorder_per_mille: 400, dup_per_mille: 400, ..Default::default() },
        );
        // Deep queue: these tests send everything before draining, which
        // would deadlock against the bounded shm queue's backpressure.
        let hints =
            StreamHints { faults: Some(Arc::new(plan)), queue_entries: 4096, ..Default::default() };
        let link = LinkState::new(
            2,
            vec![
                CoreLocation { node: 0, numa: 0, core: 0 },
                CoreLocation { node: 0, numa: 0, core: 1 },
            ],
            None,
            &hints,
        );
        link.set_reader_info(1, vec![CoreLocation { node: 0, numa: 1, core: 0 }]);
        let id = ChannelId::Data { w: 1, r: 0 };
        let mut tx = link.claim_sender(id);
        let mut rx = link.claim_receiver(id);
        for i in 0u64..100 {
            tx.send(&i.to_le_bytes());
        }
        drop(tx); // flush any message held back by a reorder fault
                  // Despite duplication and pairwise swaps on the wire, the seq layer
                  // delivers the exact original sequence.
        for i in 0u64..100 {
            let got = rx.recv();
            assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), i);
        }
        let (_retries, dups, healed, drops, ..) = link.counters.resilience_snapshot();
        assert!(dups > 0, "duplication faults must have fired");
        assert!(healed > 0, "reorder faults must have been healed");
        assert_eq!(drops, 0, "nothing was dropped");
    }

    #[test]
    fn seq_framing_skips_gaps_from_drops() {
        let mut plan = FaultPlan::new(3);
        plan.set("data", FaultSpec { drop_per_mille: 250, ..Default::default() });
        // Deep queue: these tests send everything before draining, which
        // would deadlock against the bounded shm queue's backpressure.
        let hints =
            StreamHints { faults: Some(Arc::new(plan)), queue_entries: 4096, ..Default::default() };
        let link = LinkState::new(
            2,
            vec![
                CoreLocation { node: 0, numa: 0, core: 0 },
                CoreLocation { node: 0, numa: 0, core: 1 },
            ],
            None,
            &hints,
        );
        link.set_reader_info(1, vec![CoreLocation { node: 0, numa: 1, core: 0 }]);
        let id = ChannelId::Data { w: 1, r: 0 };
        let mut tx = link.claim_sender(id);
        let mut rx = link.claim_receiver(id);
        for i in 0u64..200 {
            tx.send(&i.to_le_bytes());
        }
        let mut got = Vec::new();
        while let Some(m) = rx.try_recv() {
            got.push(u64::from_le_bytes(m[..8].try_into().unwrap()));
        }
        // Survivors arrive in order, and once enough later messages pile
        // up the receiver writes the gap off as drops rather than stalling.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "sequence order must be preserved");
        assert!(got.len() < 200, "a 25% drop rate must lose messages");
        let (_retries, _dups, _healed, drops, ..) = link.counters.resilience_snapshot();
        assert!(drops > 0, "skipped gaps must be counted as observed drops");
    }
}
