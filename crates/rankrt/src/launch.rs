//! Launching a parallel "program": one thread per rank.

use std::thread;

use crate::comm::Comm;

/// Error produced when one or more ranks panicked.
#[derive(Debug)]
pub struct LaunchError {
    /// Ranks whose thread panicked.
    pub failed_ranks: Vec<usize>,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ranks {:?} panicked during parallel execution", self.failed_ranks)
    }
}

impl std::error::Error for LaunchError {}

/// Run `body` on `nranks` ranks (threads) and collect each rank's return
/// value, ordered by rank. Panics if any rank panics.
///
/// This is the MPI substitute's `mpirun`: the closure receives that rank's
/// [`Comm`] and runs to completion.
pub fn launch<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Comm) -> T + Send + Sync + 'static,
{
    try_launch(nranks, "rank", body).expect("a rank panicked")
}

/// Like [`launch`] but threads are named `"{name}-{rank}"`, which makes
/// debugging coupled simulation/analytics runs much easier.
pub fn launch_named<T, F>(nranks: usize, name: &str, body: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Comm) -> T + Send + Sync + 'static,
{
    try_launch(nranks, name, body).expect("a rank panicked")
}

fn try_launch<T, F>(nranks: usize, name: &str, body: F) -> Result<Vec<T>, LaunchError>
where
    T: Send + 'static,
    F: Fn(Comm) -> T + Send + Sync + 'static,
{
    let comms = Comm::fabric(nranks);
    let body = std::sync::Arc::new(body);
    let mut handles = Vec::with_capacity(nranks);
    for comm in comms {
        let body = std::sync::Arc::clone(&body);
        let rank = comm.rank();
        let handle = thread::Builder::new()
            .name(format!("{name}-{rank}"))
            .spawn(move || body(comm))
            .expect("failed to spawn rank thread");
        handles.push(handle);
    }
    let mut results = Vec::with_capacity(nranks);
    let mut failed = Vec::new();
    for (rank, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(v) => results.push(v),
            Err(_) => failed.push(rank),
        }
    }
    if failed.is_empty() {
        Ok(results)
    } else {
        Err(LaunchError { failed_ranks: failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_collects_ordered_results() {
        let results = launch(7, |comm| comm.rank() * comm.rank());
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn single_rank_launch() {
        let results = launch(1, |comm| {
            comm.barrier();
            comm.size()
        });
        assert_eq!(results, vec![1]);
    }
}
