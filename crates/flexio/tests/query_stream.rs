//! End-to-end query battery: the pushdown planner must be
//! result-invisible. The same plan over the same stream — filter lowered
//! to a writer-side plug-in vs. everything evaluated reader-side — must
//! produce byte-identical [`QueryOutput`] digests, on the blocking and
//! reactor backends, sharded over a fleet, and under a seeded
//! dup/reorder fault storm. The only observable difference pushdown is
//! allowed to make is fewer bytes on the wire — which the counters must
//! actually show.

mod common;

use std::sync::Arc;

use adios::WriteEngine;
use common::{block_1d, couple, reader_core, writer_core, writer_roster};
use evpath::{FaultPlan, FaultSpec};
use flexio::query::{AggFunc, Expr, Plan};
use flexio::{
    CachingLevel, FleetRuntime, FlexIo, MonitorEvent, QueryConfig, QuerySession, Runtime,
    StreamHints,
};
use machine::laptop;

const WRITERS: usize = 2;
const STEPS: u64 = 4;
const ROWS_PER_CHUNK: u64 = 8;

/// Deterministic per-writer chunk: values `step*100 + rank*8 + i`, so the
/// stream holds 0..=315 and a `< 80` filter keeps a known subset.
fn chunk(step: u64, rank: usize) -> Vec<f64> {
    (0..ROWS_PER_CHUNK).map(|i| (step * 100 + rank as u64 * ROWS_PER_CHUNK + i) as f64).collect()
}

fn test_plan(agg: bool) -> Plan {
    let p = Plan::select(&["field"]).filter(Expr::col("field").lt(Expr::lit(80.0)));
    if agg {
        p.aggregate(AggFunc::Sum, "field").window(2)
    } else {
        p
    }
}

fn hints_for(runtime: Runtime, plan: &Arc<FaultPlan>) -> StreamHints {
    StreamHints {
        caching: CachingLevel::CachingAll,
        faults: Some(Arc::clone(plan)),
        runtime,
        ..StreamHints::default()
    }
}

fn storm(seed: u64) -> Arc<FaultPlan> {
    let mut plan = FaultPlan::new(seed);
    plan.set(
        "data",
        FaultSpec { dup_per_mille: 400, reorder_per_mille: 400, ..Default::default() },
    );
    Arc::new(plan)
}

/// One coupled run; returns the output digest plus the counter snapshot
/// `(rows_in, rows_out, bytes_pushed_down, bytes_saved)` and the
/// monitor-side `(rows_in_total, records)` pair for the rows-in event.
fn run_query(
    faults: Arc<FaultPlan>,
    runtime: Runtime,
    pushdown: bool,
    oracle: bool,
    agg: bool,
) -> (u64, (u64, u64, u64, u64), (u64, u64)) {
    let hints = hints_for(runtime, &faults);
    let (_w, mut reads) = couple(
        WRITERS,
        1,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data = chunk(step, rank);
                w.write(
                    "field",
                    block_1d(rank as u64 * ROWS_PER_CHUNK, data, WRITERS as u64 * ROWS_PER_CHUNK),
                );
                w.end_step();
            }
            w.close();
        },
        move |r, _rank| {
            let link = Arc::clone(r.link());
            let cfg = QueryConfig { pushdown, oracle, ..QueryConfig::default() };
            let session =
                QuerySession::attach(r, WRITERS, test_plan(agg), cfg).expect("attach query");
            assert_eq!(
                session.pushdown_active(),
                pushdown,
                "the < filter over one var must lower exactly when pushdown is on"
            );
            let counters = session.counters();
            let out = session.run_to_end().expect("query run");
            let rows_in_monitor = (
                link.monitor.total_bytes(MonitorEvent::QueryRowsIn),
                link.monitor.count(MonitorEvent::QueryRowsIn),
            );
            (out.digest(), counters.snapshot(), rows_in_monitor)
        },
    );
    reads.pop().expect("one reader")
}

#[test]
fn pushdown_is_result_invisible_on_both_backends() {
    for agg in [false, true] {
        let quiet = || Arc::new(FaultPlan::new(0));
        let base = run_query(quiet(), Runtime::Blocking, false, false, agg);
        for runtime in [Runtime::Blocking, Runtime::Reactor] {
            for pushdown in [false, true] {
                let run = run_query(quiet(), runtime, pushdown, false, agg);
                assert_eq!(
                    run.0, base.0,
                    "agg={agg} {runtime:?} pushdown={pushdown}: output digest diverged"
                );
                // Same rows enter and leave the filter no matter where it ran.
                assert_eq!((run.1 .0, run.1 .1), (base.1 .0, base.1 .1));
            }
        }
    }
}

#[test]
fn pushdown_counters_show_the_bytes_that_stayed_home() {
    let quiet = || Arc::new(FaultPlan::new(0));
    let with = run_query(quiet(), Runtime::Blocking, true, false, false);
    let without = run_query(quiet(), Runtime::Blocking, false, false, false);

    let total_rows = WRITERS as u64 * STEPS * ROWS_PER_CHUNK;
    let (rows_in, rows_out, pushed, saved) = with.1;
    assert_eq!(rows_in, total_rows, "conditioned chunks must report original row counts");
    assert!(rows_out < rows_in, "the filter must actually drop rows");
    assert_eq!(pushed, total_rows * 8, "every chunk should be conditioned writer-side");
    assert_eq!(saved, (rows_in - rows_out) * 8, "saved = dropped rows x element width");

    let (rows_in2, rows_out2, pushed2, saved2) = without.1;
    assert_eq!((rows_in2, rows_out2), (rows_in, rows_out));
    assert_eq!((pushed2, saved2), (0, 0), "no pushdown, nothing crosses pre-filtered");

    // The counters are mirrored into the monitor: one record per step,
    // totals matching the session counters (the relay/sink path ships
    // these like any other measurement point).
    assert_eq!(with.2, (rows_in, STEPS));
    assert_eq!(without.2, (rows_in, STEPS));
}

#[test]
fn pushdown_equivalence_survives_a_fault_storm() {
    let seed =
        std::env::var("FLEXIO_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF1E510);
    for runtime in [Runtime::Blocking, Runtime::Reactor] {
        let with = run_query(storm(seed), runtime, true, false, false);
        let without = run_query(storm(seed), runtime, false, false, false);
        assert_eq!(
            with.0, without.0,
            "seed {seed} {runtime:?}: faults made pushdown observable in the results"
        );
        assert!(with.1 .2 > 0, "seed {seed}: pushdown must still condition chunks under faults");
    }
    // Non-vacuous: the schedule must have injected something.
    let probe = storm(seed);
    let _ = run_query(Arc::clone(&probe), Runtime::Blocking, true, false, false);
    let (_, duplicated, reordered, ..) = probe.counters().snapshot();
    assert!(duplicated + reordered > 0, "seed {seed} injected nothing");
}

#[test]
fn oracle_mode_validates_the_vectorized_executor_in_vivo() {
    for (pushdown, agg) in [(true, false), (false, false), (true, true)] {
        let quiet = Arc::new(FaultPlan::new(0));
        // `run_to_end` fails loudly on any vectorized/naive divergence.
        let _ = run_query(quiet, Runtime::Blocking, pushdown, true, agg);
    }
}

/// The fleet backend: writers are reactor tasks sharded over worker
/// cores, the query runs as a spawned task via
/// [`FleetRuntime::spawn_query`]; results must match the blocking
/// backend bit for bit.
#[test]
fn fleet_query_task_matches_the_blocking_backend() {
    let reference = run_query(Arc::new(FaultPlan::new(0)), Runtime::Blocking, true, false, false);

    let hints = hints_for(Runtime::Reactor, &Arc::new(FaultPlan::new(0)));
    let io = FlexIo::new(laptop(), 4);
    let fleet = FleetRuntime::new(&laptop(), 4);
    for rank in 0..WRITERS {
        let io = io.clone();
        let hints = hints.clone();
        fleet.spawn_for(&[writer_core(rank)], async move {
            let mut w = io
                .open_writer_rt(
                    "stream",
                    rank,
                    WRITERS,
                    writer_core(rank),
                    writer_roster(WRITERS),
                    hints,
                )
                .await
                .expect("open writer");
            for step in 0..STEPS {
                w.begin_step(step);
                let data = chunk(step, rank);
                w.write(
                    "field",
                    block_1d(rank as u64 * ROWS_PER_CHUNK, data, WRITERS as u64 * ROWS_PER_CHUNK),
                );
                w.end_step_rt().await.expect("end_step");
            }
            w.close();
        });
    }

    let reader = io
        .open_reader("stream", 0, 1, reader_core(0), vec![reader_core(0)], hints)
        .expect("open reader");
    let session = QuerySession::attach(reader, WRITERS, test_plan(false), QueryConfig::default())
        .expect("attach query");
    let task = fleet.spawn_query(session, &[reader_core(0)]);
    fleet.join();

    assert!(task.is_done());
    assert_eq!(task.kind(), "query");
    let handle = task.typed::<flexio::query::QueryHandle>().expect("query downcast");
    let out = handle.take_output().expect("task finished").expect("query ok");
    assert_eq!(out.digest(), reference.0, "fleet query diverged from the blocking backend");
    let c = handle.counters();
    assert_eq!(c.snapshot().0, reference.1 .0, "fleet query saw a different number of input rows");
    assert_eq!(task.counter("rows_in"), Some(reference.1 .0), "unified counter mirrors snapshot");
    assert_eq!(handle.steps().len() as u64, STEPS);
}
