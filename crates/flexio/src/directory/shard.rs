//! The lock-striped registry: N shards keyed by stream-name hash.
//!
//! Each shard is its own mutex+condvar+counter block, so concurrent
//! coordinators registering and looking up *different* streams touch
//! different locks — the single-map directory serialized all of them
//! behind one mutex, which ROADMAP called out as the scaling wall.
//!
//! Entries are **versioned** and unregisters leave **tombstones** instead
//! of removing the key. A standalone [`ShardedDirectory`] doesn't need
//! either, but the gossip layer does (a removal that simply vanished
//! could be resurrected by a stale peer digest); keeping one entry shape
//! means the replicated nodes reuse this store unchanged.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::link::LinkState;
use crate::protocol::DirectoryCounters;

use super::{fnv1a, DirectoryError, DirectoryService};

/// One registry entry. `(version, origin)` orders concurrent updates
/// cluster-wide: higher version wins, ties broken by higher origin node
/// id, so every node converges to the same winner regardless of the
/// order gossip delivered the candidates.
#[derive(Clone)]
pub(crate) struct VersionedEntry {
    /// The contact, or `None` for a tombstoned (unregistered) name.
    pub contact: Option<Arc<LinkState>>,
    /// Monotonic per-name version; bumped by every register/unregister.
    pub version: u64,
    /// Node id that produced this version (0 for standalone stores).
    pub origin: u64,
    /// Cluster-wide contact token carried on the gossip wire in place of
    /// the in-process `Arc` (0 = none; real deployments would carry the
    /// serialized contact string itself).
    pub token: u64,
}

impl VersionedEntry {
    /// Replication ordering (see struct docs).
    fn beats(&self, other: &VersionedEntry) -> bool {
        (self.version, self.origin) > (other.version, other.origin)
    }
}

struct Shard {
    entries: Mutex<HashMap<String, VersionedEntry>>,
    ready: Condvar,
    counters: DirectoryCounters,
}

impl Shard {
    /// Lock the shard, counting the acquisitions that had to wait — the
    /// contention the striping exists to eliminate.
    fn lock(&self) -> MutexGuard<'_, HashMap<String, VersionedEntry>> {
        match self.entries.try_lock() {
            Some(guard) => guard,
            None => {
                self.counters.contended.fetch_add(1, Ordering::Relaxed);
                self.entries.lock()
            }
        }
    }
}

/// The directory registry split into N lock-striped shards keyed by
/// stream-name hash. Implements [`DirectoryService`] directly (a
/// single-node sharded server) and doubles as the per-node store of the
/// gossip-replicated cluster.
pub struct ShardedDirectory {
    shards: Box<[Shard]>,
    /// Node id stamped into entry origins (0 for standalone use).
    origin: u64,
}

impl ShardedDirectory {
    /// A registry striped over `shards` locks (at least 1).
    pub fn new(shards: usize) -> ShardedDirectory {
        ShardedDirectory::with_origin(shards, 0)
    }

    /// A registry whose locally-produced entries carry `origin` (the
    /// owning cluster node's id).
    pub(crate) fn with_origin(shards: usize, origin: u64) -> ShardedDirectory {
        let shards = shards.max(1);
        ShardedDirectory {
            shards: (0..shards)
                .map(|_| Shard {
                    entries: Mutex::new(HashMap::new()),
                    ready: Condvar::new(),
                    counters: DirectoryCounters::default(),
                })
                .collect(),
            origin,
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, name: &str) -> &Shard {
        &self.shards[(fnv1a(name) % self.shards.len() as u64) as usize]
    }

    /// Which stripe serves `name` (stable across runs and nodes).
    pub fn shard_index(&self, name: &str) -> usize {
        (fnv1a(name) % self.shards.len() as u64) as usize
    }

    /// Per-shard counter snapshots `(registrations, lookups, unregisters,
    /// contended)`, index = shard.
    pub fn shard_snapshots(&self) -> Vec<(u64, u64, u64, u64)> {
        self.shards.iter().map(|s| s.counters.snapshot()).collect()
    }

    /// Register with an explicit token (gossip nodes pre-assign tokens so
    /// the entry can cross the wire). Returns the entry's new version.
    pub(crate) fn register_local(
        &self,
        name: &str,
        contact: Arc<LinkState>,
        token: u64,
    ) -> Result<u64, DirectoryError> {
        let shard = self.shard_of(name);
        let mut entries = shard.lock();
        let version = match entries.get(name) {
            Some(e) if e.contact.is_some() => {
                return Err(DirectoryError::AlreadyRegistered(name.to_string()));
            }
            Some(tombstone) => tombstone.version + 1,
            None => 1,
        };
        entries.insert(
            name.to_string(),
            VersionedEntry { contact: Some(contact), version, origin: self.origin, token },
        );
        shard.counters.registrations.fetch_add(1, Ordering::Relaxed);
        shard.ready.notify_all();
        Ok(version)
    }

    /// Tombstone a name; returns the tombstone's version if the name was
    /// live.
    pub(crate) fn unregister_local(&self, name: &str) -> Option<u64> {
        let shard = self.shard_of(name);
        let mut entries = shard.lock();
        let entry = entries.get_mut(name)?;
        entry.contact.as_ref()?;
        entry.contact = None;
        entry.token = 0;
        entry.version += 1;
        entry.origin = self.origin;
        let version = entry.version;
        shard.counters.unregisters.fetch_add(1, Ordering::Relaxed);
        Some(version)
    }

    /// Apply a replicated entry if it beats the local one (anti-entropy
    /// merge). Does **not** bump the registration counters — those count
    /// client traffic, not replication. Returns whether the entry was
    /// applied.
    pub(crate) fn merge(&self, name: &str, incoming: VersionedEntry) -> bool {
        let shard = self.shard_of(name);
        let mut entries = shard.lock();
        match entries.get(name) {
            Some(local) if !incoming.beats(local) => return false,
            _ => {}
        }
        let wake = incoming.contact.is_some();
        entries.insert(name.to_string(), incoming);
        if wake {
            shard.ready.notify_all();
        }
        true
    }

    /// Snapshot every entry (gossip digest source).
    pub(crate) fn export(&self) -> Vec<(String, VersionedEntry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (name, entry) in shard.lock().iter() {
                out.push((name.clone(), entry.clone()));
            }
        }
        out
    }

    /// Blocking wait for `name` on its shard's condvar, used by both the
    /// trait `lookup` and the replicated handle (which waits in slices so
    /// it can fail over between them).
    pub(crate) fn wait_lookup(&self, name: &str, timeout: Duration) -> Option<Arc<LinkState>> {
        let shard = self.shard_of(name);
        let mut entries = shard.lock();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(contact) = entries.get(name).and_then(|e| e.contact.clone()) {
                shard.counters.lookups.fetch_add(1, Ordering::Relaxed);
                return Some(contact);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            shard.ready.wait_for(&mut entries, deadline - now);
        }
    }
}

impl DirectoryService for ShardedDirectory {
    fn register(&self, name: &str, contact: Arc<LinkState>) -> Result<(), DirectoryError> {
        self.register_local(name, contact, 0).map(|_| ())
    }

    fn lookup(&self, name: &str, timeout: Duration) -> Result<Arc<LinkState>, DirectoryError> {
        self.wait_lookup(name, timeout)
            .ok_or_else(|| DirectoryError::LookupTimeout(name.to_string()))
    }

    fn try_lookup(&self, name: &str) -> Option<Arc<LinkState>> {
        let shard = self.shard_of(name);
        let contact = shard.lock().get(name)?.contact.clone()?;
        shard.counters.lookups.fetch_add(1, Ordering::Relaxed);
        Some(contact)
    }

    fn unregister(&self, name: &str) -> bool {
        self.unregister_local(name).is_some()
    }

    fn registration_count(&self) -> u64 {
        self.shards.iter().map(|s| s.counters.registrations.load(Ordering::Relaxed)).sum()
    }

    fn lookup_count(&self) -> u64 {
        self.shards.iter().map(|s| s.counters.lookups.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn dummy_link() -> Arc<LinkState> {
        crate::link::LinkState::for_tests()
    }

    #[test]
    fn behaves_like_the_single_map_directory() {
        let d = ShardedDirectory::new(8);
        let link = dummy_link();
        d.register("s", Arc::clone(&link)).unwrap();
        assert!(Arc::ptr_eq(&link, &d.lookup("s", Duration::from_millis(5)).unwrap()));
        assert_eq!(
            d.register("s", dummy_link()),
            Err(DirectoryError::AlreadyRegistered("s".into()))
        );
        assert!(d.unregister("s"));
        assert!(!d.unregister("s"), "second unregister is a no-op");
        d.register("s", dummy_link()).unwrap();
        assert_eq!(d.registration_count(), 2);
        assert_eq!(d.lookup_count(), 1);
    }

    #[test]
    fn one_shard_degenerates_to_single_map() {
        let d = ShardedDirectory::new(1);
        for i in 0..16 {
            d.register(&format!("s{i}"), dummy_link()).unwrap();
        }
        assert_eq!(d.shard_count(), 1);
        assert_eq!(d.shard_snapshots()[0].0, 16);
    }

    #[test]
    fn names_spread_across_shards() {
        let d = ShardedDirectory::new(8);
        for i in 0..64 {
            d.register(&format!("stream/{i}"), dummy_link()).unwrap();
        }
        let active = d.shard_snapshots().iter().filter(|s| s.0 > 0).count();
        assert!(active >= 4, "64 names must spread over the 8 stripes, hit {active}");
        assert_eq!(d.registration_count(), 64);
    }

    #[test]
    fn shard_assignment_is_stable() {
        let a = ShardedDirectory::new(8);
        let b = ShardedDirectory::new(8);
        for name in ["x", "run42/particles", "a/very/long/stream/name"] {
            assert_eq!(a.shard_index(name), b.shard_index(name));
        }
    }

    #[test]
    fn blocking_lookup_wakes_on_its_shard() {
        let d = Arc::new(ShardedDirectory::new(8));
        let d2 = Arc::clone(&d);
        let t = thread::spawn(move || d2.lookup("late", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        d.register("late", dummy_link()).unwrap();
        assert!(t.join().unwrap().is_ok());
    }

    #[test]
    fn reregistration_after_tombstone_bumps_version() {
        let d = ShardedDirectory::new(4);
        assert_eq!(d.register_local("s", dummy_link(), 0).unwrap(), 1);
        assert_eq!(d.unregister_local("s"), Some(2));
        assert_eq!(d.register_local("s", dummy_link(), 0).unwrap(), 3);
    }

    #[test]
    fn merge_respects_version_origin_order() {
        let d = ShardedDirectory::with_origin(4, 1);
        d.register_local("s", dummy_link(), 7).unwrap();
        // A stale replica (version 0) must not clobber the live entry.
        let stale = VersionedEntry { contact: None, version: 0, origin: 9, token: 0 };
        assert!(!d.merge("s", stale));
        assert!(d.try_lookup("s").is_some());
        // A newer tombstone wins.
        let newer = VersionedEntry { contact: None, version: 2, origin: 0, token: 0 };
        assert!(d.merge("s", newer));
        assert!(d.try_lookup("s").is_none());
        // Same version: higher origin wins the tie.
        let tie = VersionedEntry { contact: Some(dummy_link()), version: 2, origin: 3, token: 11 };
        assert!(d.merge("s", tie));
        assert!(d.try_lookup("s").is_some());
    }
}
