//! Pushdown planner: split a plan at the stream boundary.
//!
//! Predicates that depend only on writer-visible variables lower to a
//! codelet source string — the portable carrier the Data Conditioning
//! plug-in machinery already ships across address spaces — so
//! filtered-out elements never cross the transport. The residual plan
//! (aggregates, windows, cross-chunk assembly, row limits) runs
//! reader-side over the surviving chunks.
//!
//! Equivalence contract: the lowered codelet evaluates the predicate
//! over the same `f64` values with the same IEEE operations as the
//! reader-side executors (the codelet VM widens every comparison to
//! `f64`, and every literal is emitted as a float), so pushdown ≡
//! no-pushdown bit-exactly. Conditioned chunks carry the standard
//! `dc_applied` marker plus a `q_rows_in` extra recording the
//! pre-filter element count for the query counters.

use crate::expr::Expr;
use crate::plan::Plan;
use codelet::Codelet;

/// Extra field the lowered codelet emits alongside the filtered chunk:
/// the element count *before* filtering, so the reader can account
/// `rows_in` and `bytes_saved` without seeing the dropped elements.
pub const Q_ROWS_IN: &str = "q_rows_in";

/// A writer-side lowering of the pushdown-eligible part of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// The variable the codelet conditions.
    pub var: String,
    /// Compilable codelet source (verified by [`lower_pushdown`]).
    pub source: String,
}

/// Try to split `plan` at the stream boundary. Returns the writer-side
/// half when the filter is expressible there:
///
/// - the plan selects exactly one variable (the conditioning machinery
///   rewrites one variable per plug-in),
/// - a filter exists and references only that variable,
/// - every literal is finite (the codelet lexer has no NaN/inf
///   spelling).
///
/// The generated source is compile-checked before being returned, so a
/// `Some` result is guaranteed installable.
pub fn lower_pushdown(plan: &Plan) -> Option<Lowered> {
    plan.validate().ok()?;
    if plan.vars.len() != 1 {
        return None;
    }
    let filter = plan.filter.as_ref()?;
    if !filter.literals_finite() {
        return None;
    }
    let var = &plan.vars[0];
    let pred = render(filter, var);
    let source = format!(
        r#"// flexio-query pushdown filter
let v = get_f64("{var}");
let n = len(v);
let out = array();
for i in 0..n {{
    let x = v[i];
    if {pred} {{ push(out, x); }}
}}
emit_f64("{var}", out);
emit_int("{Q_ROWS_IN}", n);
"#
    );
    // Never ship a source the writer cannot compile.
    Codelet::compile(&source).ok()?;
    Some(Lowered { var: var.clone(), source })
}

/// Render an expression as fully parenthesized codelet source with the
/// single column bound to the loop variable `x`.
fn render(expr: &Expr, var: &str) -> String {
    match expr {
        Expr::Col(name) => {
            debug_assert_eq!(name, var, "validated single-variable plan");
            "x".to_string()
        }
        Expr::Lit(v) => fmt_f64_lit(*v),
        Expr::Bin(op, a, b) => {
            format!("({} {} {})", render(a, var), op.codelet_str(), render(b, var))
        }
        Expr::Cmp(op, a, b) => {
            format!("({} {} {})", render(a, var), op.codelet_str(), render(b, var))
        }
        Expr::And(a, b) => format!("({} && {})", render(a, var), render(b, var)),
        Expr::Or(a, b) => format!("({} || {})", render(a, var), render(b, var)),
        Expr::Not(a) => format!("(!{})", render(a, var)),
    }
}

/// Format a finite `f64` so the codelet lexer reads it back as a float
/// with the exact same bits. Rust's shortest-roundtrip `{:?}` is the
/// base, but the lexer requires a '.' in float literals ("1e100" would
/// lex as an int followed by junk), so one is inserted when missing.
fn fmt_f64_lit(v: f64) -> String {
    debug_assert!(v.is_finite(), "gated by literals_finite");
    let s = format!("{v:?}");
    if s.contains('.') {
        s
    } else if let Some(epos) = s.find('e') {
        format!("{}.0{}", &s[..epos], &s[epos..])
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggFunc;
    use evpath::{FieldValue, Record};

    #[test]
    fn literal_formatting_roundtrips_through_the_lexer() {
        for v in [0.2, -1.5, 1e100, -3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 5e-324] {
            let s = fmt_f64_lit(v);
            assert!(s.contains('.'), "no dot in {s}");
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s} did not roundtrip");
        }
    }

    #[test]
    fn single_var_filter_lowers_and_runs() {
        let plan = Plan::select(&["velocity"])
            .filter(Expr::col("velocity").lt(Expr::lit(0.2)))
            .aggregate(AggFunc::Count, "velocity");
        let lowered = lower_pushdown(&plan).expect("eligible");
        assert_eq!(lowered.var, "velocity");
        let c = Codelet::compile(&lowered.source).unwrap();
        let input =
            Record::new().with("velocity", FieldValue::F64Array(vec![0.1, 0.9, 0.15, 2.4, 0.05]));
        let out = c.run(&input).unwrap();
        assert_eq!(out.get_f64_array("velocity"), Some(&[0.1, 0.15, 0.05][..]));
        assert_eq!(out.get_i64(Q_ROWS_IN), Some(5));
    }

    #[test]
    fn complex_predicates_lower() {
        let e = Expr::col("v")
            .mul(Expr::lit(2.0))
            .sub(Expr::lit(1.0))
            .ge(Expr::lit(0.0))
            .and(Expr::col("v").ne(Expr::lit(4.0)).or(Expr::col("v").gt(Expr::lit(10.0))))
            .and(Expr::col("v").eq(Expr::lit(7.0)).not().not().not());
        let plan = Plan::select(&["v"]).filter(e);
        let lowered = lower_pushdown(&plan).expect("eligible");
        let c = Codelet::compile(&lowered.source).unwrap();
        let input = Record::new().with("v", FieldValue::F64Array(vec![0.5, 4.0, 7.0, 11.0]));
        let out = c.run(&input).unwrap();
        // 0.5: 2*0.5-1 = 0 >= 0, != 4, != 7 → keep; 4.0: ne 4 false, gt 10 false → drop;
        // 7.0: eq 7 → !!(!true)=false → drop; 11.0: keep.
        assert_eq!(out.get_f64_array("v"), Some(&[0.5, 11.0][..]));
    }

    #[test]
    fn ineligible_plans_stay_reader_side() {
        // Two variables.
        assert!(lower_pushdown(
            &Plan::select(&["a", "b"]).filter(Expr::col("a").lt(Expr::lit(1.0)))
        )
        .is_none());
        // No filter.
        assert!(lower_pushdown(&Plan::select(&["a"])).is_none());
        // Non-finite literal.
        assert!(lower_pushdown(
            &Plan::select(&["a"]).filter(Expr::col("a").lt(Expr::lit(f64::NAN)))
        )
        .is_none());
    }
}
