//! `placement` — exploiting FlexIO's location flexibility (paper §III).
//!
//! FlexIO makes analytics placement a *policy*: "placement algorithms
//! 1) optimize some objective (e.g., minimizing total execution time);
//!    2) use a resource allocation policy that determines how much resource
//!    to allocate to simulation and analytics components; and 3) carry out a
//!    resource binding policy that decides the process/thread to physical
//!    resource mapping."
//!
//! This crate implements the paper's three algorithms plus their shared
//! machinery:
//!
//! * [`graph`] — the weighted communication graph over simulation and
//!   analytics processes (inter-program movement and intra-program MPI);
//! * [`partition`] — recursive bisection with Kernighan–Lin/FM-style
//!   refinement (our stand-in for the SCOTCH library the paper calls);
//! * [`mapping`] — dual recursive graph-to-architecture-tree mapping;
//! * [`allocate`] — the holistic resource-allocation step: scale analytics
//!   to match the simulation's data-generation rate (synchronous) or to
//!   fit movement + compute inside the I/O interval (asynchronous);
//! * [`algorithms`] — the three binding policies: data-aware mapping,
//!   holistic placement, node-topology-aware placement;
//! * [`metrics`] — the §III.A objectives: Total CPU-hours and data
//!   movement volume (Total Execution Time comes from `dessim`).

pub mod algorithms;
pub mod allocate;
pub mod graph;
pub mod mapping;
pub mod metrics;
pub mod partition;

pub use algorithms::{data_aware_mapping, holistic, topology_aware, PlacementPlan, PolicyKind};
pub use allocate::{allocate_async, allocate_sync, AnalyticsScaling};
pub use graph::{CommGraph, ProcKind};
pub use mapping::{assignment_comm_cost, map_to_tree};
pub use metrics::{cpu_hours, movement_volume, MovementVolume};
