//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, bounded, Sender, Receiver}` and
//! `utils::CachePadded`.
//!
//! The channel is a mutex+condvar MPMC queue with crossbeam-compatible
//! disconnect semantics: `recv` returns `Err(RecvError)` once every sender
//! is dropped and the queue is drained, and both halves are `Clone`.
//! Throughput is far below real crossbeam, but every use in this workspace
//! is control-plane traffic (the hot data paths use the `shm` crate's
//! lock-free queues).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: all receivers disconnected; carries the rejected value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: channel empty and all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Create a "bounded" channel. The shim does not enforce the capacity
    /// (no use in this workspace relies on bounded-send backpressure; the
    /// only caller uses `bounded(1)` as a oneshot rendezvous).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                q = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) 128 bytes so neighbouring
    /// values never share a cache line.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in cache-line padding.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use super::utils::CachePadded;
    use std::thread;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1000 {
            assert_eq!(rx.recv(), Ok(i));
        }
        t.join().unwrap();
    }

    #[test]
    fn cache_padded_layout() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<u8>>().is_multiple_of(64));
        let mut p = CachePadded::new(5u64);
        *p += 1;
        assert_eq!(*p, 6);
    }
}
