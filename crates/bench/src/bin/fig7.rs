//! **Fig. 7** — "Detailed Timing of GTS and Analytics. GTS runs with 128
//! MPI processes on Smoky": per-step phase breakdown (Sim. Cycle1, Sim.
//! Cycle2, I/O, Analysis, Idle) for the three cases.
//!
//! Run: `cargo run --release -p bench --bin fig7`

use dessim::gts_fig7_cases;
use machine::smoky;

fn main() {
    let machine = smoky();
    let rows = gts_fig7_cases(&machine);
    println!("Fig. 7 — GTS detailed timing, 128 MPI processes on Smoky (seconds per output step)");
    println!(
        "{:<52} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "case", "cycle1", "cycle2", "I/O", "analysis", "idle"
    );
    for (label, c1, c2, io, ana, idle) in &rows {
        println!("{label:<52} {c1:>9.2} {c2:>9.2} {io:>8.3} {ana:>9.2} {idle:>8.2}");
    }

    let helper_total = rows[0].1 + rows[0].2 + rows[0].3;
    let inline_total = rows[1].1 + rows[1].2 + rows[1].4;
    let solo3_total = rows[2].1 + rows[2].2;
    println!("\nderived observations (paper §IV.A):");
    println!(
        "  inline analysis weighs {:.1}% of GTS runtime (paper: 23.6%)",
        rows[1].4 / inline_total * 100.0
    );
    println!(
        "  helper-core sim cycles are {:.1}% longer than solo 3-thread cycles (paper: ~4.1%)",
        (rows[0].1 / rows[2].1 - 1.0) * 100.0
    );
    println!(
        "  helper-core step I/O is {:.2}% of the step (paper: 'nearly invisible')",
        rows[0].3 / helper_total * 100.0
    );
    println!(
        "  analytics idle fraction on the helper core: {:.0}% (paper: 67%)",
        rows[0].5 / helper_total * 100.0
    );
    println!(
        "  offloading wins: helper-core step {helper_total:.1}s vs inline step {inline_total:.1}s \
         (solo 3-thread: {solo3_total:.1}s)"
    );
}
