//! The §III.A performance and cost metrics.

use machine::MachineModel;

use crate::graph::CommGraph;
use crate::PlacementPlan;

/// "Total CPU Hours: the total nodes used multiplied by the total
/// execution time (in units of hours). This metric measures the cost of a
/// run, as supercomputing centers commonly charge users with the CPU hours
/// consumed by their jobs."
pub fn cpu_hours(nodes_used: usize, total_execution_time_s: f64) -> f64 {
    nodes_used as f64 * total_execution_time_s / 3600.0
}

/// Where a plan's bytes move.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MovementVolume {
    /// Bytes crossing the interconnect.
    pub inter_node: f64,
    /// Bytes between NUMA domains of one node.
    pub cross_numa: f64,
    /// Bytes within one NUMA domain (shared L3).
    pub intra_numa: f64,
}

impl MovementVolume {
    /// All on-node bytes.
    pub fn intra_node(&self) -> f64 {
        self.cross_numa + self.intra_numa
    }

    /// Total bytes moved.
    pub fn total(&self) -> f64 {
        self.inter_node + self.cross_numa + self.intra_numa
    }
}

/// Classify every edge's bytes by where its endpoints landed.
pub fn movement_volume(
    graph: &CommGraph,
    plan: &PlacementPlan,
    machine: &MachineModel,
) -> MovementVolume {
    let mut out = MovementVolume::default();
    for u in 0..graph.len() {
        for (v, w) in graph.neighbors(u) {
            if v <= u {
                continue;
            }
            let lu = machine.node.location_of(plan.core_of_vertex[u]);
            let lv = machine.node.location_of(plan.core_of_vertex[v]);
            if !lu.same_node(&lv) {
                out.inter_node += w;
            } else if !lu.same_numa(&lv) {
                out.cross_numa += w;
            } else {
                out.intra_numa += w;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{data_aware_mapping, topology_aware};
    use machine::smoky;

    #[test]
    fn cpu_hours_units() {
        assert_eq!(cpu_hours(10, 3600.0), 10.0);
        assert_eq!(cpu_hours(4, 900.0), 1.0);
    }

    #[test]
    fn helper_core_placement_cuts_internode_volume() {
        // The paper's §IV.A claim: helper-core/inline placement avoids
        // moving particle data through the interconnect (~90% less
        // inter-node volume than staging).
        let m = smoky();
        let g = CommGraph::coupled(24, 4, 50_000.0, 8, 110_000_000.0, 100_000.0);
        let plan = topology_aware(&g, &m, 2);
        let vol = movement_volume(&g, &plan, &m);
        assert!(
            vol.inter_node < 0.2 * vol.total(),
            "inter-node {} of total {}",
            vol.inter_node,
            vol.total()
        );
    }

    #[test]
    fn volume_totals_match_graph() {
        let m = smoky();
        let g = CommGraph::coupled(12, 4, 100.0, 4, 1000.0, 10.0);
        let plan = data_aware_mapping(&g, &m, 1);
        let vol = movement_volume(&g, &plan, &m);
        assert!((vol.total() - g.total_weight()).abs() < 1e-6);
        // Single node: nothing can cross the interconnect.
        assert_eq!(vol.inter_node, 0.0);
    }
}
