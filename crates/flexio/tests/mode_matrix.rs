//! The Sync/Async × batching 2×2 matrix over the MxN redistribution
//! pattern: all four mode combinations must deliver bit-identical arrays,
//! differing only in their message accounting (batching collapses data
//! messages; sync mode adds per-pair acknowledgements).

mod common;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::{block_1d, couple};
use flexio::{StreamHints, WriteMode};

const STEPS: u64 = 3;
const NVARS: u64 = 5;

/// One matrix cell: run 3 writers × 2 readers moving 5 variables for
/// 3 steps; returns (data_msgs, ack_msgs, every array every reader read).
fn run_cell(write_mode: WriteMode, batching: bool) -> (u64, u64, Vec<Vec<Vec<f64>>>) {
    let hints = StreamHints { write_mode, batching, ..StreamHints::default() };
    let (links, arrays) = couple(
        3,
        2,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                for v in 0..NVARS {
                    let data: Vec<f64> = (0..4)
                        .map(|i| (v * 1000 + step * 100 + rank as u64 * 4 + i) as f64)
                        .collect();
                    w.write(&format!("v{v}"), block_1d(rank as u64 * 4, data, 12));
                }
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        |mut r, rank| {
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            for v in 0..NVARS {
                r.subscribe(&format!("v{v}"), Selection::GlobalBox(my_box.clone()));
            }
            let mut out = Vec::new();
            while let StepStatus::Step(step) = r.begin_step() {
                for v in 0..NVARS {
                    let val =
                        r.read(&format!("v{v}"), &Selection::GlobalBox(my_box.clone())).unwrap();
                    let VarValue::Block(b) = val else { panic!() };
                    for (i, &x) in b.data.as_f64().iter().enumerate() {
                        let g = rank as u64 * 6 + i as u64;
                        assert_eq!(x, (v * 1000 + step * 100 + g) as f64);
                    }
                    out.push(b.data.as_f64().to_vec());
                }
                r.end_step();
            }
            out
        },
    );
    let snap = links[0].counters.snapshot();
    (snap.3, snap.5, arrays)
}

#[test]
fn sync_async_batching_matrix_is_data_identical() {
    // Writer w owns [4w, 4w+4) of 12; reader r wants [6r, 6r+6). The
    // overlapping (writer, reader) pairs are w0→r0, w1→r0, w1→r1, w2→r1:
    // four data-bearing channels per step.
    const PAIRS: u64 = 4;
    let cells = [
        (WriteMode::Async, false),
        (WriteMode::Async, true),
        (WriteMode::Sync, false),
        (WriteMode::Sync, true),
    ];
    let mut reference: Option<Vec<Vec<Vec<f64>>>> = None;
    for (mode, batching) in cells {
        let (data_msgs, ack_msgs, arrays) = run_cell(mode, batching);

        // Message accounting per cell.
        let expected_data = if batching { PAIRS * STEPS } else { PAIRS * STEPS * NVARS };
        assert_eq!(data_msgs, expected_data, "{mode:?} batching={batching}: data message count");
        let expected_acks = if mode == WriteMode::Sync { PAIRS * STEPS } else { 0 };
        assert_eq!(ack_msgs, expected_acks, "{mode:?} batching={batching}: ack count");

        // Data identical across the whole matrix.
        match &reference {
            None => reference = Some(arrays),
            Some(reference) => assert_eq!(
                reference, &arrays,
                "{mode:?} batching={batching} must deliver the same bytes"
            ),
        }
    }
}
