//! Architecture trees: the machine abstraction the placement algorithms map
//! process graphs onto.
//!
//! The paper models the target machine as a tree (§III.B.2–3): in *holistic
//! placement* it is a two-level tree (cores of the same node are siblings,
//! cheaper to talk to than cores of other nodes); in *node-topology-aware
//! placement* the tree gains a NUMA/cache level so that cores sharing an L3
//! are cheapest of all. The communication cost between two cores is the
//! per-byte cost of the deepest level that still contains both (their
//! lowest common ancestor).

use crate::node::CoreLocation;
use crate::MachineModel;

/// Index of a tree node in the flattened representation.
pub type TreeNodeId = usize;

/// Which machine abstraction to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchTreeKind {
    /// Root → compute nodes → cores (paper's holistic placement model).
    TwoLevel,
    /// Root → compute nodes → NUMA domains → cores (topology-aware model).
    NumaAware,
}

/// A flattened architecture tree over `nodes` compute nodes of a machine.
///
/// Leaves are cores, ordered by machine-linear index, so leaf `i` is core
/// `i % cores_per_node` of compute node `i / cores_per_node`.
#[derive(Debug, Clone)]
pub struct ArchTree {
    kind: ArchTreeKind,
    parent: Vec<Option<TreeNodeId>>,
    children: Vec<Vec<TreeNodeId>>,
    depth: Vec<usize>,
    /// Per-byte communication cost (ns/byte) of a message whose endpoints'
    /// lowest common ancestor sits at this depth. `level_cost[0]` is the
    /// root (inter-node) cost.
    level_cost: Vec<f64>,
    /// Leaf tree-node ids indexed by machine-linear core index.
    leaf_ids: Vec<TreeNodeId>,
    /// Core location of each leaf, parallel to `leaf_ids`.
    leaf_locs: Vec<CoreLocation>,
}

impl ArchTree {
    /// Build the tree for the first `nodes` compute nodes of `machine`.
    pub fn build(machine: &MachineModel, nodes: usize, kind: ArchTreeKind) -> ArchTree {
        assert!(nodes >= 1, "need at least one compute node");
        assert!(
            nodes <= machine.num_nodes,
            "machine {} only has {} nodes (asked for {nodes})",
            machine.name,
            machine.num_nodes
        );
        let np = &machine.node;
        // Costs in ns/byte: inverse of the relevant sustained bandwidth.
        let inter_node = 1e9 / machine.interconnect.link_bw;
        let cross_numa = 1e9 / np.remote_copy_bw;
        let intra_numa = 1e9 / np.local_copy_bw;
        let level_cost = match kind {
            // Two-level: everything on-node costs the same (use the blended
            // on-node copy cost); crossing the root costs the network.
            ArchTreeKind::TwoLevel => vec![inter_node, (cross_numa + intra_numa) / 2.0],
            ArchTreeKind::NumaAware => vec![inter_node, cross_numa, intra_numa],
        };

        let mut tree = ArchTree {
            kind,
            parent: vec![None],
            children: vec![Vec::new()],
            depth: vec![0],
            level_cost,
            leaf_ids: Vec::new(),
            leaf_locs: Vec::new(),
        };
        let root = 0;
        for node in 0..nodes {
            let node_id = tree.add_child(root);
            match kind {
                ArchTreeKind::TwoLevel => {
                    for loc in np.cores_of_node(node) {
                        let leaf = tree.add_child(node_id);
                        tree.leaf_ids.push(leaf);
                        tree.leaf_locs.push(loc);
                    }
                }
                ArchTreeKind::NumaAware => {
                    for numa in 0..np.numa_domains {
                        let numa_id = tree.add_child(node_id);
                        for core in 0..np.cores_per_numa {
                            let leaf = tree.add_child(numa_id);
                            tree.leaf_ids.push(leaf);
                            tree.leaf_locs.push(CoreLocation { node, numa, core });
                        }
                    }
                }
            }
        }
        tree
    }

    fn add_child(&mut self, parent: TreeNodeId) -> TreeNodeId {
        let id = self.parent.len();
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.depth.push(self.depth[parent] + 1);
        self.children[parent].push(id);
        id
    }

    /// Which abstraction this tree encodes.
    pub fn kind(&self) -> ArchTreeKind {
        self.kind
    }

    /// Number of leaves (cores).
    pub fn num_leaves(&self) -> usize {
        self.leaf_ids.len()
    }

    /// Core location of leaf `leaf` (machine-linear core index).
    pub fn leaf_location(&self, leaf: usize) -> CoreLocation {
        self.leaf_locs[leaf]
    }

    /// Tree-node id of leaf `leaf`.
    pub fn leaf_id(&self, leaf: usize) -> TreeNodeId {
        self.leaf_ids[leaf]
    }

    /// Root node id.
    pub fn root(&self) -> TreeNodeId {
        0
    }

    /// Children of an internal node.
    pub fn children(&self, id: TreeNodeId) -> &[TreeNodeId] {
        &self.children[id]
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: TreeNodeId) -> usize {
        self.depth[id]
    }

    /// All leaf indices (machine-linear core indices) under subtree `id`.
    pub fn leaves_under(&self, id: TreeNodeId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if self.children[n].is_empty() {
                // Leaf: recover its machine-linear index.
                if let Ok(idx) = self.leaf_ids.binary_search(&n) {
                    out.push(idx);
                }
            } else {
                stack.extend(self.children[n].iter().rev());
            }
        }
        out.sort_unstable();
        out
    }

    /// Per-byte cost (ns/byte) of communication whose endpoints' lowest
    /// common ancestor sits at `depth`.
    pub fn cost_at_depth(&self, depth: usize) -> f64 {
        let idx = depth.min(self.level_cost.len() - 1);
        self.level_cost[idx]
    }

    /// Per-byte communication cost between two leaves (machine-linear core
    /// indices): the cost at their lowest common ancestor's depth.
    pub fn comm_cost(&self, leaf_a: usize, leaf_b: usize) -> f64 {
        if leaf_a == leaf_b {
            return 0.0;
        }
        let lca_depth = self.lca_depth(self.leaf_ids[leaf_a], self.leaf_ids[leaf_b]);
        self.cost_at_depth(lca_depth)
    }

    fn lca_depth(&self, mut a: TreeNodeId, mut b: TreeNodeId) -> usize {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("non-root has parent");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("non-root has parent");
        }
        while a != b {
            a = self.parent[a].expect("non-root has parent");
            b = self.parent[b].expect("non-root has parent");
        }
        self.depth[a]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::smoky;

    #[test]
    fn two_level_tree_shape() {
        let m = smoky();
        let t = m.two_level_tree(2);
        assert_eq!(t.num_leaves(), 32);
        assert_eq!(t.children(t.root()).len(), 2);
        // Any two cores on the same node have the same (cheap) cost.
        let on_node = t.comm_cost(0, 15);
        let cross_node = t.comm_cost(0, 16);
        assert!(on_node < cross_node);
        // Two-level tree cannot distinguish NUMA domains.
        assert_eq!(t.comm_cost(0, 1), t.comm_cost(0, 15));
    }

    #[test]
    fn numa_tree_distinguishes_domains() {
        let m = smoky();
        let t = m.topology_tree(2);
        assert_eq!(t.num_leaves(), 32);
        let same_numa = t.comm_cost(0, 3); // cores 0..4 share NUMA 0
        let cross_numa = t.comm_cost(0, 4); // core 4 is NUMA 1
        let cross_node = t.comm_cost(0, 16);
        assert!(same_numa < cross_numa, "{same_numa} !< {cross_numa}");
        assert!(cross_numa < cross_node);
    }

    #[test]
    fn self_cost_is_zero() {
        let m = smoky();
        let t = m.topology_tree(1);
        assert_eq!(t.comm_cost(5, 5), 0.0);
    }

    #[test]
    fn leaves_under_subtrees() {
        let m = smoky();
        let t = m.topology_tree(2);
        let all = t.leaves_under(t.root());
        assert_eq!(all, (0..32).collect::<Vec<_>>());
        let first_node = t.children(t.root())[0];
        assert_eq!(t.leaves_under(first_node), (0..16).collect::<Vec<_>>());
        let first_numa = t.children(first_node)[0];
        assert_eq!(t.leaves_under(first_numa), (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_locations_are_linear() {
        let m = smoky();
        let t = m.topology_tree(2);
        assert_eq!(t.leaf_location(0), CoreLocation { node: 0, numa: 0, core: 0 });
        assert_eq!(t.leaf_location(17), CoreLocation { node: 1, numa: 0, core: 1 });
        for i in 0..32 {
            assert_eq!(m.node.linear_index(t.leaf_location(i)), i);
        }
    }
}
