//! Fault-layer integration: the deterministic fault wrappers composed
//! with each real transport (in-process, shared-memory FastForward queue,
//! simulated RDMA fabric), including concurrent producer/consumer use.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use evpath::transport::{inproc_pair, NetTransport, ShmTransport};
use evpath::{BoxedReceiver, BoxedSender, FaultPlan, FaultSpec};
use machine::InterconnectParams;
use netsim::NetSim;

fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    let mut p = FaultPlan::new(seed);
    p.set_default(FaultSpec { drop_per_mille: 200, dup_per_mille: 200, ..Default::default() });
    Arc::new(p)
}

fn send_ordinals(tx: &mut BoxedSender, n: u64) {
    for i in 0..n {
        tx.send(&i.to_le_bytes());
    }
}

fn drain(rx: &mut BoxedReceiver) -> Vec<u64> {
    let mut out = Vec::new();
    while let Some(m) = rx.try_recv() {
        out.push(u64::from_le_bytes(m.try_into().expect("8-byte ordinal")));
    }
    out
}

#[test]
fn fault_schedule_is_transport_independent() {
    // The wrapper draws decisions from (seed, label, ordinal) only — so
    // the exact same messages survive whether the bytes ride an in-process
    // channel or the shared-memory queue.
    let run = |make: fn() -> (BoxedSender, BoxedReceiver)| {
        let plan = chaos_plan(97);
        let (tx, mut rx) = make();
        let mut tx = plan.wrap_sender("data:0->0", tx);
        send_ordinals(&mut tx, 100);
        drop(tx);
        (drain(&mut rx), plan.counters().snapshot())
    };
    let (inproc, c_inproc) = run(inproc_pair);
    // A deep queue so the single-threaded sender never blocks on a full
    // ring (the shm queue backpressures by design).
    let (shm, c_shm) = run(|| ShmTransport::pair(256, 64));
    assert_eq!(inproc, shm, "identical survivors on both transports");
    assert_eq!(c_inproc, c_shm, "identical fault counts on both transports");
    assert!(c_inproc.0 > 0 && c_inproc.1 > 0, "chaos actually fired: {c_inproc:?}");
}

#[test]
fn concurrent_chaos_over_bounded_shm_queue_loses_only_dropped_messages() {
    // A real producer/consumer pair over the bounded (64-entry) queue:
    // the receiver must end up with exactly `sent − dropped + duplicated`
    // messages, every one of them a message that was actually sent.
    const N: u64 = 500;
    let plan = chaos_plan(12345);
    let (tx, mut rx) = ShmTransport::pair(64, 64);
    let mut tx = plan.wrap_sender("data:0->1", tx);
    let sender = thread::spawn(move || send_ordinals(&mut tx, N));
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        got.extend(drain(&mut rx));
        if sender.is_finished() {
            got.extend(drain(&mut rx));
            break;
        }
        assert!(Instant::now() < deadline, "sender wedged on the bounded queue");
        thread::yield_now();
    }
    sender.join().unwrap();
    got.extend(drain(&mut rx));
    let (dropped, duplicated, ..) = plan.counters().snapshot();
    assert_eq!(got.len() as u64, N - dropped + duplicated);
    assert!(dropped > 0 && duplicated > 0, "chaos fired");
    assert!(got.iter().all(|&o| o < N), "nothing invented");
}

#[test]
fn faults_compose_with_the_rdma_fabric() {
    // Cross-node channel on the simulated interconnect, faults on top.
    let net = NetSim::new(InterconnectParams::gemini(), 2);
    let plan = chaos_plan(7);
    let (tx, mut rx) = NetTransport::pair(&net, 0, 1);
    let mut tx = plan.wrap_sender("data:0->1", tx);
    send_ordinals(&mut tx, 100);
    drop(tx);
    let got = drain(&mut rx);
    let (dropped, duplicated, ..) = plan.counters().snapshot();
    assert_eq!(got.len() as u64, 100 - dropped + duplicated);
    assert!(dropped > 0, "drops scheduled for this seed must fire over RDMA too");
}

#[test]
fn deaf_receiver_swallows_the_tail_over_shm() {
    let mut p = FaultPlan::new(9);
    p.set("data", FaultSpec { crash_receiver_after: Some(3), ..Default::default() });
    let plan = Arc::new(p);
    let (mut tx, rx) = ShmTransport::pair(16, 64);
    let mut rx = plan.wrap_receiver("data:0->0", rx);
    send_ordinals(&mut tx, 10);
    let mut alive = Vec::new();
    while let Some(m) = rx.try_recv() {
        alive.push(u64::from_le_bytes(m.try_into().unwrap()));
    }
    assert_eq!(alive, vec![0, 1, 2], "exactly the pre-crash prefix is delivered");
    // Keep polling: the corpse keeps consuming so the queue drains anyway.
    for _ in 0..20 {
        assert!(rx.try_recv().is_none());
    }
    assert_eq!(plan.counters().snapshot().5, 7, "the tail is counted as deaf receives");
}
