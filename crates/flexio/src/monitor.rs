//! Performance monitoring (paper §II.G).
//!
//! "There are measurement points at all levels of the FlexIO software
//! stack to gather a variety of information, including the timing of data
//! movement and DC Plug-in execution, as well as transferred data volumes.
//! Dynamic memory allocation points within FlexIO are also instrumented
//! [...] For offline performance tuning, monitoring information can be
//! dumped to trace files [...] For runtime management, monitoring data
//! captured from the simulation side can be gathered online and
//! transferred to the analytics side."

use std::sync::Arc;
use std::time::Instant;

use evpath::{FieldValue, Record};
use parking_lot::Mutex;

/// What a measurement point observed.
///
/// Non-exhaustive: new measurement points are added as the middleware
/// grows (most recently [`MonitorEvent::StepSeal`] for the elastic
/// controller), and downstream consumers must tolerate variants they do
/// not know. Relay sinks forward records with unrecognised event names
/// into the named-aggregate table (see [`PerfMonitor::record_named`])
/// instead of dropping them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MonitorEvent {
    /// One data message sent (bytes on the wire).
    DataSend,
    /// One data message received.
    DataRecv,
    /// A handshake step executed.
    Handshake,
    /// A DC plug-in executed on a chunk.
    PluginExec,
    /// A buffer allocation inside the movement path.
    Allocation,
    /// A synchronous-mode wait for acknowledgements.
    SyncWait,
    /// A pub/sub step delivered to one reader group.
    PubSubDeliver,
    /// A pub/sub step spilled to (or replayed from) a BP segment.
    PubSubSpill,
    /// Rows entering a query's filter (`bytes` = row count).
    QueryRowsIn,
    /// Rows surviving into a query's output (`bytes` = row count).
    QueryRowsOut,
    /// Payload bytes filtered writer-side before the transport.
    QueryBytesPushed,
    /// Payload bytes that never crossed the transport thanks to
    /// writer-side pushdown (dropped rows × element width).
    QueryBytesSaved,
    /// A writer sealed a step. `nanos` is the gap since the previous
    /// seal — the live estimate of the simulation's I/O interval that the
    /// elastic controller feeds into the holistic allocation formula.
    StepSeal,
}

impl MonitorEvent {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            MonitorEvent::DataSend => "data_send",
            MonitorEvent::DataRecv => "data_recv",
            MonitorEvent::Handshake => "handshake",
            MonitorEvent::PluginExec => "plugin_exec",
            MonitorEvent::Allocation => "allocation",
            MonitorEvent::SyncWait => "sync_wait",
            MonitorEvent::PubSubDeliver => "pubsub_deliver",
            MonitorEvent::PubSubSpill => "pubsub_spill",
            MonitorEvent::QueryRowsIn => "query_rows_in",
            MonitorEvent::QueryRowsOut => "query_rows_out",
            MonitorEvent::QueryBytesPushed => "query_bytes_pushed",
            MonitorEvent::QueryBytesSaved => "query_bytes_saved",
            MonitorEvent::StepSeal => "step_seal",
        }
    }
}

#[derive(Debug, Clone)]
struct Sample {
    event: MonitorEvent,
    step: u64,
    rank: usize,
    bytes: u64,
    nanos: u64,
}

/// Exact running aggregates per event class (never evicted).
#[derive(Debug, Default, Clone, Copy)]
struct Aggregate {
    count: u64,
    bytes: u64,
    nanos: u64,
}

/// Detailed samples retained for per-step series and trace dumps. Bounded:
/// a production-length coupled run records per message per step, and an
/// unbounded store would be a slow leak over the multi-hour runs the paper
/// targets. Aggregate queries stay exact; windowed queries (per-step
/// series, trace dumps) see the most recent `capacity` samples.
const DEFAULT_SAMPLE_CAPACITY: usize = 100_000;

#[derive(Default)]
struct Inner {
    samples: std::collections::VecDeque<Sample>,
    aggregates: [Aggregate; 13],
    /// Aggregates for event names this build does not know — a newer
    /// relay publishing through an older sink. Never dropped, so the
    /// counters survive a version skew and can be inspected by name.
    named: Vec<(String, Aggregate)>,
    epoch: Option<Instant>,
}

fn event_index(event: MonitorEvent) -> usize {
    match event {
        MonitorEvent::DataSend => 0,
        MonitorEvent::DataRecv => 1,
        MonitorEvent::Handshake => 2,
        MonitorEvent::PluginExec => 3,
        MonitorEvent::Allocation => 4,
        MonitorEvent::SyncWait => 5,
        MonitorEvent::PubSubDeliver => 6,
        MonitorEvent::PubSubSpill => 7,
        MonitorEvent::QueryRowsIn => 8,
        MonitorEvent::QueryRowsOut => 9,
        MonitorEvent::QueryBytesPushed => 10,
        MonitorEvent::QueryBytesSaved => 11,
        MonitorEvent::StepSeal => 12,
    }
}

/// Shared monitor; cloning shares the sample store.
#[derive(Clone, Default)]
pub struct PerfMonitor {
    inner: Arc<Mutex<Inner>>,
}

impl PerfMonitor {
    /// Fresh monitor.
    pub fn new() -> PerfMonitor {
        PerfMonitor::default()
    }

    /// Record one event with its payload size and duration.
    pub fn record(&self, event: MonitorEvent, step: u64, rank: usize, bytes: u64, nanos: u64) {
        let mut inner = self.inner.lock();
        inner.epoch.get_or_insert_with(Instant::now);
        let agg = &mut inner.aggregates[event_index(event)];
        agg.count += 1;
        agg.bytes += bytes;
        agg.nanos += nanos;
        if inner.samples.len() >= DEFAULT_SAMPLE_CAPACITY {
            inner.samples.pop_front();
        }
        inner.samples.push_back(Sample { event, step, rank, bytes, nanos });
    }

    /// Record one event under a raw name — the forward-compatibility
    /// path a relay sink takes when a record arrives with an event name
    /// this build has no [`MonitorEvent`] variant for. The counters land
    /// in a by-name aggregate table instead of being dropped.
    pub fn record_named(&self, name: &str, bytes: u64, nanos: u64) {
        let mut inner = self.inner.lock();
        inner.epoch.get_or_insert_with(Instant::now);
        let idx = match inner.named.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                inner.named.push((name.to_string(), Aggregate::default()));
                inner.named.len() - 1
            }
        };
        let agg = &mut inner.named[idx].1;
        agg.count += 1;
        agg.bytes += bytes;
        agg.nanos += nanos;
    }

    /// Aggregate `(count, bytes, nanos)` for a by-name event recorded via
    /// [`PerfMonitor::record_named`]; `None` if the name was never seen.
    pub fn named(&self, name: &str) -> Option<(u64, u64, u64)> {
        self.inner
            .lock()
            .named
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| (a.count, a.bytes, a.nanos))
    }

    /// Every by-name event this monitor has absorbed, in first-seen order.
    pub fn named_events(&self) -> Vec<String> {
        self.inner.lock().named.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Time a closure and record it.
    pub fn timed<T>(
        &self,
        event: MonitorEvent,
        step: u64,
        rank: usize,
        bytes: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let start = Instant::now();
        let out = f();
        self.record(event, step, rank, bytes, start.elapsed().as_nanos() as u64);
        out
    }

    /// Total bytes recorded for an event class (exact over the whole run).
    pub fn total_bytes(&self, event: MonitorEvent) -> u64 {
        self.inner.lock().aggregates[event_index(event)].bytes
    }

    /// Total nanoseconds recorded for an event class (exact).
    pub fn total_nanos(&self, event: MonitorEvent) -> u64 {
        self.inner.lock().aggregates[event_index(event)].nanos
    }

    /// Number of samples of an event class (exact).
    pub fn count(&self, event: MonitorEvent) -> u64 {
        self.inner.lock().aggregates[event_index(event)].count
    }

    /// Dump the retained trace window as self-describing records, one per
    /// sample (the "dumped to trace files" path; the caller decides the
    /// sink — and should dump periodically on long runs, since only the
    /// most recent samples are retained).
    pub fn dump_trace(&self) -> Vec<Record> {
        self.inner
            .lock()
            .samples
            .iter()
            .map(|s| {
                Record::new()
                    .with("event", FieldValue::Str(s.event.name().to_string()))
                    .with("step", FieldValue::U64(s.step))
                    .with("rank", FieldValue::U64(s.rank as u64))
                    .with("bytes", FieldValue::U64(s.bytes))
                    .with("nanos", FieldValue::U64(s.nanos))
            })
            .collect()
    }

    /// Per-step received-bytes series for one rank over the retained
    /// sample window — the online feed a runtime manager uses for
    /// placement decisions (§II.G).
    pub fn bytes_per_step(&self, event: MonitorEvent, rank: usize) -> Vec<(u64, u64)> {
        let inner = self.inner.lock();
        let mut per_step: Vec<(u64, u64)> = Vec::new();
        for s in inner.samples.iter().filter(|s| s.event == event && s.rank == rank) {
            match per_step.iter_mut().find(|(st, _)| *st == s.step) {
                Some((_, b)) => *b += s.bytes,
                None => per_step.push((s.step, s.bytes)),
            }
        }
        per_step.sort_by_key(|&(st, _)| st);
        per_step
    }

    /// Per-step duration series for one rank over the retained sample
    /// window — for [`MonitorEvent::StepSeal`] this is the live
    /// inter-step interval the elastic controller converges on.
    pub fn nanos_per_step(&self, event: MonitorEvent, rank: usize) -> Vec<(u64, u64)> {
        let inner = self.inner.lock();
        let mut per_step: Vec<(u64, u64)> = Vec::new();
        for s in inner.samples.iter().filter(|s| s.event == event && s.rank == rank) {
            match per_step.iter_mut().find(|(st, _)| *st == s.step) {
                Some((_, n)) => *n += s.nanos,
                None => per_step.push((s.step, s.nanos)),
            }
        }
        per_step.sort_by_key(|&(st, _)| st);
        per_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let m = PerfMonitor::new();
        m.record(MonitorEvent::DataSend, 0, 1, 1000, 50);
        m.record(MonitorEvent::DataSend, 1, 1, 2000, 70);
        m.record(MonitorEvent::DataRecv, 0, 2, 1000, 60);
        assert_eq!(m.total_bytes(MonitorEvent::DataSend), 3000);
        assert_eq!(m.total_nanos(MonitorEvent::DataSend), 120);
        assert_eq!(m.count(MonitorEvent::DataRecv), 1);
        assert_eq!(m.count(MonitorEvent::PluginExec), 0);
    }

    #[test]
    fn timed_measures() {
        let m = PerfMonitor::new();
        let v = m.timed(MonitorEvent::PluginExec, 3, 0, 10, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(m.total_nanos(MonitorEvent::PluginExec) >= 1_000_000);
    }

    #[test]
    fn trace_dump_is_decodable() {
        let m = PerfMonitor::new();
        m.record(MonitorEvent::Handshake, 5, 3, 0, 123);
        let trace = m.dump_trace();
        assert_eq!(trace.len(), 1);
        let r = Record::decode(&trace[0].encode()).unwrap();
        assert_eq!(r.get_str("event"), Some("handshake"));
        assert_eq!(r.get_u64("step"), Some(5));
        assert_eq!(r.get_u64("nanos"), Some(123));
    }

    #[test]
    fn named_aggregates_absorb_unknown_events() {
        let m = PerfMonitor::new();
        m.record_named("gpu_kernel", 100, 5);
        m.record_named("gpu_kernel", 200, 7);
        m.record_named("rdma_poll", 0, 1);
        assert_eq!(m.named("gpu_kernel"), Some((2, 300, 12)));
        assert_eq!(m.named("rdma_poll"), Some((1, 0, 1)));
        assert_eq!(m.named("never_seen"), None);
        assert_eq!(m.named_events(), vec!["gpu_kernel".to_string(), "rdma_poll".to_string()]);
    }

    #[test]
    fn seal_interval_series() {
        let m = PerfMonitor::new();
        m.record(MonitorEvent::StepSeal, 0, 0, 0, 1_000);
        m.record(MonitorEvent::StepSeal, 1, 0, 0, 2_000);
        m.record(MonitorEvent::StepSeal, 2, 0, 0, 4_000);
        assert_eq!(
            m.nanos_per_step(MonitorEvent::StepSeal, 0),
            vec![(0, 1_000), (1, 2_000), (2, 4_000)]
        );
    }

    #[test]
    fn per_step_series() {
        let m = PerfMonitor::new();
        for step in [0u64, 0, 1, 2, 2, 2] {
            m.record(MonitorEvent::DataRecv, step, 0, 10, 1);
        }
        m.record(MonitorEvent::DataRecv, 0, 9, 999, 1); // other rank
        assert_eq!(m.bytes_per_step(MonitorEvent::DataRecv, 0), vec![(0, 20), (1, 10), (2, 30)]);
    }
}
