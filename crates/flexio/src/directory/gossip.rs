//! Anti-entropy gossip between directory nodes.
//!
//! Each node periodically ships its **entire registry digest** — every
//! `(name, version, origin, contact token)` tuple, tombstones included —
//! to every peer over an ordinary `evpath` transport. Receivers merge
//! entry-by-entry under the `(version, origin)` order, so a digest is
//! idempotent and arbitrarily lossy delivery still converges: a frame
//! dropped by a [`FaultPlan`] is simply re-sent (in its next edition)
//! one round later. This is the classic anti-entropy trade — O(entries)
//! bytes per round per peer buys convergence without acks, retransmits
//! or membership agreement, which is exactly right for a registry whose
//! entries number in the thousands while lookups number in the millions.
//!
//! Contacts are in-process `Arc<LinkState>` handles and cannot cross a
//! byte transport, so the wire carries a cluster-wide **token** and every
//! node resolves tokens through the shared [`ContactTable`] — the
//! in-process stand-in for the serialized contact string a real
//! deployment would gossip.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use evpath::{BoxedReceiver, BoxedSender, FaultPlan};
use parking_lot::Mutex;

use crate::link::LinkState;

use super::shard::{ShardedDirectory, VersionedEntry};
use super::DirectoryError;

/// The serialized form of one contact: what a directory node hands out
/// when the endpoint lives in *another process*. `addr` is a connectable
/// socket address string (`tcp:host:port` / `uds:/path`); `meta` carries
/// endpoint-specific numbers (a writer endpoint ships its rank count and
/// packed core placements).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireContact {
    /// Connectable socket address (`tcp:host:port` / `uds:/path`).
    pub addr: String,
    /// Endpoint-specific payload (rank counts, packed cores, ...).
    pub meta: Vec<u64>,
}

/// Cluster-wide token → contact resolution (see module docs). Shared by
/// every node of one cluster. In-process contacts resolve to
/// `Arc<LinkState>` handles; cross-process contacts resolve to their
/// serialized [`WireContact`] form, which *can* cross a byte transport.
#[derive(Default)]
pub(crate) struct ContactTable {
    next: AtomicU64,
    by_token: Mutex<HashMap<u64, Arc<LinkState>>>,
    wire_by_token: Mutex<HashMap<u64, WireContact>>,
}

impl ContactTable {
    /// Intern a contact, returning its wire token (tokens start at 1;
    /// 0 means "no contact" on the wire).
    pub(crate) fn intern(&self, contact: &Arc<LinkState>) -> u64 {
        let token = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.by_token.lock().insert(token, Arc::clone(contact));
        token
    }

    fn resolve(&self, token: u64) -> Option<Arc<LinkState>> {
        self.by_token.lock().get(&token).cloned()
    }

    /// Store a serialized contact under a caller-chosen token (wire
    /// directory nodes namespace tokens by node id, so two nodes never
    /// mint the same one).
    pub(crate) fn put_wire(&self, token: u64, contact: WireContact) {
        self.wire_by_token.lock().insert(token, contact);
    }

    /// Resolve a token to its serialized contact.
    pub(crate) fn resolve_wire(&self, token: u64) -> Option<WireContact> {
        self.wire_by_token.lock().get(&token).cloned()
    }

    /// Every serialized contact this table knows, for gossip shipment.
    pub(crate) fn export_wire(&self) -> Vec<(u64, WireContact)> {
        let mut all: Vec<(u64, WireContact)> =
            self.wire_by_token.lock().iter().map(|(t, c)| (*t, c.clone())).collect();
        all.sort_by_key(|(t, _)| *t);
        all
    }
}

/// Counters of one node's gossip traffic.
#[derive(Debug, Default)]
pub struct GossipCounters {
    /// Anti-entropy rounds completed.
    pub rounds: AtomicU64,
    /// Digest frames sent to peers.
    pub frames_sent: AtomicU64,
    /// Digest frames received and decoded.
    pub frames_received: AtomicU64,
    /// Entries applied from peers (local entry was older or absent).
    pub entries_merged: AtomicU64,
    /// Frames that failed to decode and were discarded.
    pub corrupt_frames: AtomicU64,
}

impl GossipCounters {
    /// Snapshot as plain numbers `(rounds, frames_sent, frames_received,
    /// entries_merged, corrupt_frames)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.rounds.load(Ordering::Relaxed),
            self.frames_sent.load(Ordering::Relaxed),
            self.frames_received.load(Ordering::Relaxed),
            self.entries_merged.load(Ordering::Relaxed),
            self.corrupt_frames.load(Ordering::Relaxed),
        )
    }
}

/// One directory node: a sharded store plus the gossip plumbing that
/// replicates it. Lives in an `Arc` shared between the serve loop (a
/// reactor task) and the [`super::ReplicatedDirectory`] handles.
pub struct DirectoryNode {
    id: u64,
    pub(crate) store: ShardedDirectory,
    pub(crate) contacts: Arc<ContactTable>,
    /// Outbound digest channels, one per peer.
    peers: Mutex<Vec<BoxedSender>>,
    /// Inbound digest channels, one per peer.
    inboxes: Mutex<Vec<BoxedReceiver>>,
    alive: AtomicBool,
    counters: GossipCounters,
    /// Deterministic node-death schedule: with a fault plan installed, a
    /// `dirnode:<id>` spec's `crash_sender_after = Some(r)` kills this
    /// node after `r` gossip rounds.
    faults: Option<Arc<FaultPlan>>,
}

impl DirectoryNode {
    pub(crate) fn new(
        id: u64,
        shards: usize,
        contacts: Arc<ContactTable>,
        faults: Option<Arc<FaultPlan>>,
    ) -> DirectoryNode {
        DirectoryNode {
            id,
            store: ShardedDirectory::with_origin(shards, id),
            contacts,
            peers: Mutex::new(Vec::new()),
            inboxes: Mutex::new(Vec::new()),
            alive: AtomicBool::new(true),
            counters: GossipCounters::default(),
            faults,
        }
    }

    /// This node's id (its entry-origin stamp and fault-label suffix).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the node is still serving (a dead node answers nothing
    /// and gossips nothing; handles fail over).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Kill the node (tests and the fault schedule).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Gossip traffic counters.
    pub fn gossip_counters(&self) -> &GossipCounters {
        &self.counters
    }

    /// The node's local sharded store (per-shard counter access).
    pub fn store(&self) -> &ShardedDirectory {
        &self.store
    }

    pub(crate) fn add_peer_sender(&self, tx: BoxedSender) {
        self.peers.lock().push(tx);
    }

    pub(crate) fn add_peer_receiver(&self, rx: BoxedReceiver) {
        self.inboxes.lock().push(rx);
    }

    fn check_serving(&self) -> Result<(), DirectoryError> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(DirectoryError::Unavailable(format!("directory node {} is down", self.id)))
        }
    }

    /// Client registration against this node: intern the contact so the
    /// entry can cross the gossip wire, then insert locally. Replication
    /// to the other nodes is the serve loop's job.
    pub(crate) fn register(
        &self,
        name: &str,
        contact: Arc<LinkState>,
    ) -> Result<(), DirectoryError> {
        self.check_serving()?;
        let token = self.contacts.intern(&contact);
        self.store.register_local(name, contact, token).map(|_| ())
    }

    pub(crate) fn unregister(&self, name: &str) -> Result<bool, DirectoryError> {
        self.check_serving()?;
        Ok(self.store.unregister_local(name).is_some())
    }

    /// One anti-entropy round: drain peer digests into the store, then
    /// ship the (possibly updated) local digest to every peer. Returns
    /// `false` once the node is dead and the serve loop should exit.
    pub(crate) fn gossip_round(&self) -> bool {
        if !self.is_alive() {
            return false;
        }
        self.drain_inbound();
        let frame = encode_digest(self.id, &self.store.export());
        for tx in self.peers.lock().iter_mut() {
            tx.send(&frame);
            self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
        }
        let rounds = self.counters.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        // The deterministic node-death schedule rides the fault plan: the
        // round count plays the role the message ordinal plays for
        // transport crashes.
        if let Some(plan) = &self.faults {
            if let Some(after) = plan.spec_for(&format!("dirnode:{}", self.id)).crash_sender_after {
                if rounds >= after {
                    self.kill();
                }
            }
        }
        self.is_alive()
    }

    fn drain_inbound(&self) {
        let mut inboxes = self.inboxes.lock();
        for rx in inboxes.iter_mut() {
            while let Some(frame) = rx.try_recv() {
                match decode_digest(&frame) {
                    Some((_from, entries)) => {
                        self.counters.frames_received.fetch_add(1, Ordering::Relaxed);
                        for (name, version, origin, token) in entries {
                            let contact =
                                if token == 0 { None } else { self.contacts.resolve(token) };
                            if token != 0 && contact.is_none() {
                                // Unknown token: the interning node's
                                // table entry should exist cluster-wide;
                                // treat a miss as corruption, not a
                                // tombstone.
                                self.counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let applied = self
                                .store
                                .merge(&name, VersionedEntry { contact, version, origin, token });
                            if applied {
                                self.counters.entries_merged.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    None => {
                        self.counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------- wire form

/// Digest frame layout (all little-endian):
/// `magic "DGSP" · u64 sender id · u32 entry count · entries`, each entry
/// `u32 name length · name bytes · u64 version · u64 origin · u64 token`
/// (token 0 = tombstone).
const MAGIC: &[u8; 4] = b"DGSP";

pub(crate) fn encode_digest(from: u64, entries: &[(String, VersionedEntry)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + entries.len() * 48);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&from.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, e) in entries {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&e.version.to_le_bytes());
        buf.extend_from_slice(&e.origin.to_le_bytes());
        buf.extend_from_slice(&e.token.to_le_bytes());
    }
    buf
}

pub(crate) type DigestEntry = (String, u64, u64, u64);

pub(crate) fn decode_digest(frame: &[u8]) -> Option<(u64, Vec<DigestEntry>)> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = frame.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    if take(&mut at, 4)? != MAGIC {
        return None;
    }
    let from = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let name = String::from_utf8(take(&mut at, len)?.to_vec()).ok()?;
        let version = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        let origin = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        let token = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        entries.push((name, version, origin, token));
    }
    if at != frame.len() {
        return None;
    }
    Some((from, entries))
}

/// Contact-table frame layout (all little-endian):
/// `magic "CTB1" · u32 entry count · entries`, each entry
/// `u64 token · u32 addr length · addr bytes · u32 meta count · meta u64s`.
/// Cross-process directory nodes gossip this alongside the digest so a
/// token arriving from a peer is resolvable locally.
const CONTACT_MAGIC: &[u8; 4] = b"CTB1";

/// Encode a set of `(token, contact)` pairs for the gossip wire.
pub fn encode_contact_table(entries: &[(u64, WireContact)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + entries.len() * 48);
    buf.extend_from_slice(CONTACT_MAGIC);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (token, c) in entries {
        buf.extend_from_slice(&token.to_le_bytes());
        buf.extend_from_slice(&(c.addr.len() as u32).to_le_bytes());
        buf.extend_from_slice(c.addr.as_bytes());
        buf.extend_from_slice(&(c.meta.len() as u32).to_le_bytes());
        for m in &c.meta {
            buf.extend_from_slice(&m.to_le_bytes());
        }
    }
    buf
}

/// Decode a contact-table frame; `None` on any malformation (bad magic,
/// truncation, trailing bytes, non-UTF-8 address).
pub fn decode_contact_table(frame: &[u8]) -> Option<Vec<(u64, WireContact)>> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = frame.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    if take(&mut at, 4)? != CONTACT_MAGIC {
        return None;
    }
    let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let token = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        let alen = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let addr = String::from_utf8(take(&mut at, alen)?.to_vec()).ok()?;
        let mlen = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let mut meta = Vec::with_capacity(mlen.min(1024));
        for _ in 0..mlen {
            meta.push(u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?));
        }
        entries.push((token, WireContact { addr, meta }));
    }
    if at != frame.len() {
        return None;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_round_trips() {
        let entries = vec![
            (
                "run42/particles".to_string(),
                VersionedEntry { contact: None, version: 3, origin: 1, token: 9 },
            ),
            ("gone".to_string(), VersionedEntry { contact: None, version: 8, origin: 2, token: 0 }),
        ];
        let frame = encode_digest(7, &entries);
        let (from, decoded) = decode_digest(&frame).expect("well-formed frame");
        assert_eq!(from, 7);
        assert_eq!(
            decoded,
            vec![("run42/particles".to_string(), 3, 1, 9), ("gone".to_string(), 8, 2, 0)]
        );
    }

    #[test]
    fn garbage_frames_are_rejected() {
        assert!(decode_digest(b"").is_none());
        assert!(decode_digest(b"nope").is_none());
        let mut truncated = encode_digest(
            1,
            &[("x".to_string(), VersionedEntry { contact: None, version: 1, origin: 0, token: 0 })],
        );
        truncated.pop();
        assert!(decode_digest(&truncated).is_none());
        let mut trailing = encode_digest(1, &[]);
        trailing.push(0xFF);
        assert!(decode_digest(&trailing).is_none());
    }

    #[test]
    fn contact_table_round_trips() {
        let entries = vec![
            (
                (1u64 << 48) | 1,
                WireContact { addr: "tcp:127.0.0.1:45123".to_string(), meta: vec![4, 0, 1, 2, 3] },
            ),
            ((2u64 << 48) | 7, WireContact { addr: "uds:/tmp/x.sock".to_string(), meta: vec![] }),
        ];
        let frame = encode_contact_table(&entries);
        assert_eq!(decode_contact_table(&frame), Some(entries));
        assert_eq!(decode_contact_table(&encode_contact_table(&[])), Some(Vec::new()));
    }

    #[test]
    fn garbage_contact_tables_are_rejected() {
        assert!(decode_contact_table(b"").is_none());
        assert!(decode_contact_table(b"DGSP").is_none());
        let mut truncated = encode_contact_table(&[(
            3,
            WireContact { addr: "tcp:h:1".to_string(), meta: vec![9] },
        )]);
        truncated.pop();
        assert!(decode_contact_table(&truncated).is_none());
        let mut trailing = encode_contact_table(&[]);
        trailing.push(0);
        assert!(decode_contact_table(&trailing).is_none());
    }
}
