//! Placement tuning walkthrough (paper §III): run the three placement
//! algorithms on a GTS-like coupled workload, compare their modelled
//! communication costs and data-movement splits, then project Total
//! Execution Time for every placement option on the Smoky and Titan
//! models — a miniature of Figs. 6a/6b from one command.
//!
//! Run with: `cargo run --release --example placement_tuning`

use dessim::{gts_outcome, GtsScale, Placement};
use machine::{smoky, titan};
use placement::{
    allocate_sync, data_aware_mapping, holistic, movement_volume, topology_aware, AnalyticsScaling,
    CommGraph, PolicyKind,
};

fn main() {
    let m = smoky();

    // ---- resource binding: the three algorithms on a 2-node microcosm.
    println!("== resource binding (24 GTS + 8 analytics processes, 2 Smoky nodes) ==");
    let g = CommGraph::coupled(24, 4, 50_000.0, 8, 110_000_000.0, 100_000.0);
    let plans = [data_aware_mapping(&g, &m, 2), holistic(&g, &m, 2), topology_aware(&g, &m, 2)];
    println!(
        "{:<24} {:>14} {:>16} {:>16}",
        "policy", "modelled cost", "inter-node B", "intra-node B"
    );
    for plan in &plans {
        let vol = movement_volume(&g, plan, &m);
        println!(
            "{:<24} {:>14.3e} {:>16.0} {:>16.0}",
            format!("{:?}", plan.kind),
            plan.modelled_cost,
            vol.inter_node,
            vol.intra_node()
        );
    }

    // ---- resource allocation: match analytics to the generation rate.
    println!("\n== resource allocation (holistic, §III.B.2) ==");
    let scaling = AnalyticsScaling { serial_s: 0.9, parallel_s: 128.0 * 18.5 };
    for interval in [30.0, 62.0, 124.0] {
        match allocate_sync(&scaling, interval, 4096) {
            Some(n) => println!("I/O interval {interval:>6.1}s → {n} analytics processes"),
            None => println!("I/O interval {interval:>6.1}s → cannot keep up: switch offline"),
        }
    }

    // ---- projected Total Execution Time across placements and scales.
    for machine in [smoky(), titan()] {
        println!("\n== projected GTS Total Execution Time on {} ==", machine.name);
        let placements = [
            Placement::Inline,
            Placement::HelperCore(PolicyKind::DataAware),
            Placement::HelperCore(PolicyKind::Holistic),
            Placement::HelperCore(PolicyKind::TopologyAware),
            Placement::Staging(PolicyKind::TopologyAware),
            Placement::LowerBound,
        ];
        print!("{:<38}", "GTS cores:");
        let scales = [256usize, 512, 1024, 2048];
        for c in scales {
            print!("{c:>10}");
        }
        println!();
        for p in placements {
            print!("{:<38}", p.label());
            for cores in scales {
                let scale = GtsScale { machine: machine.clone(), sim_cores: cores, steps: 20 };
                let o = gts_outcome(&scale, p);
                print!("{:>10.0}", o.total_s);
            }
            println!();
        }
    }
    println!("\n(Seconds for 20 output steps; shapes mirror paper Fig. 6.)");
}
