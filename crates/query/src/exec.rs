//! Vectorized plan executor.
//!
//! Operators consume [`ArrayData`] chunk views directly — packed
//! zero-copy receive-buffer windows included — with per-dtype
//! monomorphic inner loops over the LE byte windows. No `make_owned()`
//! materialization happens on the read path: widening, masking and
//! gathering all read straight out of the shared buffer.
//!
//! Bit-exactness contract: every arithmetic step (widening to `f64`,
//! predicate evaluation, sequential aggregation in feed order) matches
//! the naive row-at-a-time oracle in [`crate::naive`] operation for
//! operation, so outputs digest identically.

use crate::expr::{CmpOp, Op, Program, MAX_DEPTH};
use crate::plan::{AggFunc, AggRow, Plan, PlanError, QueryOutput, StepRows};
use adios::ArrayData;
use evpath::ffs::PackedDtype;

/// One writer's chunk for one step: columns aligned with the plan's
/// selected variables (`plan.vars` order).
pub struct ChunkView<'a> {
    /// One entry per plan variable, in plan order.
    pub columns: Vec<&'a ArrayData>,
    /// True when the writer-side pushdown codelet already applied the
    /// plan's filter (the chunk arrived conditioned); the executor then
    /// skips re-filtering and trusts `rows_in` for the pre-filter count.
    pub pre_filtered: bool,
    /// Rows entering the filter: the original element count before any
    /// writer-side filtering.
    pub rows_in: u64,
}

impl<'a> ChunkView<'a> {
    /// An unconditioned chunk: the filter (if any) runs reader-side.
    pub fn raw(columns: Vec<&'a ArrayData>) -> ChunkView<'a> {
        let rows = columns.first().map_or(0, |c| c.len() as u64);
        ChunkView { columns, pre_filtered: false, rows_in: rows }
    }

    /// A chunk the writer-side codelet already filtered; `rows_in` is
    /// the pre-filter element count reported by the codelet.
    pub fn conditioned(columns: Vec<&'a ArrayData>, rows_in: u64) -> ChunkView<'a> {
        ChunkView { columns, pre_filtered: true, rows_in }
    }

    fn len(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }
}

/// Per-step throughput stats, fed into the query counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Rows entering the filter (writer-side original counts).
    pub rows_in: u64,
    /// Rows surviving into the output/aggregate.
    pub rows_out: u64,
}

// ---------------------------------------------------------------- columns

/// A typed, borrow-only view over one column's elements. Packed
/// variants read the LE wire bytes in place.
enum ColView<'a> {
    F64(&'a [f64]),
    U64(&'a [u64]),
    I64(&'a [i64]),
    U8(&'a [u8]),
    PackedF64(&'a [u8]),
    PackedU64(&'a [u8]),
    PackedI64(&'a [u8]),
    PackedU8(&'a [u8]),
}

impl<'a> ColView<'a> {
    fn of(data: &'a ArrayData) -> ColView<'a> {
        match data {
            ArrayData::F64(v) => ColView::F64(v),
            ArrayData::U64(v) => ColView::U64(v),
            ArrayData::I64(v) => ColView::I64(v),
            ArrayData::U8(v) => ColView::U8(v),
            ArrayData::Packed(p) => match p.dtype() {
                PackedDtype::F64 => ColView::PackedF64(p.bytes()),
                PackedDtype::U64 => ColView::PackedU64(p.bytes()),
                PackedDtype::I64 => ColView::PackedI64(p.bytes()),
                PackedDtype::U8 => ColView::PackedU8(p.bytes()),
            },
        }
    }

    /// Bulk-widen every element to `f64` into `out` (cleared first).
    /// Each arm is a monomorphic loop the compiler can vectorize; the
    /// packed arms decode straight from the LE wire bytes.
    fn widen_into(&self, out: &mut Vec<f64>) {
        out.clear();
        match self {
            ColView::F64(v) => out.extend_from_slice(v),
            ColView::U64(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColView::I64(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColView::U8(v) => out.extend(v.iter().map(|&x| f64::from(x))),
            ColView::PackedF64(b) => {
                out.extend(b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())))
            }
            ColView::PackedU64(b) => out.extend(
                b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap()) as f64),
            ),
            ColView::PackedI64(b) => out.extend(
                b.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().unwrap()) as f64),
            ),
            ColView::PackedU8(b) => out.extend(b.iter().map(|&x| f64::from(x))),
        }
    }

    fn fresh_output(&self) -> ArrayData {
        match self {
            ColView::F64(_) | ColView::PackedF64(_) => ArrayData::F64(Vec::new()),
            ColView::U64(_) | ColView::PackedU64(_) => ArrayData::U64(Vec::new()),
            ColView::I64(_) | ColView::PackedI64(_) => ArrayData::I64(Vec::new()),
            ColView::U8(_) | ColView::PackedU8(_) => ArrayData::U8(Vec::new()),
        }
    }

    /// Append rows where `mask` is set (all rows when `mask` is `None`)
    /// into `out`, stopping when `budget` (if any) runs out. Returns
    /// the number of rows appended. Per-dtype gather loops; the packed
    /// arms decode each kept element from the wire bytes.
    fn gather_into(
        &self,
        mask: Option<&[bool]>,
        out: &mut ArrayData,
        budget: &mut Option<u64>,
    ) -> u64 {
        #[inline]
        fn keep(mask: Option<&[bool]>, i: usize) -> bool {
            mask.is_none_or(|m| m[i])
        }
        #[inline]
        fn take(budget: &mut Option<u64>) -> bool {
            match budget {
                None => true,
                Some(0) => false,
                Some(b) => {
                    *b -= 1;
                    true
                }
            }
        }
        let mut appended = 0u64;
        macro_rules! gather_owned {
            ($src:expr, $dst:expr) => {{
                for (i, &x) in $src.iter().enumerate() {
                    if keep(mask, i) {
                        if !take(budget) {
                            break;
                        }
                        $dst.push(x);
                        appended += 1;
                    }
                }
            }};
        }
        macro_rules! gather_packed {
            ($bytes:expr, $dst:expr, $ty:ty) => {{
                for (i, c) in $bytes.chunks_exact(8).enumerate() {
                    if keep(mask, i) {
                        if !take(budget) {
                            break;
                        }
                        $dst.push(<$ty>::from_le_bytes(c.try_into().unwrap()));
                        appended += 1;
                    }
                }
            }};
        }
        match (self, out) {
            (ColView::F64(s), ArrayData::F64(d)) => gather_owned!(s, d),
            (ColView::U64(s), ArrayData::U64(d)) => gather_owned!(s, d),
            (ColView::I64(s), ArrayData::I64(d)) => gather_owned!(s, d),
            (ColView::U8(s), ArrayData::U8(d)) => gather_owned!(s, d),
            (ColView::PackedF64(s), ArrayData::F64(d)) => gather_packed!(s, d, f64),
            (ColView::PackedU64(s), ArrayData::U64(d)) => gather_packed!(s, d, u64),
            (ColView::PackedI64(s), ArrayData::I64(d)) => gather_packed!(s, d, i64),
            (ColView::PackedU8(s), ArrayData::U8(d)) => gather_owned!(s, d),
            _ => panic!("column dtype changed between chunks of the same variable"),
        }
        appended
    }
}

// --------------------------------------------------------------- aggregate

/// Sequential aggregate accumulator. `accumulate` is called once per
/// surviving row in feed order — the same order the naive oracle uses —
/// so `f64` results are bit-identical between the two executors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggState {
    func: AggFunc,
    sum: f64,
    min: f64,
    max: f64,
    count: u64,
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        AggState { func, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, count: 0 }
    }

    #[inline]
    pub(crate) fn accumulate(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    pub(crate) fn rows(&self) -> u64 {
        self.count
    }

    /// The aggregate value; empty windows report `0.0` (and `count`
    /// reports `0`), never a NaN or an infinity.
    pub(crate) fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        match self.func {
            AggFunc::Sum => self.sum,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Mean => self.sum / self.count as f64,
            AggFunc::Count => self.count as f64,
        }
    }
}

// ---------------------------------------------------------------- executor

/// Shared window bookkeeping (identical in both executors by
/// construction: the window boundary rule is pure arithmetic on step
/// numbers).
pub(crate) fn window_bounds(step: u64, window_steps: u64, first_step: u64) -> (u64, u64) {
    match step.checked_div(window_steps) {
        // window_steps == 0: one window spanning the whole stream,
        // bounds growing with input.
        None => (first_step, step),
        Some(idx) => (idx * window_steps, (idx + 1) * window_steps - 1),
    }
}

/// The vectorized executor: feed one step at a time, then [`Executor::finish`].
pub struct Executor {
    plan: Plan,
    program: Option<Program>,
    /// Column indexes the filter actually references (only these get
    /// widened into scratch buffers).
    referenced: Vec<usize>,
    agg: Option<(AggState, usize)>,
    rows: Vec<StepRows>,
    row_budget: Option<u64>,
    windows: Vec<AggRow>,
    current_window: Option<(u64, u64)>,
    first_step: Option<u64>,
    last_step: u64,
    // Reused scratch buffers, one widened f64 vector per plan column.
    scratch: Vec<Vec<f64>>,
    mask: Vec<bool>,
}

impl Executor {
    /// Validate the plan and build the executor.
    pub fn new(plan: Plan) -> Result<Executor, PlanError> {
        plan.validate()?;
        let program = plan.filter.as_ref().map(|f| Program::compile(f, &plan.vars));
        let referenced = plan
            .filter
            .as_ref()
            .map(|f| {
                f.columns()
                    .iter()
                    .map(|c| plan.vars.iter().position(|v| v == c).expect("validated"))
                    .collect()
            })
            .unwrap_or_default();
        let agg = plan.agg.as_ref().map(|(func, col)| {
            let idx = plan.vars.iter().position(|v| v == col).expect("validated");
            (AggState::new(*func), idx)
        });
        let row_budget =
            if plan.max_rows > 0 && agg.is_none() { Some(plan.max_rows) } else { None };
        let ncols = plan.vars.len();
        Ok(Executor {
            plan,
            program,
            referenced,
            agg,
            rows: Vec::new(),
            row_budget,
            windows: Vec::new(),
            current_window: None,
            first_step: None,
            last_step: 0,
            scratch: (0..ncols).map(|_| Vec::new()).collect(),
            mask: Vec::new(),
        })
    }

    /// The validated plan this executor runs.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Feed one step's chunks (all writers, in writer order). Steps
    /// must be fed in nondecreasing order.
    pub fn feed_step(&mut self, step: u64, chunks: &[ChunkView<'_>]) -> StepStats {
        self.roll_window(step);
        let mut stats = StepStats::default();
        let mut step_cols: Option<Vec<(String, ArrayData)>> = None;
        for chunk in chunks {
            debug_assert_eq!(chunk.columns.len(), self.plan.vars.len(), "chunk/plan arity");
            let n = chunk.len();
            stats.rows_in += chunk.rows_in;
            let views: Vec<ColView<'_>> = chunk.columns.iter().map(|c| ColView::of(c)).collect();

            // Build the survivor mask (None = all rows pass).
            let use_mask = if chunk.pre_filtered || self.program.is_none() {
                false
            } else {
                self.build_mask(&views, n);
                true
            };
            let mask = use_mask.then(|| &self.mask[..n]);

            if let Some((state, agg_idx)) = &mut self.agg {
                // Aggregate mode: sequential accumulation over the
                // widened aggregate column, feed order preserved.
                let idx = *agg_idx;
                let (head, tail) = self.scratch.split_at_mut(idx + 1);
                let buf = &mut head[idx];
                let _ = tail;
                views[idx].widen_into(buf);
                match mask {
                    None => {
                        for &v in buf.iter() {
                            state.accumulate(v);
                        }
                        stats.rows_out += n as u64;
                    }
                    Some(m) => {
                        for (i, &v) in buf.iter().enumerate() {
                            if m[i] {
                                state.accumulate(v);
                                stats.rows_out += 1;
                            }
                        }
                    }
                }
            } else {
                // Row mode: per-dtype gather of every selected column.
                let cols = step_cols.get_or_insert_with(|| {
                    self.plan
                        .vars
                        .iter()
                        .zip(&views)
                        .map(|(name, v)| (name.clone(), v.fresh_output()))
                        .collect()
                });
                // All columns must gather the same rows: snapshot the
                // budget and apply the per-column outcome once.
                let budget_before = self.row_budget;
                let mut appended = 0;
                for (ci, view) in views.iter().enumerate() {
                    let mut b = budget_before;
                    appended = view.gather_into(mask, &mut cols[ci].1, &mut b);
                    if ci + 1 == views.len() {
                        self.row_budget = b;
                    }
                }
                stats.rows_out += appended;
            }
        }
        if let Some(cols) = step_cols {
            self.rows.push(StepRows { step, columns: cols });
        }
        stats
    }

    /// Flush the last window and return the output.
    pub fn finish(mut self) -> QueryOutput {
        if self.agg.is_some() {
            self.flush_window();
            QueryOutput::Aggregates(std::mem::take(&mut self.windows))
        } else {
            QueryOutput::Rows(std::mem::take(&mut self.rows))
        }
    }

    fn build_mask(&mut self, views: &[ColView<'_>], n: usize) {
        let program = self.program.as_ref().expect("caller checked");
        for &ci in &self.referenced {
            views[ci].widen_into(&mut self.scratch[ci]);
        }
        self.mask.clear();
        self.mask.resize(n, false);
        // Fast path: the ubiquitous `col <op> literal` shape becomes a
        // single monomorphic compare loop per operator.
        if let [Op::PushCol(ci), Op::PushLit(lit), Op::Cmp(op)] = program.ops[..] {
            let col = &self.scratch[ci];
            macro_rules! cmp_loop {
                ($op:tt) => {
                    for i in 0..n {
                        self.mask[i] = col[i] $op lit;
                    }
                };
            }
            match op {
                CmpOp::Lt => cmp_loop!(<),
                CmpOp::Le => cmp_loop!(<=),
                CmpOp::Gt => cmp_loop!(>),
                CmpOp::Ge => cmp_loop!(>=),
                CmpOp::Eq => cmp_loop!(==),
                CmpOp::Ne => cmp_loop!(!=),
            }
            return;
        }
        // General path: evaluate the compiled program row by row over
        // the widened scratch columns.
        let mut row = vec![0.0f64; self.plan.vars.len().max(1)];
        debug_assert!(program.depth() <= MAX_DEPTH);
        for i in 0..n {
            for &ci in &self.referenced {
                row[ci] = self.scratch[ci][i];
            }
            self.mask[i] = program.eval_bool(&row);
        }
    }

    fn roll_window(&mut self, step: u64) {
        self.last_step = step;
        if self.first_step.is_none() {
            self.first_step = Some(step);
        }
        if self.agg.is_none() {
            return;
        }
        let bounds = window_bounds(step, self.plan.window_steps, self.first_step.unwrap());
        match self.current_window {
            None => self.current_window = Some(bounds),
            Some(cur) if self.plan.window_steps > 0 && bounds.0 != cur.0 => {
                self.flush_window();
                self.current_window = Some(bounds);
            }
            Some(_) if self.plan.window_steps == 0 => {
                // The whole-stream window's end tracks the last step.
                self.current_window = Some((self.first_step.unwrap(), step));
            }
            Some(_) => {}
        }
    }

    fn flush_window(&mut self) {
        let Some((state, idx)) = &mut self.agg else { return };
        let Some((start, end)) = self.current_window.take() else { return };
        self.windows.push(AggRow {
            window_start: start,
            window_end: end,
            rows: state.rows(),
            value: state.value(),
        });
        let func = state.func;
        *state = AggState::new(func);
        let _ = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn f64s(v: &[f64]) -> ArrayData {
        ArrayData::F64(v.to_vec())
    }

    #[test]
    fn filter_and_gather_rows() {
        let plan = Plan::select(&["v"]).filter(Expr::col("v").lt(Expr::lit(3.0)));
        let mut ex = Executor::new(plan).unwrap();
        let data = f64s(&[1.0, 5.0, 2.0, 9.0, 0.5]);
        let stats = ex.feed_step(0, &[ChunkView::raw(vec![&data])]);
        assert_eq!(stats, StepStats { rows_in: 5, rows_out: 3 });
        let QueryOutput::Rows(steps) = ex.finish() else { panic!() };
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].columns[0].1, f64s(&[1.0, 2.0, 0.5]));
    }

    #[test]
    fn pre_filtered_chunks_skip_refiltering() {
        let plan = Plan::select(&["v"]).filter(Expr::col("v").lt(Expr::lit(3.0)));
        let mut ex = Executor::new(plan).unwrap();
        // Writer already filtered: 2 survivors out of 10 original rows.
        let data = f64s(&[1.0, 2.0]);
        let stats = ex.feed_step(0, &[ChunkView::conditioned(vec![&data], 10)]);
        assert_eq!(stats, StepStats { rows_in: 10, rows_out: 2 });
    }

    #[test]
    fn windowed_mean() {
        let plan = Plan::select(&["v"]).aggregate(AggFunc::Mean, "v").window(2);
        let mut ex = Executor::new(plan).unwrap();
        for step in 0..4u64 {
            let data = f64s(&[step as f64, step as f64 + 1.0]);
            ex.feed_step(step, &[ChunkView::raw(vec![&data])]);
        }
        let QueryOutput::Aggregates(rows) = ex.finish() else { panic!() };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], AggRow { window_start: 0, window_end: 1, rows: 4, value: 1.0 });
        assert_eq!(rows[1], AggRow { window_start: 2, window_end: 3, rows: 4, value: 3.0 });
    }

    #[test]
    fn row_limit_caps_output() {
        let plan = Plan::select(&["v"]).limit(3);
        let mut ex = Executor::new(plan).unwrap();
        let data = f64s(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let stats = ex.feed_step(0, &[ChunkView::raw(vec![&data])]);
        assert_eq!(stats.rows_out, 3);
        let QueryOutput::Rows(steps) = ex.finish() else { panic!() };
        assert_eq!(steps[0].columns[0].1, f64s(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn mixed_dtypes_and_multi_column() {
        let plan = Plan::select(&["k", "v"]).filter(Expr::col("k").ge(Expr::lit(2.0)));
        let mut ex = Executor::new(plan).unwrap();
        let keys = ArrayData::U64(vec![0, 1, 2, 3]);
        let vals = f64s(&[10.0, 11.0, 12.0, 13.0]);
        ex.feed_step(0, &[ChunkView::raw(vec![&keys, &vals])]);
        let QueryOutput::Rows(steps) = ex.finish() else { panic!() };
        assert_eq!(steps[0].columns[0].1, ArrayData::U64(vec![2, 3]));
        assert_eq!(steps[0].columns[1].1, f64s(&[12.0, 13.0]));
    }
}
