//! Cross-crate integration: the paper's "seamlessly switch analytics
//! between online and offline" property (§I.B.2, §II.B). The same
//! simulation and analytics functions run once against FlexIO stream
//! engines and once against ADIOS file engines, selected purely by the
//! XML configuration; results must be identical.

use std::thread;

use adios::{
    ArrayData, BoxSel, FileReadEngine, FileWriteEngine, IoConfig, IoMethod, LocalBlock, ReadEngine,
    Selection, StepStatus, VarValue, WriteEngine,
};
use flexio::{FlexIo, PubSubConfig, Qos, ReaderGroup, StreamHints};
use machine::{laptop, CoreLocation};

const WRITERS: usize = 3;
const STEPS: u64 = 4;
const GLOBAL: u64 = 18;

/// Application code: engine-agnostic producer.
fn produce(engine: &mut dyn WriteEngine, rank: usize) {
    for step in 0..STEPS {
        engine.begin_step(step);
        let base = rank as u64 * 6;
        let data: Vec<f64> = (0..6).map(|i| ((step + 1) * 1000 + base + i) as f64).collect();
        engine.write(
            "u",
            VarValue::Block(
                LocalBlock {
                    global_shape: vec![GLOBAL],
                    offset: vec![base],
                    count: vec![6],
                    data: ArrayData::F64(data),
                }
                .validated(),
            ),
        );
        engine.write("t", VarValue::Scalar(adios::ScalarValue::F64(step as f64 * 0.5)));
        engine.end_step();
    }
    engine.close();
}

/// Application code: engine-agnostic consumer.
fn consume(engine: &mut dyn ReadEngine) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    loop {
        match engine.begin_step() {
            StepStatus::Step(_) => {
                let u =
                    engine.read("u", &Selection::GlobalBox(BoxSel::whole(&[GLOBAL]))).expect("u");
                let VarValue::Block(b) = u else { panic!() };
                let sum: f64 = b.data.as_f64().iter().sum();
                let t = match engine.read("t", &Selection::Scalar) {
                    Some(VarValue::Scalar(adios::ScalarValue::F64(t))) => t,
                    other => panic!("bad t: {other:?}"),
                };
                out.push((sum, t));
                engine.end_step();
            }
            StepStatus::EndOfStream => break,
        }
    }
    out
}

fn run_online(hints: StreamHints) -> Vec<(f64, f64)> {
    let io = FlexIo::single_node(laptop());
    let io_w = io.clone();
    let io_r = io.clone();
    let hints_r = hints.clone();
    let wt = thread::spawn(move || {
        rankrt::launch(WRITERS, move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..WRITERS).map(|r| laptop().node.location_of(r)).collect();
            let mut w = io_w
                .open_writer("switch", rank, WRITERS, roster[rank], roster, hints.clone())
                .unwrap();
            produce(&mut w, rank);
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = laptop().node.location_of(15);
            let mut r =
                io_r.open_reader("switch", 0, 1, core, vec![core], hints_r.clone()).unwrap();
            r.subscribe("u", Selection::GlobalBox(BoxSel::whole(&[GLOBAL])));
            r.subscribe("t", Selection::Scalar);
            consume(&mut r)
        })
    });
    wt.join().unwrap();
    rt.join().unwrap().pop().unwrap()
}

fn run_offline() -> Vec<(f64, f64)> {
    let dir = std::env::temp_dir().join("flexio-switch-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("switch.bp");
    // The writers run as real rank threads here too — file mode is not a
    // degenerate serial path.
    let engines = FileWriteEngine::create(&path, WRITERS);
    let engines = std::sync::Arc::new(parking_lot_mutexes(engines));
    let e2 = std::sync::Arc::clone(&engines);
    rankrt::launch(WRITERS, move |comm| {
        let rank = comm.rank();
        let mut engine = e2[rank].lock().unwrap();
        produce(&mut *engine, rank);
    });
    let mut reader = FileReadEngine::open(&path).unwrap();
    let out = consume(&mut reader);
    std::fs::remove_file(&path).ok();
    out
}

fn parking_lot_mutexes(engines: Vec<FileWriteEngine>) -> Vec<std::sync::Mutex<FileWriteEngine>> {
    engines.into_iter().map(std::sync::Mutex::new).collect()
}

#[test]
fn xml_config_switches_between_online_and_offline() {
    // The two deployment configs differ by ONE attribute.
    let stream_xml = r#"<adios-config><group name="fields">
        <method transport="STREAM"><hint name="caching" value="CACHING_ALL"/></method>
    </group></adios-config>"#;
    let file_xml = stream_xml.replace("STREAM", "FILE");

    let stream_cfg = IoConfig::from_xml(stream_xml).unwrap();
    let file_cfg = IoConfig::from_xml(&file_xml).unwrap();

    let online = match stream_cfg.group("fields").unwrap().method {
        IoMethod::Stream => {
            run_online(StreamHints::from_config(stream_cfg.group("fields").unwrap()))
        }
        IoMethod::File => unreachable!(),
    };
    let offline = match file_cfg.group("fields").unwrap().method {
        IoMethod::File => run_offline(),
        IoMethod::Stream => unreachable!(),
    };

    assert_eq!(online.len(), STEPS as usize);
    assert_eq!(online, offline, "online and offline analytics must agree exactly");
}

/// Publish the standard `produce` workload over pub/sub from `WRITERS`
/// real rank threads, returning when all ranks closed.
fn publish_hybrid(io: &FlexIo, stream: &str, cfg: &PubSubConfig, hints: &StreamHints) {
    let io = io.clone();
    let cfg = cfg.clone();
    let hints = hints.clone();
    let stream = stream.to_string();
    rankrt::launch(WRITERS, move |comm| {
        let rank = comm.rank();
        let mut w =
            io.open_publisher(&stream, rank, WRITERS, &cfg, hints.clone()).expect("open publisher");
        produce(&mut w, rank);
    });
}

#[test]
fn hybrid_mode_serves_live_tailing_and_late_replay_groups_identically() {
    // The third deployment mode the paper's online/offline dichotomy
    // misses: ONE simulation output feeding an online group that tails
    // the stream live AND an offline-style group that joins after the
    // run ended, replaying from BP spill. Both must observe the byte
    // stream a plain single-group run observes.
    let io = FlexIo::single_node(laptop());
    let spill = std::env::temp_dir().join(format!("flexio-hybrid-{}", std::process::id()));
    std::fs::remove_dir_all(&spill).ok();
    let cfg = PubSubConfig {
        groups: 2,
        // A ring far smaller than the run: most steps reach the late
        // joiner only through the BP spill segments.
        replay_steps: 1,
        spill_dir: Some(spill.clone()),
        ..PubSubConfig::default()
    };
    let hints = StreamHints::default();

    // Baseline: the same workload, one group, its own stream.
    publish_hybrid(&io, "hybrid-base", &cfg, &hints);
    let mut base =
        ReaderGroup::tail(&spill, "hybrid-base", "only", Qos::Lossless, &hints).expect("baseline");
    let baseline = consume(&mut base);
    assert_eq!(baseline.len(), STEPS as usize);

    // Hybrid run: the online group attaches in-process and tails while
    // the writers are still producing.
    let io_online = io.clone();
    let hints_online = hints.clone();
    let online_thread = thread::spawn(move || {
        let mut r = io_online
            .open_reader_group("hybrid", "online", None, hints_online)
            .expect("online group");
        let out = consume(&mut r);
        (out, r.counters().snapshot())
    });
    let writers = {
        let io = io.clone();
        let cfg = cfg.clone();
        let hints = hints.clone();
        thread::spawn(move || publish_hybrid(&io, "hybrid", &cfg, &hints))
    };
    writers.join().unwrap();
    let (online, _online_counters) = online_thread.join().unwrap();

    // The offline-style group joins AFTER the writers are gone — the
    // cross-process spill path, as a restarted analysis would.
    let mut late =
        ReaderGroup::tail(&spill, "hybrid", "late", Qos::Lossless, &hints).expect("late group");
    let offline = consume(&mut late);
    let (delivered, replayed, dropped, _) = late.counters().snapshot();
    assert_eq!(delivered, STEPS, "late joiner misses nothing");
    assert_eq!(replayed, STEPS, "every step the late joiner saw came from BP spill");
    assert_eq!(dropped, 0);

    assert_eq!(online, baseline, "live tailing must not perturb the data");
    assert_eq!(offline, baseline, "spill replay must reproduce the stream byte-for-byte");
    std::fs::remove_dir_all(&spill).ok();
}

#[test]
fn offline_results_are_reusable_for_deep_analysis() {
    // Paper §I.A.5: data written to storage can be "read back for
    // additional or long-term analysis": open the container twice with
    // different selections.
    let dir = std::env::temp_dir().join("flexio-switch-test2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("deep.bp");
    let mut engines = FileWriteEngine::create(&path, WRITERS);
    for (rank, e) in engines.iter_mut().enumerate() {
        produce(e, rank);
    }
    // Pass 1: whole array. Pass 2: one writer's process group.
    let mut r1 = FileReadEngine::open(&path).unwrap();
    let full = consume(&mut r1);
    let mut r2 = FileReadEngine::open(&path).unwrap();
    assert_eq!(r2.begin_step(), StepStatus::Step(0));
    let pg = r2.read("u", &Selection::ProcessGroup(1)).unwrap();
    let VarValue::Block(b) = pg else { panic!() };
    assert_eq!(b.offset, vec![6]);
    assert_eq!(b.data.as_f64()[0], 1006.0);
    r2.end_step();
    assert_eq!(full.len(), STEPS as usize);
    std::fs::remove_file(&path).ok();
}
