//! **Pub/sub fan-out** — steps/s for one writer feeding {1, 4, 16}
//! reader groups under three delivery shapes:
//!
//! * `live` — groups tail the in-memory replay ring concurrently with
//!   the publisher (no spill; the zero-copy `Arc` fan-out path);
//! * `late_join` — groups attach *after* the writer closed, through the
//!   cross-process [`flexio::ReaderGroup::tail`] path, replaying every
//!   step out of BP spill segments;
//! * `replay_heavy` — groups register up front (so their cursors are
//!   live) but only drain after the run, riding the in-process
//!   memory → spill seam for almost the whole stream.
//!
//! The headline number is writer overhead: publishing to a 16-group
//! fan-out must stay under 2× the single-group write-path latency,
//! because sealing a step is one ring append regardless of group count.
//!
//! Results land in `BENCH_pubsub.json` at the repo root. Run with
//! `cargo bench --bench pubsub`; set `PUBSUB_QUICK=1` for smoke runs.

use std::thread;
use std::time::{Duration, Instant};

use adios::{ArrayData, LocalBlock, StepStatus, VarValue, WriteEngine};
use flexio::{FlexIo, PubSubConfig, Qos, ReaderGroup, StreamHints};
use machine::laptop;

const ELEMS: usize = 128; // 1 KiB of f64 per step

fn hints() -> StreamHints {
    StreamHints { recv_timeout: Duration::from_secs(5), retries: 2, ..StreamHints::default() }
}

fn payload(step: u64) -> VarValue {
    let data: Vec<f64> = (0..ELEMS).map(|e| (step * 1000 + e as u64) as f64).collect();
    VarValue::Block(
        LocalBlock {
            global_shape: vec![ELEMS as u64],
            offset: vec![0],
            count: vec![ELEMS as u64],
            data: ArrayData::F64(data),
        }
        .validated(),
    )
}

/// Publish `steps` steps, returning the write-path elapsed seconds.
fn publish(mut w: flexio::StepPublisher, steps: u64) -> f64 {
    let start = Instant::now();
    for step in 0..steps {
        w.begin_step(step);
        w.write("u", payload(step));
        w.end_step();
    }
    w.close();
    start.elapsed().as_secs_f64()
}

fn drain(mut r: ReaderGroup, expect: u64) {
    let mut seen = 0u64;
    loop {
        match r.try_begin_step().expect("begin_step") {
            StepStatus::Step(_) => {
                seen += 1;
                adios::ReadEngine::end_step(&mut r);
            }
            StepStatus::EndOfStream => break,
        }
    }
    assert_eq!(seen, expect, "every group drains the full stream");
    adios::ReadEngine::close(&mut r);
}

struct Cell {
    scenario: &'static str,
    groups: usize,
    steps: u64,
    publish_s: f64,
    total_s: f64,
}

/// `live`: groups tail concurrently; the ring retains everything.
fn run_live(groups: usize, steps: u64) -> Cell {
    let io = FlexIo::single_node(laptop());
    let cfg = PubSubConfig { groups, replay_steps: steps as usize + 1, ..PubSubConfig::default() };
    let name = format!("bench-live-{groups}");
    let w = io.open_publisher(&name, 0, 1, &cfg, hints()).expect("open publisher");
    let readers: Vec<ReaderGroup> = (0..groups)
        .map(|g| io.open_reader_group(&name, &format!("g{g}"), None, hints()).expect("group"))
        .collect();
    let start = Instant::now();
    let handles: Vec<_> =
        readers.into_iter().map(|r| thread::spawn(move || drain(r, steps))).collect();
    let publish_s = publish(w, steps);
    for h in handles {
        h.join().expect("group thread");
    }
    Cell { scenario: "live", groups, steps, publish_s, total_s: start.elapsed().as_secs_f64() }
}

/// Spill-backed cells. `late` attaches fresh `ReaderGroup::tail` groups
/// after the writer closed; otherwise in-process groups registered up
/// front drain the memory → spill seam.
fn run_spilled(scenario: &'static str, groups: usize, steps: u64, late: bool) -> Cell {
    let io = FlexIo::single_node(laptop());
    let spill = std::env::temp_dir()
        .join(format!("flexio-bench-{scenario}-{groups}-{}", std::process::id()));
    std::fs::remove_dir_all(&spill).ok();
    let cfg = PubSubConfig {
        groups,
        replay_steps: 2,
        spill_dir: Some(spill.clone()),
        ..PubSubConfig::default()
    };
    let name = format!("bench-{scenario}-{groups}");
    let w = io.open_publisher(&name, 0, 1, &cfg, hints()).expect("open publisher");
    let early: Vec<ReaderGroup> = if late {
        Vec::new()
    } else {
        (0..groups)
            .map(|g| io.open_reader_group(&name, &format!("g{g}"), None, hints()).expect("group"))
            .collect()
    };
    let start = Instant::now();
    let publish_s = publish(w, steps);
    let handles: Vec<_> = if late {
        (0..groups)
            .map(|g| {
                let spill = spill.clone();
                let name = name.clone();
                thread::spawn(move || {
                    let r =
                        ReaderGroup::tail(&spill, &name, &format!("g{g}"), Qos::Lossless, &hints())
                            .expect("tail attach");
                    drain(r, steps);
                })
            })
            .collect()
    } else {
        early.into_iter().map(|r| thread::spawn(move || drain(r, steps))).collect()
    };
    for h in handles {
        h.join().expect("group thread");
    }
    let total_s = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&spill).ok();
    Cell { scenario, groups, steps, publish_s, total_s }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        println!("pubsub: skipped under test harness");
        return;
    }
    let quick = std::env::var("PUBSUB_QUICK").is_ok();
    // Spilled cells write one BP segment per step; fewer steps keep the
    // sweep's file I/O volume comparable to the in-memory cells.
    let live_steps: u64 = if quick { 64 } else { 512 };
    let spill_steps: u64 = if quick { 16 } else { 128 };

    let mut cells: Vec<Cell> = Vec::new();
    for groups in [1usize, 4, 16] {
        cells.push(run_live(groups, live_steps));
        cells.push(run_spilled("late_join", groups, spill_steps, true));
        cells.push(run_spilled("replay_heavy", groups, spill_steps, false));
    }
    for c in &cells {
        eprintln!(
            "pubsub: {:12} {:3} groups  {:6.1} write-steps/s  {:8.1} delivered-steps/s",
            c.scenario,
            c.groups,
            c.steps as f64 / c.publish_s,
            (c.groups as u64 * c.steps) as f64 / c.total_s,
        );
    }

    // The acceptance headline: fan-out must not tax the write path.
    let write_s = |groups: usize| {
        cells
            .iter()
            .find(|c| c.scenario == "live" && c.groups == groups)
            .map(|c| c.publish_s)
            .expect("live cell present")
    };
    let overhead_16g = write_s(16) / write_s(1);
    eprintln!("pubsub: 16-group vs 1-group write-path ratio {overhead_16g:.3} (must stay < 2)");

    let mut rep = bench::report::Report::new("pubsub")
        .u64("payload_bytes", (ELEMS * 8) as u64)
        .f64("write_path_overhead_16g", overhead_16g, 3);
    for c in &cells {
        rep.push(
            bench::report::Obj::new()
                .str("scenario", c.scenario)
                .u64("groups", c.groups as u64)
                .u64("steps", c.steps)
                .f64("publish_s", c.publish_s, 6)
                .f64("total_s", c.total_s, 6)
                .f64("write_steps_per_s", c.steps as f64 / c.publish_s, 3)
                .f64("delivered_steps_per_s", (c.groups as u64 * c.steps) as f64 / c.total_s, 3),
        );
    }
    rep.write();
}
