//! **Reactor runtime** — steps/s for N concurrent 1-writer/1-reader
//! streams, thread-per-stream blocking backend vs the single-threaded
//! reactor event loop, swept over stream count × transport.
//!
//! The blocking backend spends 2×N OS threads; the reactor drives all 2×N
//! protocol state machines from one core. Payloads are small (1 KiB) on
//! purpose: this bench measures scheduling and protocol multiplexing
//! overhead, not memory bandwidth — the data-plane bench owns that axis.
//! Sync write mode bounds each stream's in-flight data so 64 streams'
//! traffic cannot overrun the bounded shm queues regardless of backend.
//!
//! Results land in `BENCH_reactor.json` at the repo root and the summary
//! JSON is printed to stdout (one line, machine-parsable).
//!
//! Run with `cargo bench --bench reactor`. Set `REACTOR_QUICK=1` to
//! shrink step counts for smoke runs.

use std::cell::Cell;
use std::rc::Rc;
use std::thread;
use std::time::Instant;

use adios::{
    ArrayData, BoxSel, LocalBlock, ReadEngine, Selection, StepStatus, VarValue, WriteEngine,
};
use flexio::{CachingLevel, FlexIo, Runtime, StreamHints, WriteMode};
use machine::laptop;

const ELEMS: usize = 128; // 1 KiB of f64 per step

struct RunResult {
    streams: usize,
    transport: &'static str,
    backend: &'static str,
    steps_total: u64,
    elapsed_s: f64,
}

impl RunResult {
    fn steps_per_s(&self) -> f64 {
        self.steps_total as f64 / self.elapsed_s
    }
}

fn hints(runtime: Runtime) -> StreamHints {
    StreamHints {
        write_mode: WriteMode::Sync,
        caching: CachingLevel::CachingAll,
        runtime,
        ..StreamHints::default()
    }
}

fn payload(stream: usize, step: u64) -> VarValue {
    let data: Vec<f64> = (0..ELEMS).map(|e| (stream * ELEMS + e) as f64 + step as f64).collect();
    VarValue::Block(
        LocalBlock {
            global_shape: vec![ELEMS as u64],
            offset: vec![0],
            count: vec![ELEMS as u64],
            data: ArrayData::F64(data),
        }
        .validated(),
    )
}

fn cores(transport: &str, stream: usize) -> (machine::CoreLocation, machine::CoreLocation) {
    let w = laptop().node.location_of(0);
    let r = match transport {
        "inproc" => w,
        // Spread readers over the node's other cores so shm queue pairs
        // don't all land between the same two locations.
        "shm" => laptop().node.location_of(1 + stream % (laptop().node.cores_per_node() - 1)),
        other => panic!("unknown transport {other}"),
    };
    (w, r)
}

/// Thread-per-stream backend: 2 OS threads per coupling, blocking calls.
fn run_threads(streams: usize, transport: &'static str, steps: u64) -> f64 {
    let io = FlexIo::single_node(laptop());
    let start = Instant::now();
    let mut handles = Vec::new();
    for i in 0..streams {
        let (wcore, rcore) = cores(transport, i);
        let name = format!("bench{i}");
        let io_w = io.clone();
        let name_w = name.clone();
        handles.push(thread::spawn(move || {
            let mut w = io_w
                .open_writer(&name_w, 0, 1, wcore, vec![wcore], hints(Runtime::Blocking))
                .expect("open writer");
            for step in 0..steps {
                w.begin_step(step);
                w.write("u", payload(i, step));
                w.end_step();
            }
            w.close();
        }));
        let io_r = io.clone();
        handles.push(thread::spawn(move || {
            let mut r = io_r
                .open_reader(&name, 0, 1, rcore, vec![rcore], hints(Runtime::Blocking))
                .expect("open reader");
            r.subscribe("u", Selection::GlobalBox(BoxSel::whole(&[ELEMS as u64])));
            let mut seen = 0u64;
            while let StepStatus::Step(_) = r.begin_step() {
                seen += 1;
                r.end_step();
            }
            assert_eq!(seen, steps);
            r.close();
        }));
    }
    for h in handles {
        h.join().expect("bench thread");
    }
    start.elapsed().as_secs_f64()
}

/// Reactor backend: one event loop on this thread drives all 2×N engines.
fn run_reactor(streams: usize, transport: &'static str, steps: u64) -> f64 {
    let io = FlexIo::single_node(laptop());
    let mut reactor = flexio_reactor::Reactor::new();
    let done = Rc::new(Cell::new(0usize));
    let start = Instant::now();
    for i in 0..streams {
        let (wcore, rcore) = cores(transport, i);
        let name = format!("bench{i}");
        let io_w = io.clone();
        let name_w = name.clone();
        let done_w = Rc::clone(&done);
        reactor.spawn(async move {
            let mut w = io_w
                .open_writer_rt(&name_w, 0, 1, wcore, vec![wcore], hints(Runtime::Reactor))
                .await
                .expect("open writer");
            for step in 0..steps {
                w.begin_step(step);
                w.write("u", payload(i, step));
                w.end_step_rt().await.expect("end_step");
            }
            w.close();
            done_w.set(done_w.get() + 1);
        });
        let io_r = io.clone();
        let done_r = Rc::clone(&done);
        reactor.spawn(async move {
            let mut r = io_r
                .open_reader_rt(&name, 0, 1, rcore, vec![rcore], hints(Runtime::Reactor))
                .await
                .expect("open reader");
            r.subscribe("u", Selection::GlobalBox(BoxSel::whole(&[ELEMS as u64])));
            let mut seen = 0u64;
            loop {
                match r.begin_step_rt().await.expect("begin_step") {
                    StepStatus::Step(_) => {
                        seen += 1;
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            assert_eq!(seen, steps);
            r.close();
            done_r.set(done_r.get() + 1);
        });
    }
    reactor.run();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(done.get(), streams * 2, "every engine ran to completion");
    elapsed
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        println!("reactor: skipped under test harness");
        return;
    }
    let quick = std::env::var("REACTOR_QUICK").is_ok();
    // Steps per stream scale down with stream count so every cell moves a
    // comparable total step volume.
    let sweep: Vec<(usize, u64)> = vec![
        (1, if quick { 64 } else { 512 }),
        (8, if quick { 16 } else { 128 }),
        (64, if quick { 4 } else { 16 }),
    ];

    let mut results: Vec<RunResult> = Vec::new();
    for &(streams, steps) in &sweep {
        for transport in ["inproc", "shm"] {
            for backend in ["threads", "reactor"] {
                let elapsed_s = match backend {
                    "threads" => run_threads(streams, transport, steps),
                    _ => run_reactor(streams, transport, steps),
                };
                let r = RunResult {
                    streams,
                    transport,
                    backend,
                    steps_total: streams as u64 * steps,
                    elapsed_s,
                };
                eprintln!(
                    "reactor: {:3} streams  {:6}  {:7}  {:8.1} steps/s",
                    r.streams,
                    r.transport,
                    r.backend,
                    r.steps_per_s()
                );
                results.push(r);
            }
        }
    }

    let mut entries = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            entries.push_str(", ");
        }
        entries.push_str(&format!(
            "{{\"streams\": {}, \"transport\": \"{}\", \"backend\": \"{}\", \
             \"steps_total\": {}, \"elapsed_s\": {:.6}, \"steps_per_s\": {:.3}}}",
            r.streams,
            r.transport,
            r.backend,
            r.steps_total,
            r.elapsed_s,
            r.steps_per_s()
        ));
    }
    let json = format!(
        "{{\"bench\": \"reactor\", \"payload_bytes\": {}, \"results\": [{}]}}",
        ELEMS * 8,
        entries
    );
    println!("{json}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reactor.json");
    std::fs::write(out, format!("{json}\n")).expect("write BENCH_reactor.json");
    eprintln!("reactor: wrote {out}");
}
