//! Unified control-plane task handles.
//!
//! The staging node grew several spawnable service loops — the monitor
//! sink drain, the placement manager, streaming queries, and now the
//! elastic controller — each with its own ad-hoc handle type and its own
//! spelling of "stop", "are you done", and "show me your counters".
//! [`ControlTask`] is the one interface they all implement, and
//! [`TaskHandle`] is the one type every `FleetRuntime::spawn_*` method
//! returns, so a control plane can manage a heterogeneous set of service
//! tasks without knowing what each one is.
//!
//! The typed handles still exist underneath ([`TaskHandle::typed`]
//! recovers them) because each service has observers with no generic
//! equivalent — the sink's live [`crate::PerfMonitor`] replica, the
//! manager's latest recommendation, a query's output. The common
//! lifecycle, though, lives here.

use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One spawnable control-plane service loop, as seen by the control
/// plane: it can be asked to stop, observed for completion, and asked
/// for a snapshot of its progress counters.
pub trait ControlTask: Send + Sync {
    /// Short service-class name (`"monitor_sink"`, `"manager"`,
    /// `"query"`, `"elastic"`) for logs and counter dumps.
    fn kind(&self) -> &'static str;

    /// Ask the loop to exit at its next boundary. Idempotent; the task
    /// may also end on its own (peer gone, stream unregistered, EOS).
    fn stop(&self);

    /// Whether the loop has exited (for any reason).
    fn is_done(&self) -> bool;

    /// Named progress counters, a consistent-enough snapshot for
    /// dashboards and assertions.
    fn counters(&self) -> Vec<(&'static str, u64)>;

    /// Downcast support for [`TaskHandle::typed`].
    fn as_any(&self) -> &dyn Any;
}

/// Type-erased handle to a spawned control task. Cloning shares the
/// underlying task state.
#[derive(Clone)]
pub struct TaskHandle {
    task: Arc<dyn ControlTask>,
}

impl TaskHandle {
    /// Wrap a typed handle. `FleetRuntime::spawn_*` does this for you.
    pub fn new(task: impl ControlTask + 'static) -> TaskHandle {
        TaskHandle { task: Arc::new(task) }
    }

    /// Service-class name of the underlying task.
    pub fn kind(&self) -> &'static str {
        self.task.kind()
    }

    /// Ask the task to exit at its next boundary.
    pub fn stop(&self) {
        self.task.stop();
    }

    /// Whether the task's loop has exited.
    pub fn is_done(&self) -> bool {
        self.task.is_done()
    }

    /// Snapshot of the task's named counters.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.task.counters()
    }

    /// One named counter, if the task exports it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.task.counters().iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Poll until the task exits or `timeout` elapses; returns whether
    /// it exited. (Control tasks end at loop boundaries, so a short poll
    /// interval is accurate enough and keeps this runtime-agnostic.)
    pub fn join(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_done() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Recover the typed handle for service-specific observers (the
    /// sink's monitor replica, the manager's recommendation, …).
    pub fn typed<T: ControlTask + 'static>(&self) -> Option<&T> {
        self.task.as_any().downcast_ref::<T>()
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("kind", &self.kind())
            .field("done", &self.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    struct Fake {
        stopped: AtomicBool,
        ticks: AtomicU64,
    }

    impl ControlTask for Fake {
        fn kind(&self) -> &'static str {
            "fake"
        }
        fn stop(&self) {
            self.stopped.store(true, Ordering::Release);
        }
        fn is_done(&self) -> bool {
            self.stopped.load(Ordering::Acquire)
        }
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("ticks", self.ticks.load(Ordering::Relaxed))]
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn handle_erases_and_recovers_the_type() {
        let h = TaskHandle::new(Fake { stopped: AtomicBool::new(false), ticks: AtomicU64::new(3) });
        assert_eq!(h.kind(), "fake");
        assert!(!h.is_done());
        assert_eq!(h.counter("ticks"), Some(3));
        assert_eq!(h.counter("nope"), None);
        let fake: &Fake = h.typed::<Fake>().expect("downcast");
        fake.ticks.store(9, Ordering::Relaxed);
        assert_eq!(h.counter("ticks"), Some(9));
        h.stop();
        assert!(h.join(Duration::from_secs(1)), "stop flips is_done in the fake");
    }
}
