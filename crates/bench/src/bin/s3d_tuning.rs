//! **§IV.B.1 table** — "Tuning Data Movement" for S3D: the
//! simulation-visible data movement time per output step, untuned
//! (NO_CACHING, per-variable messages, synchronous) vs tuned
//! (CACHING_ALL + batching of all 22 arrays + asynchronous writes).
//!
//! Paper numbers at 1K cores: Titan 1.2 s → 0.053 s; Smoky 4.0 s →
//! 0.077 s, "enforced through setting hints in external XML configuration
//! file and requires no changes to simulation or visualization source
//! code."
//!
//! Two parts:
//! 1. a **model** at 1024 processes (coordinator-serialized handshake
//!    messages dominate the untuned path; the tuned path is bounded by
//!    the marshal+copy of the 1.7 MB batch);
//! 2. a **real run** of the full FlexIO stack at laptop scale (8 writers,
//!    22 variables) under both hint sets, with wall-clock step times and
//!    the protocol message counters.
//!
//! Run: `cargo run --release -p bench --bin s3d_tuning`

use std::thread;
use std::time::Instant;

use adios::{
    ArrayData, BoxSel, LocalBlock, ReadEngine, Selection, StepStatus, VarValue, WriteEngine,
};
use flexio::{CachingLevel, FlexIo, StreamHints, WriteMode};
use machine::{laptop, smoky, titan, CoreLocation, MachineModel};

/// Modelled untuned movement time per step, per writer rank: 22 variables
/// each re-running the full handshake, whose gather/broadcast serialize
/// at the coordinator across W ranks; data then moves synchronously.
fn modelled_untuned(m: &MachineModel, procs: usize) -> f64 {
    // Per-message software + injection overhead at the coordinator,
    // calibrated to the paper's measurement (Smoky's slower fabric and
    // older software stack pays more per message).
    let c_msg = if m.name == "titan" { 27e-6 } else { 89e-6 };
    let vars = 22.0;
    let handshake = vars * 2.0 * procs as f64 * c_msg; // gather + bcast rounds
    let data_sync = vars
        * (m.interconnect.latency_ns / 1e9
            + (1.7e6 / vars) / m.interconnect.link_bw
            + 2.0 * m.interconnect.latency_ns / 1e9); // ack round trip
    handshake + data_sync
}

/// Modelled tuned movement time per step: one asynchronous batched
/// message; the visible cost is marshalling + copying the 1.7 MB batch
/// into the registered send buffer (the bandwidth of that path is
/// calibrated to the paper's residual 53/77 ms).
fn modelled_tuned(m: &MachineModel) -> f64 {
    let marshal_bw = if m.name == "titan" { 32e6 } else { 22e6 };
    1.7e6 / marshal_bw
}

fn real_run(hints: StreamHints) -> (f64, (u64, u64, u64, u64, u64, u64, u64)) {
    const WRITERS: usize = 8;
    const STEPS: u64 = 6;
    const ELEMS: usize = 1200; // ~9.6 kB/var ≈ the paper's per-var size
    let io = FlexIo::single_node(laptop());
    let io_w = io.clone();
    let io_r = io.clone();
    let hints_r = hints.clone();
    let wt = thread::spawn(move || {
        rankrt::launch(WRITERS, move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..WRITERS).map(|r| laptop().node.location_of(r)).collect();
            let mut w = io_w
                .open_writer("tune", rank, WRITERS, roster[rank], roster, hints.clone())
                .unwrap();
            let mut visible = 0.0;
            for step in 0..STEPS {
                w.begin_step(step);
                for v in 0..22 {
                    w.write(
                        &format!("species{v:02}"),
                        VarValue::Block(
                            LocalBlock {
                                global_shape: vec![(WRITERS * ELEMS) as u64],
                                offset: vec![(rank * ELEMS) as u64],
                                count: vec![ELEMS as u64],
                                data: ArrayData::F64(vec![step as f64; ELEMS]),
                            }
                            .validated(),
                        ),
                    );
                }
                let t = Instant::now();
                w.end_step(); // the simulation-visible movement time
                visible += t.elapsed().as_secs_f64();
            }
            let link = w.link().clone();
            w.close();
            (visible / STEPS as f64, link)
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = laptop().node.location_of(15);
            let mut r = io_r.open_reader("tune", 0, 1, core, vec![core], hints_r.clone()).unwrap();
            for v in 0..22 {
                r.subscribe(
                    &format!("species{v:02}"),
                    Selection::GlobalBox(BoxSel::whole(&[(8 * 1200) as u64])),
                );
            }
            while let StepStatus::Step(_) = r.begin_step() {
                r.end_step();
            }
        })
    });
    let writer_results = wt.join().unwrap();
    rt.join().unwrap();
    // Max visible time across ranks; counters read only after both
    // programs have fully drained (they are shared and still moving
    // while other ranks run).
    let max_visible = writer_results.iter().map(|(v, _)| *v).fold(0.0, f64::max);
    let counters = writer_results[0].1.counters.snapshot();
    (max_visible, counters)
}

fn main() {
    println!("§IV.B.1 — S3D data-movement tuning (simulation-visible time per output step)\n");
    println!("model at 1024 processes:");
    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>18}",
        "machine", "untuned (s)", "tuned (s)", "speedup", "paper (un→tuned)"
    );
    for (m, paper) in [(titan(), "1.2 → 0.053"), (smoky(), "4.0 → 0.077")] {
        let u = modelled_untuned(&m, 1024);
        let t = modelled_tuned(&m);
        println!("{:<10} {:>14.3} {:>14.3} {:>9.0}x {:>18}", m.name, u, t, u / t, paper);
    }

    println!("\nreal FlexIO stack at laptop scale (8 writers, 22 variables, 6 steps):");
    let untuned = StreamHints {
        caching: CachingLevel::NoCaching,
        batching: false,
        write_mode: WriteMode::Sync,
        ..StreamHints::default()
    };
    let tuned = StreamHints {
        caching: CachingLevel::CachingAll,
        batching: true,
        write_mode: WriteMode::Async,
        ..StreamHints::default()
    };
    let (u_time, u_counters) = real_run(untuned);
    let (t_time, t_counters) = real_run(tuned);
    println!(
        "{:<10} {:>16} {:>10} {:>10} {:>10} {:>10}",
        "config", "visible s/step", "gathers", "exchanges", "bcasts", "data msgs"
    );
    println!(
        "{:<10} {:>16.6} {:>10} {:>10} {:>10} {:>10}",
        "untuned", u_time, u_counters.0, u_counters.1, u_counters.2, u_counters.3
    );
    println!(
        "{:<10} {:>16.6} {:>10} {:>10} {:>10} {:>10}",
        "tuned", t_time, t_counters.0, t_counters.1, t_counters.2, t_counters.3
    );
    println!(
        "\ntuning cut the visible movement time by {:.0}x and the handshake\n\
         messages from {} to {} — the same lever the paper pulls, with no\n\
         change to simulation or visualization code (hints only).",
        u_time / t_time.max(1e-9),
        u_counters.0 + u_counters.1 + u_counters.2,
        t_counters.0 + t_counters.1 + t_counters.2,
    );
}
