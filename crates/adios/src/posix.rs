//! The POSIX file method: one container per writing rank.
//!
//! ADIOS ships several interchangeable file I/O methods behind the same
//! API ("MPI-IO, HDF5, and NetCDF", §II.A); the POSIX method writes one
//! file per process to avoid write-lock contention, and readers merge the
//! per-rank containers. This second file engine exists to demonstrate
//! that the method axis (POSIX vs aggregated BP vs stream) is orthogonal
//! to application code — all implement [`crate::WriteEngine`] /
//! [`crate::ReadEngine`].

use std::path::{Path, PathBuf};

use crate::api::{ReadEngine, Selection, StepStatus, WriteEngine};
use crate::bp::{BpBuilder, BpError, BpFile};
use crate::group::ProcessGroup;
use crate::var::VarValue;

/// Per-rank POSIX writer: writes `<dir>/<name>.<rank>.bp`.
pub struct PosixWriteEngine {
    builder: BpBuilder,
    path: PathBuf,
    rank: usize,
    current: Option<ProcessGroup>,
}

impl PosixWriteEngine {
    /// Path of one rank's container.
    pub fn rank_path(dir: &Path, name: &str, rank: usize) -> PathBuf {
        dir.join(format!("{name}.{rank}.bp"))
    }

    /// Create engines for `nranks` writers under `dir`.
    pub fn create(dir: &Path, name: &str, nranks: usize) -> Vec<PosixWriteEngine> {
        (0..nranks)
            .map(|rank| PosixWriteEngine {
                builder: BpBuilder::new(),
                path: Self::rank_path(dir, name, rank),
                rank,
                current: None,
            })
            .collect()
    }

    /// Fallible close.
    pub fn finalize(&mut self) -> Result<(), BpError> {
        if let Some(group) = self.current.take() {
            self.builder.append(group);
        }
        self.builder.write_file(&self.path)
    }
}

impl WriteEngine for PosixWriteEngine {
    fn begin_step(&mut self, step: u64) {
        assert!(self.current.is_none(), "begin_step without end_step");
        self.current = Some(ProcessGroup::new(self.rank, step));
    }

    fn write(&mut self, name: &str, value: VarValue) {
        self.current.as_mut().expect("write outside begin_step/end_step").push(name, value);
    }

    fn end_step(&mut self) {
        let group = self.current.take().expect("end_step without begin_step");
        self.builder.append(group);
    }

    fn close(&mut self) {
        self.finalize().expect("failed to write POSIX container");
    }
}

/// Reader that merges the per-rank POSIX containers back into one logical
/// time-indexed view — identical semantics to [`crate::FileReadEngine`].
pub struct PosixReadEngine {
    files: Vec<BpFile>,
    steps: Vec<u64>,
    cursor: usize,
    in_step: bool,
}

impl PosixReadEngine {
    /// Open all `<dir>/<name>.<rank>.bp` containers for `nranks` writers.
    pub fn open(dir: &Path, name: &str, nranks: usize) -> Result<PosixReadEngine, BpError> {
        let mut files = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            files.push(BpFile::open(&PosixWriteEngine::rank_path(dir, name, rank))?);
        }
        let mut steps: Vec<u64> = files.iter().flat_map(|f| f.steps()).collect();
        steps.sort_unstable();
        steps.dedup();
        Ok(PosixReadEngine { files, steps, cursor: 0, in_step: false })
    }

    fn current_step(&self) -> Option<u64> {
        self.in_step.then(|| self.steps[self.cursor])
    }
}

impl ReadEngine for PosixReadEngine {
    fn begin_step(&mut self) -> StepStatus {
        assert!(!self.in_step, "begin_step without end_step");
        match self.steps.get(self.cursor) {
            Some(&s) => {
                self.in_step = true;
                StepStatus::Step(s)
            }
            None => StepStatus::EndOfStream,
        }
    }

    fn read(&mut self, name: &str, sel: &Selection) -> Option<VarValue> {
        let step = self.current_step().expect("read outside a step");
        match sel {
            Selection::ProcessGroup(rank) => {
                self.files.get(*rank)?.group(step, *rank)?.get(name).cloned()
            }
            Selection::GlobalBox(b) => {
                // Merge region reads across every rank's container.
                let mut out: Option<crate::var::LocalBlock> = None;
                for f in &self.files {
                    if let Some(block) = f.read_box(step, name, b) {
                        match &mut out {
                            None => out = Some(block),
                            Some(acc) => {
                                // Blocks cover disjoint parts; merge by
                                // copying non-zero contributor regions.
                                for g in f.groups_of_step(step) {
                                    if let Some(VarValue::Block(src)) = g.get(name) {
                                        let have = crate::hyperslab::BoxSel::new(
                                            src.offset.clone(),
                                            src.count.clone(),
                                        );
                                        if let Some(region) = have.intersect(b) {
                                            crate::hyperslab::copy_region(src, acc, &region);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                out.map(VarValue::Block)
            }
            Selection::Scalar => self.files.iter().find_map(|f| {
                f.groups_of_step(step).iter().find_map(|g| match g.get(name) {
                    Some(v @ VarValue::Scalar(_)) => Some(v.clone()),
                    _ => None,
                })
            }),
        }
    }

    fn end_step(&mut self) {
        assert!(self.in_step, "end_step without begin_step");
        self.in_step = false;
        self.cursor += 1;
    }

    fn close(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperslab::BoxSel;
    use crate::var::{ArrayData, LocalBlock, ScalarValue};

    fn write_posix(dir: &Path) {
        let mut engines = PosixWriteEngine::create(dir, "sim", 3);
        for (rank, e) in engines.iter_mut().enumerate() {
            for step in 0..2u64 {
                e.begin_step(step);
                e.write("t", VarValue::Scalar(ScalarValue::U64(step)));
                e.write(
                    "u",
                    VarValue::Block(
                        LocalBlock {
                            global_shape: vec![9],
                            offset: vec![rank as u64 * 3],
                            count: vec![3],
                            data: ArrayData::F64(vec![(step * 10 + rank as u64) as f64; 3]),
                        }
                        .validated(),
                    ),
                );
                e.end_step();
            }
            e.close();
        }
    }

    #[test]
    fn per_rank_files_merge_on_read() {
        let dir = std::env::temp_dir().join("flexio-posix-test");
        std::fs::create_dir_all(&dir).unwrap();
        write_posix(&dir);
        // Three separate files exist.
        for rank in 0..3 {
            assert!(PosixWriteEngine::rank_path(&dir, "sim", rank).exists());
        }
        let mut r = PosixReadEngine::open(&dir, "sim", 3).unwrap();
        assert_eq!(r.begin_step(), StepStatus::Step(0));
        // Global read spans the three files.
        let v = r.read("u", &Selection::GlobalBox(BoxSel::whole(&[9]))).unwrap();
        let VarValue::Block(b) = v else { panic!() };
        assert_eq!(b.data.as_f64(), &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        // Process-group and scalar reads work too.
        assert!(r.read("u", &Selection::ProcessGroup(2)).is_some());
        assert_eq!(r.read("t", &Selection::Scalar), Some(VarValue::Scalar(ScalarValue::U64(0))));
        r.end_step();
        assert_eq!(r.begin_step(), StepStatus::Step(1));
        r.end_step();
        assert_eq!(r.begin_step(), StepStatus::EndOfStream);
        for rank in 0..3 {
            std::fs::remove_file(PosixWriteEngine::rank_path(&dir, "sim", rank)).ok();
        }
    }

    #[test]
    fn missing_rank_file_is_an_error() {
        let dir = std::env::temp_dir().join("flexio-posix-test2");
        std::fs::create_dir_all(&dir).unwrap();
        write_posix(&dir);
        // Ask for more ranks than exist.
        assert!(PosixReadEngine::open(&dir, "sim", 5).is_err());
        for rank in 0..3 {
            std::fs::remove_file(PosixWriteEngine::rank_path(&dir, "sim", rank)).ok();
        }
    }
}
