//! **MICRO-SHM** — throughput of the intra-node transport (paper §II.D):
//! the FastForward SPSC queue across payload sizes, the 2-copy pooled
//! path vs the 1-copy XPMEM-style mapped path, and the naive locked queue
//! as the baseline the lock-free design replaces.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shm::channel::shm_channel;
use shm::naive::naive_queue;
use shm::spsc::spsc_queue;

const MSGS: u64 = 10_000;

fn bench_spsc_inline(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_inline");
    for size in [16usize, 64, 256] {
        g.throughput(Throughput::Bytes(MSGS * size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let (mut tx, mut rx) = spsc_queue(256, 512);
                let payload = vec![7u8; size];
                let t = thread::spawn(move || {
                    for _ in 0..MSGS {
                        tx.push(&payload).unwrap();
                    }
                });
                let mut buf = [0u8; 512];
                for _ in 0..MSGS {
                    while rx.try_pop_into(&mut buf).is_none() {
                        std::hint::spin_loop();
                    }
                }
                t.join().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_locked_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("locked_queue_baseline");
    for size in [16usize, 256] {
        g.throughput(Throughput::Bytes(MSGS * size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let (tx, rx) = naive_queue(256);
                let payload = vec![7u8; size];
                let t = thread::spawn(move || {
                    for _ in 0..MSGS {
                        tx.push(&payload);
                    }
                });
                for _ in 0..MSGS {
                    rx.pop();
                }
                t.join().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_large_message_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("large_message_paths");
    let size = 1 << 20; // 1 MiB
    let n = 64u64;
    g.throughput(Throughput::Bytes(n * size as u64));
    g.bench_function("pooled_two_copies", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = shm_channel(64, 256);
            let payload = vec![3u8; size];
            let t = thread::spawn(move || {
                for _ in 0..n {
                    tx.send_copy(&payload);
                }
            });
            for _ in 0..n {
                rx.recv().unwrap();
            }
            t.join().unwrap();
        });
    });
    g.bench_function("mapped_one_copy", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = shm_channel(64, 256);
            let payload = Arc::new(vec![3u8; size]);
            let t = thread::spawn(move || {
                for _ in 0..n {
                    tx.send_mapped(Arc::clone(&payload));
                }
            });
            for _ in 0..n {
                rx.recv().unwrap();
            }
            t.join().unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_spsc_inline, bench_locked_baseline, bench_large_message_paths);
criterion_main!(benches);
