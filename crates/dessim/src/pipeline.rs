//! The two-stage pipeline simulator.
//!
//! Events are step completions; the recurrence below is the exact
//! discrete-event solution of a producer → mover → consumer pipeline with
//! a bounded buffer, so no event queue is needed:
//!
//! ```text
//! produce[k] = max(produce[k-1], accept[k]) + step_compute + io_visible
//! move_done[k] = produce[k] + movement (async overlaps the next compute)
//! ana_done[k] = max(move_done[k], ana_done[k-1]) + analytics
//! accept[k]  = ana_done[k - queue_depth]   (backpressure)
//! ```

/// Inputs of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineParams {
    /// Output steps to simulate.
    pub n_steps: u64,
    /// Simulation cycles between outputs (GTS: 2, S3D: 10).
    pub cycles_per_step: u64,
    /// Seconds per simulation cycle under this placement (includes core
    /// surrender, cache interference and async-movement interference).
    pub sim_cycle_s: f64,
    /// Simulation-visible I/O time per output (the write call itself:
    /// inline analytics time, shm handoff, sync RDMA, or file write).
    pub io_visible_s: f64,
    /// Transport time per output after the write call returns.
    pub movement_s: f64,
    /// If true, movement overlaps the next compute phase (asynchronous
    /// write, §II.C.2); if false it extends the critical path between
    /// production and analytics like a synchronous rendezvous.
    pub movement_async: bool,
    /// Analytics processing time per step at the allocated scale.
    pub analytics_s: f64,
    /// Steps that may be in flight before the simulation stalls
    /// (1 = fully synchronous hand-off; 2 = double buffering).
    pub queue_depth: usize,
}

/// Outputs of one pipeline run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineReport {
    /// End-to-end time: start of the simulation to the completion of the
    /// last analytics step — the paper's Total Execution Time.
    pub total_s: f64,
    /// Seconds the simulation spent computing cycles.
    pub sim_compute_s: f64,
    /// Seconds the simulation spent in visible I/O.
    pub sim_io_s: f64,
    /// Seconds the simulation spent stalled on backpressure.
    pub sim_stall_s: f64,
    /// Seconds of transport occupancy.
    pub movement_s: f64,
    /// Seconds the analytics spent busy.
    pub analytics_busy_s: f64,
    /// Seconds the analytics spent idle between steps (Fig. 7's "Idle").
    pub analytics_idle_s: f64,
}

impl PipelineReport {
    /// Analytics idle fraction of the total run (paper §IV.A.2: "analytics
    /// processes are idle for 67% of time").
    pub fn analytics_idle_fraction(&self) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            self.analytics_idle_s / self.total_s
        }
    }
}

/// Run the pipeline recurrence.
pub fn simulate_pipeline(p: &PipelineParams) -> PipelineReport {
    assert!(p.n_steps >= 1);
    assert!(p.queue_depth >= 1);
    let step_compute = p.cycles_per_step as f64 * p.sim_cycle_s;
    let mut produce_done = vec![0.0f64; p.n_steps as usize];
    let mut ana_done = vec![0.0f64; p.n_steps as usize];
    let mut stall_total = 0.0;
    let mut ana_busy = 0.0;
    let mut prev_produce = 0.0f64;
    let mut prev_ana_done = 0.0f64;
    for k in 0..p.n_steps as usize {
        // Backpressure: cannot start computing step k's cycles before the
        // analytics has drained step k - queue_depth.
        let accept = if k >= p.queue_depth { ana_done[k - p.queue_depth] } else { 0.0 };
        let start = prev_produce.max(accept);
        stall_total += start - prev_produce;
        let produced = start + step_compute + p.io_visible_s;
        produce_done[k] = produced;
        prev_produce = produced;

        let move_done = produced + p.movement_s;
        let ana_start = move_done.max(prev_ana_done);
        ana_done[k] = ana_start + p.analytics_s;
        ana_busy += p.analytics_s;
        prev_ana_done = ana_done[k];
    }
    let _ = p.movement_async; // same recurrence; asynchrony is reflected in
                              // how callers fold interference into
                              // `sim_cycle_s` vs `io_visible_s`.
    let total = prev_produce.max(prev_ana_done);
    let ana_span = prev_ana_done;
    PipelineReport {
        total_s: total,
        sim_compute_s: p.n_steps as f64 * step_compute,
        sim_io_s: p.n_steps as f64 * p.io_visible_s,
        sim_stall_s: stall_total,
        movement_s: p.n_steps as f64 * p.movement_s,
        analytics_busy_s: ana_busy,
        analytics_idle_s: (ana_span - ana_busy).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PipelineParams {
        PipelineParams {
            n_steps: 10,
            cycles_per_step: 2,
            sim_cycle_s: 1.0,
            io_visible_s: 0.1,
            movement_s: 0.2,
            movement_async: true,
            analytics_s: 0.5,
            queue_depth: 2,
        }
    }

    #[test]
    fn fast_analytics_never_stalls_simulation() {
        let r = simulate_pipeline(&base());
        assert_eq!(r.sim_stall_s, 0.0);
        // Total ≈ sim time + tail of the last step's movement+analytics.
        let sim_span = 10.0 * 2.1;
        assert!(r.total_s >= sim_span);
        assert!(r.total_s <= sim_span + 0.2 + 0.5 + 1e-9);
    }

    #[test]
    fn slow_analytics_backpressures() {
        let mut p = base();
        p.analytics_s = 5.0; // much slower than the 2.1 s production period
        let r = simulate_pipeline(&p);
        assert!(r.sim_stall_s > 0.0, "simulation must stall");
        // Steady state is analytics-bound: total ≈ n × analytics.
        assert!(r.total_s >= 10.0 * 5.0);
        assert!(r.analytics_idle_s < r.total_s * 0.2);
    }

    #[test]
    fn deeper_queue_reduces_stall() {
        let mut p = base();
        p.analytics_s = 3.0;
        p.queue_depth = 1;
        let shallow = simulate_pipeline(&p);
        p.queue_depth = 4;
        let deep = simulate_pipeline(&p);
        assert!(deep.sim_stall_s <= shallow.sim_stall_s);
        assert!(deep.total_s <= shallow.total_s + 1e-9);
    }

    #[test]
    fn idle_fraction_of_overprovisioned_analytics() {
        // Analytics much faster than production → mostly idle (the
        // paper's 67% idle observation for conservative allocation).
        let mut p = base();
        p.analytics_s = 0.3;
        let r = simulate_pipeline(&p);
        assert!(r.analytics_idle_fraction() > 0.5, "{}", r.analytics_idle_fraction());
    }

    #[test]
    fn movement_extends_tail_only_when_pipeline_is_balanced() {
        let quick = simulate_pipeline(&base());
        let mut p = base();
        p.movement_s = 2.0;
        let slow_move = simulate_pipeline(&p);
        assert!(slow_move.total_s > quick.total_s);
    }

    #[test]
    fn zero_overhead_case_is_pure_compute() {
        let p = PipelineParams {
            n_steps: 5,
            cycles_per_step: 4,
            sim_cycle_s: 0.5,
            io_visible_s: 0.0,
            movement_s: 0.0,
            movement_async: true,
            analytics_s: 0.0,
            queue_depth: 2,
        };
        let r = simulate_pipeline(&p);
        assert!((r.total_s - 10.0).abs() < 1e-12);
        assert_eq!(r.sim_stall_s, 0.0);
    }

    #[test]
    fn conservation_of_time() {
        let r = simulate_pipeline(&base());
        // Simulation-side accounting: compute + io + stall == produce end.
        let accounted = r.sim_compute_s + r.sim_io_s + r.sim_stall_s;
        assert!(accounted <= r.total_s + 1e-9);
    }
}
