//! # flexio-repro
//!
//! A from-scratch Rust reproduction of **"FlexIO: I/O Middleware for
//! Location-Flexible Scientific Data Analytics"** (Zheng et al.,
//! IPDPS 2013) — the middleware itself plus every substrate its
//! evaluation depends on. See `README.md` for the tour, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.
//!
//! This crate is the umbrella: it re-exports the workspace crates so the
//! examples and integration tests can use one coherent namespace.
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`flexio`] | `flexio` | the middleware (paper §II) |
//! | [`adios`] | `adios` | the ADIOS-like I/O API it extends |
//! | [`evpath`] | `evpath` | messaging + marshaling layer |
//! | [`codelet`] | `codelet` | Data Conditioning plug-in language |
//! | [`shm`] | `shm` | FastForward shared-memory transport |
//! | [`netsim`] | `netsim` | simulated RDMA interconnect |
//! | [`memsim`] | `memsim` | shared-cache / NUMA simulator |
//! | [`fssim`] | `fssim` | parallel-file-system simulator |
//! | [`machine`] | `machine` | Titan/Smoky machine models |
//! | [`placement`] | `placement` | the three placement policies (§III) |
//! | [`apps`] | `apps` | GTS / S3D skeletons and analytics (§IV) |
//! | [`dessim`] | `dessim` | scale-experiment co-simulation (§IV) |
//! | [`rankrt`] | `rankrt` | in-process rank runtime (MPI substitute) |

pub use adios;
pub use apps;
pub use codelet;
pub use dessim;
pub use evpath;
pub use flexio;
pub use fssim;
pub use machine;
pub use memsim;
pub use netsim;
pub use placement;
pub use rankrt;
pub use shm;
