//! Co-run interference: several workloads sharing one last-level cache.
//!
//! This is the machinery behind Fig. 8: run the simulation's address
//! stream alone through the L3 model, then co-run it with the helper-core
//! analytics stream, and compare misses-per-kilo-instruction. Interleaving
//! is proportional to each workload's access rate, modelling time-sharing
//! of the cache at fine grain.

use machine::CacheParams;

use crate::cache::CacheSim;
use crate::stream::{AccessPattern, AddressStream};

/// One co-running workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (also keys the report).
    pub name: String,
    /// Memory accesses per kilo-instruction (APKI); sets both the
    /// interleave ratio and the MPKI denominator.
    pub accesses_per_kilo_instruction: f64,
    /// The address pattern.
    pub pattern: AccessPattern,
}

/// Per-workload result of a co-run.
#[derive(Debug, Clone, PartialEq)]
pub struct CorunReport {
    /// Workload name.
    pub name: String,
    /// Simulated accesses.
    pub accesses: u64,
    /// L3 misses among them.
    pub misses: u64,
    /// Misses per kilo-instruction: `miss_ratio × APKI`.
    pub mpki: f64,
}

/// Co-run `workloads` on a shared cache of `params`, simulating
/// `total_accesses` interleaved accesses after a warmup of the same
/// volume. Accesses are interleaved in proportion to each workload's
/// APKI-weighted rate, deterministic round-robin over a proportional
/// schedule.
pub fn corun_mpki(
    params: CacheParams,
    workloads: &[Workload],
    total_accesses: u64,
) -> Vec<CorunReport> {
    assert!(!workloads.is_empty());
    let mut cache = CacheSim::new(params);
    let mut streams: Vec<AddressStream> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| w.pattern.clone().stream(0x5EED + i as u64))
        .collect();

    // Proportional schedule via largest-remainder accumulation.
    let rates: Vec<f64> = workloads.iter().map(|w| w.accesses_per_kilo_instruction).collect();
    let rate_sum: f64 = rates.iter().sum();
    let mut credit = vec![0.0f64; workloads.len()];
    let mut counts = vec![(0u64, 0u64); workloads.len()]; // (accesses, misses)

    let run = |n: u64,
               record: bool,
               cache: &mut CacheSim,
               streams: &mut [AddressStream],
               counts: &mut [(u64, u64)],
               credit: &mut [f64]| {
        for _ in 0..n {
            // Accumulate credit, then pick the workload with the most.
            for (c, rate) in credit.iter_mut().zip(&rates) {
                *c += rate / rate_sum;
            }
            let mut best = 0;
            for i in 1..credit.len() {
                if credit[i] > credit[best] {
                    best = i;
                }
            }
            credit[best] -= 1.0;
            let hit = cache.access(streams[best].next_addr());
            if record {
                counts[best].0 += 1;
                if !hit {
                    counts[best].1 += 1;
                }
            }
        }
    };

    // Warmup then measured phase.
    run(total_accesses, false, &mut cache, &mut streams, &mut counts, &mut credit);
    run(total_accesses, true, &mut cache, &mut streams, &mut counts, &mut credit);

    workloads
        .iter()
        .zip(&counts)
        .map(|(w, &(accesses, misses))| {
            let miss_ratio = if accesses == 0 { 0.0 } else { misses as f64 / accesses as f64 };
            CorunReport {
                name: w.name.clone(),
                accesses,
                misses,
                mpki: miss_ratio * w.accesses_per_kilo_instruction,
            }
        })
        .collect()
}

/// Convenience: run one workload alone (the "solo" baseline of Fig. 8).
pub fn solo_mpki(params: CacheParams, workload: &Workload, total_accesses: u64) -> CorunReport {
    corun_mpki(params, std::slice::from_ref(workload), total_accesses)
        .into_iter()
        .next()
        .expect("one workload yields one report")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l3() -> CacheParams {
        CacheParams::barcelona_l3() // 2 MiB shared L3 (Smoky)
    }

    fn resident_workload(name: &str, set_bytes: u64, apki: f64) -> Workload {
        Workload {
            name: name.to_string(),
            accesses_per_kilo_instruction: apki,
            pattern: AccessPattern::Resident { base: 0, set_bytes },
        }
    }

    fn streaming_workload(name: &str, region: u64, apki: f64) -> Workload {
        Workload {
            name: name.to_string(),
            accesses_per_kilo_instruction: apki,
            pattern: AccessPattern::Streaming { base: 1 << 40, region_bytes: region, stride: 64 },
        }
    }

    #[test]
    fn fitting_workload_has_near_zero_solo_mpki() {
        let w = resident_workload("fits", 1 << 20, 20.0); // 1 MiB in 2 MiB L3
        let report = solo_mpki(l3(), &w, 400_000);
        assert!(report.mpki < 0.5, "mpki={}", report.mpki);
    }

    #[test]
    fn streaming_workload_always_misses() {
        // A >cache streaming sweep with 64 B stride misses every line.
        let w = streaming_workload("stream", 64 << 20, 10.0);
        let report = solo_mpki(l3(), &w, 200_000);
        assert!(report.mpki > 9.0, "mpki={}", report.mpki);
    }

    #[test]
    fn corun_with_streamer_inflates_resident_mpki() {
        // The Fig. 8 effect: a resident workload that fits comfortably
        // solo suffers when a streaming co-runner pollutes the shared L3.
        let victim = resident_workload("sim", 1536 << 10, 20.0); // 1.5 MiB
        let polluter = streaming_workload("analytics", 32 << 20, 12.0);
        let solo = solo_mpki(l3(), &victim, 600_000);
        let corun = corun_mpki(l3(), &[victim, polluter], 1_200_000);
        let shared = &corun[0];
        assert_eq!(shared.name, "sim");
        assert!(
            shared.mpki > solo.mpki * 1.2,
            "corun mpki {} should exceed solo {} substantially",
            shared.mpki,
            solo.mpki
        );
    }

    #[test]
    fn interleave_respects_rates() {
        let a = resident_workload("a", 4096, 30.0);
        let b = resident_workload("b", 4096, 10.0);
        let reports = corun_mpki(l3(), &[a, b], 400_000);
        let ratio = reports[0].accesses as f64 / reports[1].accesses as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio={ratio}");
    }
}
