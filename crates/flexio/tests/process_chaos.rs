//! Cross-process chaos battery: a writer rank, a reader group and a
//! 3-node directory cluster run as *separate OS processes* over real
//! sockets, and the test kills one of them with `SIGKILL` mid-step.
//!
//! The parent watches each child's flushed stdout lines (`DIRADDR`,
//! `WORKER step=N`, `RESULT ...`) to time the kill and to collect final
//! protocol counters. A killed process is pure silence on the wire —
//! exactly what the eviction (writer side) and EOS-synthesis (reader
//! side) machinery must absorb.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use rankrt::{spawn_ranks, RankProc};

const BIN: &str = env!("CARGO_BIN_EXE_flexio-worker");
const DEADLINE: Duration = Duration::from_secs(90);

/// Child processes that must not outlive the test (directory nodes serve
/// forever; workers might wedge on a bug).
struct Group {
    procs: Vec<RankProc>,
}

impl Drop for Group {
    fn drop(&mut self) {
        for p in &mut self.procs {
            let _ = p.child.kill();
            let _ = p.child.wait();
        }
    }
}

impl Group {
    fn kill(&mut self, rank: usize) {
        let p = &mut self.procs[rank];
        p.child.kill().expect("SIGKILL delivered");
        let _ = p.child.wait();
    }
}

/// A progress line from one child.
#[derive(Debug)]
struct Event {
    role: &'static str,
    rank: usize,
    line: String,
}

/// Start the 3-node directory cluster: read each node's announced
/// address, then bootstrap every node with the full peer list.
fn start_directory(kind: &str) -> (Group, String) {
    let envs = vec![("FLEXIO_SOCK".to_string(), kind.to_string())];
    let mut procs = spawn_ranks(BIN, "dirnode", 3, &envs).expect("spawn dirnodes");
    let mut addrs = Vec::new();
    for p in &mut procs {
        let stdout = p.child.stdout.as_mut().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("dirnode announces");
        let addr = line.trim().strip_prefix("DIRADDR ").expect("DIRADDR line");
        addrs.push(addr.to_string());
    }
    for addr in &addrs {
        flexio::send_peer_list(addr, &addrs).expect("peer bootstrap");
    }
    (Group { procs }, addrs.join(","))
}

/// Spawn a worker rank group and feed its stdout lines into `tx`.
fn start_workers(
    role: &'static str,
    nranks: usize,
    envs: &[(String, String)],
    tx: &Sender<Event>,
) -> Group {
    let mut procs = spawn_ranks(BIN, role, nranks, envs).expect("spawn workers");
    for p in &mut procs {
        let stdout = p.child.stdout.take().expect("stdout piped");
        let rank = p.rank;
        let tx = tx.clone();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                let _ = tx.send(Event { role, rank, line });
            }
        });
    }
    Group { procs }
}

fn worker_envs(
    kind: &str,
    stream: &str,
    dir_addrs: &str,
    steps: u64,
    step_ms: u64,
) -> Vec<(String, String)> {
    [
        ("FLEXIO_SOCK", kind),
        ("FLEXIO_STREAM", stream),
        ("FLEXIO_DIR_ADDRS", dir_addrs),
        ("FLEXIO_STEPS", &steps.to_string()),
        ("FLEXIO_STEP_MS", &step_ms.to_string()),
        ("FLEXIO_TIMEOUT_MS", "400"),
        ("FLEXIO_DIR_GOSSIP_MS", "20"),
    ]
    .iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect()
}

/// `RESULT role=writer rank=0 steps=4 ...` → field map.
fn parse_result(line: &str) -> HashMap<String, String> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn field(result: &HashMap<String, String>, key: &str) -> u64 {
    result.get(key).and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("field {key}"))
}

fn next_event(rx: &Receiver<Event>, deadline: Instant) -> Event {
    let now = Instant::now();
    assert!(now < deadline, "chaos scenario timed out");
    rx.recv_timeout(deadline - now).expect("children still talking")
}

fn pubsub_envs(
    stream: &str,
    spill: &std::path::Path,
    steps: u64,
    step_ms: u64,
) -> Vec<(String, String)> {
    [
        ("FLEXIO_STREAM", stream),
        ("FLEXIO_SPILL", &spill.display().to_string()),
        ("FLEXIO_REPLAY", "2"),
        ("FLEXIO_STEPS", &steps.to_string()),
        ("FLEXIO_STEP_MS", &step_ms.to_string()),
        ("FLEXIO_TIMEOUT_MS", "400"),
    ]
    .iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect()
}

/// Kill -9 a pub/sub reader group mid-replay: its durable cursor (written
/// at each commit, before the step is narrated) survives the kill, so a
/// restarted group with the same name resumes exactly where it committed
/// and the two incarnations together deliver every step — zero lost under
/// lossless QoS.
#[test]
fn killing_a_subscriber_mid_replay_resumes_from_its_durable_cursor() {
    const STEPS: u64 = 8;
    let spill = std::env::temp_dir().join(format!("flexio-chaos-sub-{}", std::process::id()));
    std::fs::remove_dir_all(&spill).ok();
    let envs = pubsub_envs("chaos-sub-kill", &spill, STEPS, 150);
    let (tx, rx) = channel();
    let _publisher = start_workers("publisher", 1, &envs, &tx);

    let deadline = Instant::now() + DEADLINE;
    // Wait for the first sealed step so the spill directory exists, then
    // start the subscriber.
    loop {
        let ev = next_event(&rx, deadline);
        if ev.role == "publisher" && ev.line == "WORKER step=0" {
            break;
        }
    }
    let mut subs = start_workers("subscriber", 1, &envs, &tx);

    // Kill the subscriber right after it commits (and narrates) step 2.
    let mut killed = false;
    let mut results: HashMap<(&'static str, usize), HashMap<String, String>> = HashMap::new();
    while !results.contains_key(&("publisher", 0)) {
        let ev = next_event(&rx, deadline);
        if !killed && ev.role == "subscriber" && ev.line == "WORKER step=2" {
            subs.kill(0);
            killed = true;
        }
        if ev.line.starts_with("RESULT ") {
            results.insert((ev.role, ev.rank), parse_result(&ev.line));
        }
    }
    assert!(killed, "subscriber progressed far enough to be killed");
    let publisher = &results[&("publisher", 0)];
    assert_eq!(
        field(publisher, "steps"),
        STEPS,
        "the kill never touches the writer: {publisher:?}"
    );
    assert_eq!(field(publisher, "spilled"), STEPS, "write-through spill retains every step");

    // Restart the group under the same name: it must resume from the
    // durable cursor and drain the remainder out of the BP spill.
    let _subs2 = start_workers("subscriber", 1, &envs, &tx);
    while !results.contains_key(&("subscriber", 0)) {
        let ev = next_event(&rx, deadline);
        if ev.line.starts_with("RESULT ") {
            results.insert((ev.role, ev.rank), parse_result(&ev.line));
        }
    }
    let sub = &results[&("subscriber", 0)];
    let resumed = field(sub, "resumed");
    assert!(resumed >= 3, "step 2 was committed before the kill: {sub:?}");
    assert_eq!(field(sub, "first"), resumed, "restart picks up exactly at the cursor: {sub:?}");
    assert_eq!(field(sub, "steps"), STEPS - resumed, "no step delivered twice or lost: {sub:?}");
    assert_eq!(field(sub, "replayed"), STEPS - resumed, "the remainder came from BP spill");
    assert_eq!(field(sub, "eos_synth"), 0, "closed stream ends cleanly: {sub:?}");
    std::fs::remove_dir_all(&spill).ok();
}

/// Kill -9 the pub/sub publisher mid-stream: the spill manifest is never
/// finalized, so the tailing group drains every step sealed before the
/// kill and then synthesizes end-of-stream off writer silence.
#[test]
fn killing_the_publisher_leaves_subscribers_draining_spilled_steps_to_eos() {
    const STEPS: u64 = 6;
    let spill = std::env::temp_dir().join(format!("flexio-chaos-pub-{}", std::process::id()));
    std::fs::remove_dir_all(&spill).ok();
    let envs = pubsub_envs("chaos-pub-kill", &spill, STEPS, 300);
    let (tx, rx) = channel();
    let mut publisher = start_workers("publisher", 1, &envs, &tx);

    let deadline = Instant::now() + DEADLINE;
    loop {
        let ev = next_event(&rx, deadline);
        if ev.role == "publisher" && ev.line == "WORKER step=0" {
            break;
        }
    }
    let _subs = start_workers("subscriber", 1, &envs, &tx);

    let mut killed = false;
    let mut results: HashMap<(&'static str, usize), HashMap<String, String>> = HashMap::new();
    while !results.contains_key(&("subscriber", 0)) {
        let ev = next_event(&rx, deadline);
        if !killed && ev.role == "publisher" && ev.line == "WORKER step=1" {
            publisher.kill(0);
            killed = true;
        }
        if ev.line.starts_with("RESULT ") {
            results.insert((ev.role, ev.rank), parse_result(&ev.line));
        }
    }
    assert!(killed, "publisher progressed far enough to be killed");
    let sub = &results[&("subscriber", 0)];
    let steps = field(sub, "steps");
    assert!(steps >= 2, "steps sealed before the kill are delivered: {sub:?}");
    assert!(steps < STEPS, "the subscriber cannot see steps that never sealed: {sub:?}");
    assert!(field(sub, "eos_synth") >= 1, "writer silence synthesizes EOS: {sub:?}");
    std::fs::remove_dir_all(&spill).ok();
}

/// Kill -9 a reader rank mid-step: the writer must evict the silent
/// reader after ack timeouts, re-plan the MxN distribution around it, and
/// still complete every remaining step (degraded); the surviving reader
/// must observe all steps and a clean end-of-stream.
#[test]
fn killing_a_reader_rank_evicts_it_and_the_step_loop_completes() {
    let (_dirs, dir_addrs) = start_directory("tcp");
    let envs = worker_envs("tcp", "chaos-reader-kill", &dir_addrs, 4, 200);
    let (tx, rx) = channel();
    let _writers = start_workers("writer", 1, &envs, &tx);
    let mut readers = start_workers("reader", 2, &envs, &tx);

    let deadline = Instant::now() + DEADLINE;
    let mut killed = false;
    let mut results: HashMap<(&'static str, usize), HashMap<String, String>> = HashMap::new();
    while !(results.contains_key(&("writer", 0)) && results.contains_key(&("reader", 0))) {
        let ev = next_event(&rx, deadline);
        if !killed && ev.role == "reader" && ev.rank == 1 && ev.line.starts_with("WORKER step=") {
            readers.kill(1);
            killed = true;
        }
        if ev.line.starts_with("RESULT ") {
            results.insert((ev.role, ev.rank), parse_result(&ev.line));
        }
    }
    assert!(killed, "reader rank 1 progressed far enough to be killed");

    let writer = &results[&("writer", 0)];
    assert_eq!(field(writer, "steps"), 4, "writer completed every step");
    assert!(field(writer, "evictions") >= 1, "silent reader was evicted: {writer:?}");
    assert!(field(writer, "degraded") >= 1, "steps after the kill ran degraded: {writer:?}");

    let survivor = &results[&("reader", 0)];
    assert_eq!(field(survivor, "steps"), 4, "surviving reader saw every step");
    assert_eq!(field(survivor, "eos_synth"), 0, "writer closed cleanly, no synthesized EOS");
}

/// Scale-out under fire: rank 0 starts as the lone active elastic
/// reader over a provisioned pool of 3 rank slots, commits a scale-out
/// to the full pool after step 1 — and one of the newly-added members is
/// `kill -9`'d right after attaching, before its first step. The
/// coordinator's sub-gather must time out on the dead member, evict it,
/// re-plan the MxN distribution around it and complete every step; the
/// surviving member joins mid-run and rides to a clean EOS.
#[test]
fn killing_a_newly_added_elastic_rank_evicts_it_and_the_run_completes() {
    const STEPS: u64 = 8;
    let (_dirs, dir_addrs) = start_directory("tcp");
    let mut envs = worker_envs("tcp", "chaos-elastic-kill", &dir_addrs, STEPS, 150);
    // Elastic membership rides the per-step re-gather/re-plan handshake.
    envs.push(("FLEXIO_CACHING".to_string(), "none".to_string()));
    // The writer must outwait the reader coordinator's eviction stall
    // (the gather burns its full timeout × retries budget on the dead
    // member before evicting), so its own patience is set well above it.
    let mut writer_envs_ = envs.clone();
    for (k, v) in &mut writer_envs_ {
        if k == "FLEXIO_TIMEOUT_MS" {
            *v = "2000".to_string();
        }
    }
    let (tx, rx) = channel();
    let _writers = start_workers("writer", 1, &writer_envs_, &tx);
    let mut elastics = start_workers("elastic", 3, &envs, &tx);

    let deadline = Instant::now() + DEADLINE;
    let mut killed = false;
    let mut victim_stepped = false;
    let mut results: HashMap<(&'static str, usize), HashMap<String, String>> = HashMap::new();
    while !(results.contains_key(&("elastic", 0)) && results.contains_key(&("elastic", 1))) {
        let ev = next_event(&rx, deadline);
        if ev.role == "elastic" && ev.rank == 2 {
            if ev.line.starts_with("WORKER step=") {
                victim_stepped = true;
            }
            if !killed && ev.line == "WORKER attached" {
                elastics.kill(2);
                killed = true;
            }
        }
        if ev.line.starts_with("RESULT ") {
            results.insert((ev.role, ev.rank), parse_result(&ev.line));
        }
    }
    assert!(killed, "the victim rank announced its attach");
    assert!(!victim_stepped, "rank 2 must die before completing its first step");

    let coord = &results[&("elastic", 0)];
    assert_eq!(field(coord, "steps"), STEPS, "no dropped steps despite the eviction: {coord:?}");
    assert!(field(coord, "evictions") >= 1, "dead member was evicted: {coord:?}");
    assert!(field(coord, "degraded") >= 1, "the eviction step ran degraded: {coord:?}");
    assert_eq!(field(coord, "eos_synth"), 0, "writers closed cleanly: {coord:?}");

    let survivor = &results[&("elastic", 1)];
    let joined = field(survivor, "steps");
    assert!(joined >= 1, "surviving member joined mid-run: {survivor:?}");
    assert!(
        joined <= STEPS - 3,
        "scale-out commits at a step boundary, two steps after the resize: {survivor:?}"
    );
    assert_eq!(field(survivor, "eos_synth"), 0, "survivor got a real EOS fan-out: {survivor:?}");
}

/// Kill -9 the writer between steps: the reader coordinator's control
/// channel goes silent, so it must synthesize end-of-stream and forward
/// it to every reader rank — both readers exit cleanly having seen only
/// the steps produced before the kill.
#[test]
fn killing_the_writer_synthesizes_eos_for_all_readers() {
    let (_dirs, dir_addrs) = start_directory("uds");
    let envs = worker_envs("uds", "chaos-writer-kill", &dir_addrs, 6, 300);
    let (tx, rx) = channel();
    let mut writers = start_workers("writer", 1, &envs, &tx);
    let _readers = start_workers("reader", 2, &envs, &tx);

    let deadline = Instant::now() + DEADLINE;
    let mut killed = false;
    let mut results: HashMap<(&'static str, usize), HashMap<String, String>> = HashMap::new();
    while !(results.contains_key(&("reader", 0)) && results.contains_key(&("reader", 1))) {
        let ev = next_event(&rx, deadline);
        if !killed && ev.role == "writer" && ev.line == "WORKER step=1" {
            writers.kill(0);
            killed = true;
        }
        if ev.line.starts_with("RESULT ") {
            results.insert((ev.role, ev.rank), parse_result(&ev.line));
        }
    }
    assert!(killed, "writer progressed far enough to be killed");

    for rank in 0..2 {
        let reader = &results[&("reader", rank)];
        let steps = field(reader, "steps");
        assert!(steps >= 2, "reader {rank} kept the steps before the kill: {reader:?}");
        assert!(steps < 6, "reader {rank} cannot have seen steps after the kill: {reader:?}");
    }
    let coord = &results[&("reader", 0)];
    assert!(field(coord, "eos_synth") >= 1, "coordinator synthesized EOS: {coord:?}");
}
