//! Exhaustive XML-hint round trip: one config setting every key in
//! [`HintKey::ALL`] to a non-default value, asserting each parsed field
//! changed accordingly. This is the regression fence for the class of
//! bug where a hint is documented but silently ignored by `from_config`
//! (as `inline_capacity` and `packed_marshal` once were).

use std::path::Path;
use std::time::Duration;

use adios::IoConfig;
use flexio::{
    CachingLevel, DirectoryConfig, ElasticConfig, HintKey, PubSubConfig, Qos, QueryConfig, Runtime,
    StreamHints, Transport, WriteMode,
};

/// The non-default value each key is set to in the round-trip config.
/// (`runtime`'s default is environment-sensitive — `FLEXIO_RUNTIME`
/// overrides it — so its non-default is computed, not hardcoded.)
fn nondefault_value(key: HintKey) -> &'static str {
    match key {
        HintKey::Caching => "CACHING_ALL",
        HintKey::Batching => "true",
        // Default write mode is Async, so the non-default is sync.
        HintKey::Async => "false",
        HintKey::QueueEntries => "7",
        HintKey::InlineCapacity => "9000",
        HintKey::TimeoutMs => "1234",
        HintKey::Retries => "9",
        HintKey::Transactional => "true",
        HintKey::EosOnSilence => "true",
        HintKey::PackedMarshal => "false",
        HintKey::Runtime => match StreamHints::default().runtime {
            Runtime::Reactor => "blocking",
            _ => "reactor",
        },
        HintKey::RuntimeThreads => "6",
        HintKey::FaultSeed => "77",
        // Like `runtime`, the transport default is environment-sensitive
        // (`FLEXIO_TRANSPORT`), so pick whichever value it is not.
        HintKey::TransportSel => match StreamHints::default().transport {
            Transport::Tcp => "uds",
            _ => "tcp",
        },
        HintKey::NetConnectMs => "777",
        HintKey::NetMaxFrameMb => "64",
        HintKey::DirectoryShards => "16",
        HintKey::DirectoryNodes => "3",
        HintKey::DirectoryGossipMs => "25",
        HintKey::PubsubGroups => "5",
        HintKey::PubsubReplaySteps => "3",
        HintKey::PubsubSpillDir => "/tmp/flexio-pubsub-hint",
        HintKey::PubsubQos => "latest",
        HintKey::QueryPushdown => "false",
        HintKey::QueryWindowSteps => "4",
        HintKey::QueryMaxRows => "99",
        HintKey::QueryOracle => "true",
        HintKey::ElasticIntervalMs => "40",
        HintKey::ElasticMinReaders => "2",
        HintKey::ElasticMaxReaders => "6",
        HintKey::ElasticTargetLag => "5",
    }
}

#[test]
fn every_hint_key_round_trips_through_xml() {
    let hints_xml: String = HintKey::ALL
        .iter()
        .map(|&k| format!(r#"<hint name="{}" value="{}"/>"#, k.as_str(), nondefault_value(k)))
        .collect();
    let xml = format!(
        r#"<adios-config><group name="g"><method transport="STREAM">{hints_xml}</method></group></adios-config>"#
    );
    let cfg = IoConfig::from_xml(&xml).unwrap();
    let group = cfg.group("g").unwrap();

    let h = StreamHints::from_config(group);
    assert_eq!(h.caching, CachingLevel::CachingAll);
    assert!(h.batching);
    assert_eq!(h.write_mode, WriteMode::Sync);
    assert_eq!(h.queue_entries, 7);
    assert_eq!(h.inline_capacity, 9000, "inline_capacity hint must be parsed");
    assert_eq!(h.recv_timeout, Duration::from_millis(1234));
    assert_eq!(h.retries, 9);
    assert!(h.transactional);
    assert!(h.eos_on_silence);
    assert!(!h.packed_marshal, "packed_marshal hint must be parsed");
    let expected_rt = match StreamHints::default().runtime {
        Runtime::Reactor => Runtime::Blocking,
        _ => Runtime::Reactor,
    };
    assert_eq!(h.runtime, expected_rt);
    assert_eq!(h.runtime_threads, 6, "runtime.threads hint must be parsed");
    assert_eq!(h.faults.as_ref().expect("fault.seed enables the plan").seed(), 77);
    let expected_tp = match StreamHints::default().transport {
        Transport::Tcp => Transport::Uds,
        _ => Transport::Tcp,
    };
    assert_eq!(h.transport, expected_tp);
    assert_eq!(h.net_connect_timeout, Duration::from_millis(777));
    assert_eq!(h.net_max_frame, 64 << 20, "net.max_frame_mb is in MiB");

    let d = DirectoryConfig::from_config(group);
    assert_eq!(d.shards, 16);
    assert_eq!(d.nodes, 3);
    assert_eq!(d.gossip_interval, Duration::from_millis(25));

    let p = PubSubConfig::from_config(group);
    assert_eq!(p.groups, 5);
    assert_eq!(p.replay_steps, 3);
    assert_eq!(p.spill_dir.as_deref(), Some(Path::new("/tmp/flexio-pubsub-hint")));
    assert_eq!(p.qos, Qos::LatestOnly);

    let q = QueryConfig::from_config(group);
    assert!(!q.pushdown, "query.pushdown hint must be parsed");
    assert_eq!(q.window_steps, 4);
    assert_eq!(q.max_rows, 99);
    assert!(q.oracle, "query.oracle hint must be parsed");

    let e = ElasticConfig::from_config(group);
    assert_eq!(e.interval, Duration::from_millis(40));
    assert_eq!(e.min_readers, 2);
    assert_eq!(e.max_readers, 6);
    assert_eq!(e.target_lag, 5);

    // Each asserted value differs from the default, so a silently
    // ignored key cannot pass by accident.
    let defaults = StreamHints::default();
    assert_ne!(h.caching, defaults.caching);
    assert_ne!(h.batching, defaults.batching);
    assert_ne!(h.write_mode, defaults.write_mode);
    assert_ne!(h.queue_entries, defaults.queue_entries);
    assert_ne!(h.inline_capacity, defaults.inline_capacity);
    assert_ne!(h.recv_timeout, defaults.recv_timeout);
    assert_ne!(h.retries, defaults.retries);
    assert_ne!(h.transactional, defaults.transactional);
    assert_ne!(h.eos_on_silence, defaults.eos_on_silence);
    assert_ne!(h.packed_marshal, defaults.packed_marshal);
    assert_ne!(h.runtime, defaults.runtime);
    assert_ne!(h.runtime_threads, defaults.runtime_threads);
    assert_ne!(h.transport, defaults.transport);
    assert_ne!(h.net_connect_timeout, defaults.net_connect_timeout);
    assert_ne!(h.net_max_frame, defaults.net_max_frame);
    assert!(defaults.faults.is_none());
    let ddef = DirectoryConfig::default();
    assert_ne!(d.shards, ddef.shards);
    assert_ne!(d.nodes, ddef.nodes);
    assert_ne!(d.gossip_interval, ddef.gossip_interval);
    let pdef = PubSubConfig::default();
    assert_ne!(p.groups, pdef.groups);
    assert_ne!(p.replay_steps, pdef.replay_steps);
    assert_ne!(p.spill_dir, pdef.spill_dir);
    assert_ne!(p.qos, pdef.qos);
    let qdef = QueryConfig::default();
    assert_ne!(q.pushdown, qdef.pushdown);
    assert_ne!(q.window_steps, qdef.window_steps);
    assert_ne!(q.max_rows, qdef.max_rows);
    assert_ne!(q.oracle, qdef.oracle);
    let edef = ElasticConfig::default();
    assert_ne!(e.interval, edef.interval);
    assert_ne!(e.min_readers, edef.min_readers);
    assert_ne!(e.max_readers, edef.max_readers);
    assert_ne!(e.target_lag, edef.target_lag);
}

#[test]
fn builder_mirrors_the_parsed_config() {
    // The fluent builder must be able to express everything the XML can
    // (minus the fault plan's seed, which it takes pre-built).
    let h = StreamHints::builder()
        .caching(CachingLevel::CachingAll)
        .batching(true)
        .write_mode(WriteMode::Sync)
        .queue_entries(7)
        .inline_capacity(9000)
        .recv_timeout(Duration::from_millis(1234))
        .retries(9)
        .transactional(true)
        .eos_on_silence(true)
        .packed_marshal(false)
        .runtime(Runtime::Reactor)
        .runtime_threads(6)
        .transport(Transport::Uds)
        .net_connect_timeout(Duration::from_millis(777))
        .net_max_frame(64 << 20)
        .build();
    assert_eq!(h.caching, CachingLevel::CachingAll);
    assert!(h.batching);
    assert_eq!(h.write_mode, WriteMode::Sync);
    assert_eq!(h.queue_entries, 7);
    assert_eq!(h.inline_capacity, 9000);
    assert_eq!(h.recv_timeout, Duration::from_millis(1234));
    assert_eq!(h.retries, 9);
    assert!(h.transactional);
    assert!(h.eos_on_silence);
    assert!(!h.packed_marshal);
    assert_eq!(h.runtime, Runtime::Reactor);
    assert_eq!(h.runtime_threads, 6);
    assert_eq!(h.transport, Transport::Uds);
    assert_eq!(h.net_connect_timeout, Duration::from_millis(777));
    assert_eq!(h.net_max_frame, 64 << 20);
}
