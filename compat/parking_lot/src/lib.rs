//! Offline shim for the subset of `parking_lot` this workspace uses:
//! [`Mutex`], [`MutexGuard`], [`RwLock`] and [`Condvar`] with
//! `parking_lot`-style non-poisoning semantics, implemented over `std::sync`.
//!
//! The build environment resolves all dependencies from the workspace
//! itself, so this crate stands in for the crates-io `parking_lot`. The
//! semantic differences that matter here are preserved: `lock()` returns a
//! guard directly (a poisoned `std` lock is transparently recovered), and
//! `Condvar::wait*` take `&mut MutexGuard` instead of consuming the guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Non-poisoning mutex (std-backed).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` can temporarily take the std guard out while
    // waiting (std's wait consumes and returns the guard).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow of the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cvar.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
