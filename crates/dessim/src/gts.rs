//! The GTS coupled-analytics scenario (paper §IV.A, Figs. 6 and 7).
//!
//! Calibration, from the paper's own measurements:
//!
//! * inline analytics weighs **23.6%** of GTS runtime (§IV.A.1 / Fig. 7
//!   case 2), i.e. per-step analysis work ≈ 0.309 × the two-cycle compute;
//! * taking one core of four from a GTS process slows it **2.7%** (the
//!   serial main-thread regions keep the lost core underused);
//! * sharing the L3 with helper-core analytics costs another **4.1%**
//!   (Fig. 8's 47% L3-miss inflation, fed back into cycle time);
//! * asynchronous staging movement is tuned "to keep the GTS slowdown
//!   under 15%";
//! * production output is **110 MB per process every two cycles**.
//!
//! Cycle time is normalized to 30 s (a production gyrokinetic step is
//! tens of seconds), which puts the staging transport times and compute
//! times in the paper's regime. Shapes — who wins, by how much, where the
//! curves sit relative to the lower bound — are the reproduction target,
//! not absolute seconds.

use machine::MachineModel;
use placement::{allocate_sync, AnalyticsScaling, PolicyKind};

use crate::pipeline::{simulate_pipeline, PipelineParams};
use crate::{Outcome, Placement};

/// Scale point of a GTS run.
#[derive(Debug, Clone)]
pub struct GtsScale {
    /// Machine model (Smoky or Titan presets).
    pub machine: MachineModel,
    /// Cores allocated to the GTS job (the figures' x axis).
    pub sim_cores: usize,
    /// Output steps simulated.
    pub steps: u64,
}

/// Per-machine GTS configuration constants.
struct GtsConsts {
    /// Seconds per cycle at full threads.
    cycle_s: f64,
    /// MPI processes per node (inline threading).
    procs_per_node: usize,
    /// Relative cycle-time cost of surrendering helper cores.
    helper_thread_penalty: f64,
    /// Relative cycle-time cost of L3 sharing with helper analytics.
    cache_interference: f64,
    /// Per-process output bytes per step.
    output_bytes: f64,
    /// Analysis work per process per step, seconds (single core).
    ana_work_s: f64,
}

fn consts_for(machine: &MachineModel) -> GtsConsts {
    let cycle_s = 30.0;
    // Inline analysis = 23.6% of runtime => work = 0.236/0.764 × 2 cycles.
    let ana_work_s = 0.236 / 0.764 * 2.0 * cycle_s;
    if machine.name == "titan" {
        GtsConsts {
            cycle_s,
            procs_per_node: 2,            // 8 OpenMP threads per process (16 cores)
            helper_thread_penalty: 1.020, // 7 threads instead of 8
            cache_interference: 1.030,    // 8 MiB L3 absorbs more of the scan
            output_bytes: 110e6,
            ana_work_s,
        }
    } else {
        GtsConsts {
            cycle_s,
            procs_per_node: 4,            // 4 OpenMP threads per process (16 cores)
            helper_thread_penalty: 1.027, // paper: 2.7% from 4→3 threads
            cache_interference: 1.041,    // paper: 4.1% cycle inflation
            output_bytes: 110e6,
            ana_work_s,
        }
    }
}

/// Scale-dependent penalty of the two cruder binding policies relative to
/// node-topology-aware placement (paper §IV.A.1: up to 7.0% for holistic,
/// up to 9.5% for data-aware, growing with scale as NUMA-crossing bindings
/// multiply). Verified against the real algorithms in `placement` by the
/// `policies_order_consistently` test.
fn policy_penalty(policy: PolicyKind, machine: &MachineModel, sim_cores: usize) -> f64 {
    let f = ((sim_cores as f64).log2() / (4096f64).log2()).clamp(0.2, 1.0);
    let (holistic_max, data_aware_max) = if machine.name == "titan" {
        (0.040, 0.055) // 2 NUMA domains: fewer ways to cross them
    } else {
        (0.070, 0.095) // paper's Smoky numbers
    };
    match policy {
        PolicyKind::TopologyAware => 0.0,
        PolicyKind::Holistic => holistic_max * f,
        PolicyKind::DataAware => data_aware_max * f,
    }
}

/// Weak-scaling collective overhead shared by every placement (global
/// sums in the push phase grow logarithmically with process count).
fn collective_factor(procs: usize) -> f64 {
    1.0 + 0.004 * (procs.max(1) as f64).log2()
}

/// Evaluate one `(scale, placement)` point.
pub fn gts_outcome(scale: &GtsScale, placement: Placement) -> Outcome {
    let m = &scale.machine;
    let c = consts_for(m);
    let cores_per_node = m.node.cores_per_node();
    assert!(scale.sim_cores.is_multiple_of(cores_per_node), "whole nodes only");
    let sim_nodes = scale.sim_cores / cores_per_node;
    let procs = sim_nodes * c.procs_per_node;
    let coll = collective_factor(procs);
    let period_compute = |cycle_s: f64| 2.0 * cycle_s * coll;

    let (params, nodes_used, inter_bytes, intra_bytes) = match placement {
        Placement::LowerBound => (
            PipelineParams {
                n_steps: scale.steps,
                cycles_per_step: 2,
                sim_cycle_s: c.cycle_s * coll,
                io_visible_s: 0.0,
                movement_s: 0.0,
                movement_async: true,
                analytics_s: 0.0,
                queue_depth: 2,
            },
            sim_nodes,
            0.0,
            0.0,
        ),
        Placement::Inline => (
            PipelineParams {
                n_steps: scale.steps,
                cycles_per_step: 2,
                sim_cycle_s: c.cycle_s * coll,
                // The write call IS the analysis: direct function call.
                io_visible_s: c.ana_work_s,
                movement_s: 0.0,
                movement_async: false,
                analytics_s: 0.0,
                queue_depth: 1,
            },
            sim_nodes,
            0.0,
            0.0,
        ),
        Placement::HelperCore(policy) => {
            let penalty = 1.0 + policy_penalty(policy, m, scale.sim_cores);
            let cycle = c.cycle_s * c.helper_thread_penalty * c.cache_interference * penalty * coll;
            // Two-copy shared-memory handoff, charged to the write call.
            let io = c.output_bytes * 2.0 / m.node.local_copy_bw;
            (
                PipelineParams {
                    n_steps: scale.steps,
                    cycles_per_step: 2,
                    sim_cycle_s: cycle,
                    io_visible_s: io,
                    movement_s: 0.0,
                    movement_async: true,
                    // One helper core per process handles that process's
                    // output (the paper's 4 helpers per Smoky node).
                    analytics_s: c.ana_work_s,
                    queue_depth: 2,
                },
                sim_nodes,
                0.0,
                procs as f64 * c.output_bytes * scale.steps as f64,
            )
        }
        Placement::Staging(_policy) => {
            // Resource allocation: scale analytics to the generation rate
            // (paper §III.B.2, synchronous-variant matching).
            let scaling = AnalyticsScaling {
                serial_s: 0.05 * c.ana_work_s,
                parallel_s: procs as f64 * c.ana_work_s,
            };
            let interval = period_compute(c.cycle_s);
            let n_ana = allocate_sync(&scaling, interval, procs.max(1)).unwrap_or(procs.max(1));
            let staging_nodes = n_ana.div_ceil(cores_per_node).max(1);
            // Receiver-directed Gets into few staging NICs: incast
            // contention bounds throughput.
            let flows_per_nic = (sim_nodes as f64 / staging_nodes as f64).max(1.0);
            let bw = m.interconnect.link_bw
                / (1.0 + m.interconnect.contention_factor * (flows_per_nic - 1.0));
            let data_per_staging_node = procs as f64 * c.output_bytes / staging_nodes as f64;
            let movement = data_per_staging_node / bw;
            // Asynchronous bulk movement interferes with GTS's MPI; the
            // paper tunes scheduling to keep the slowdown under 15%.
            let interference = 1.0 + (0.02 * (sim_nodes.max(2) as f64).log2()).min(0.15);
            (
                PipelineParams {
                    n_steps: scale.steps,
                    cycles_per_step: 2,
                    sim_cycle_s: c.cycle_s * interference * coll,
                    io_visible_s: 0.05, // async write call returns at once
                    movement_s: movement,
                    movement_async: true,
                    analytics_s: scaling.time_on(n_ana),
                    // FlexIO's buffer pool holds several asynchronous
                    // steps in flight before backpressuring the writer.
                    queue_depth: 4,
                },
                sim_nodes + staging_nodes,
                procs as f64 * c.output_bytes * scale.steps as f64,
                0.0,
            )
        }
        Placement::Hybrid => unreachable!("Hybrid is an S3D outcome (paper §IV.B.2)"),
    };

    let report = simulate_pipeline(&params);
    Outcome {
        placement,
        sim_cores: scale.sim_cores,
        nodes_used,
        total_s: report.total_s,
        cpu_hours: placement::cpu_hours(nodes_used, report.total_s),
        inter_node_bytes: inter_bytes,
        intra_node_bytes: intra_bytes,
        report,
    }
}

/// The Fig. 7 detailed-timing cases at 128 MPI processes on Smoky:
/// returns `(label, cycle1_s, cycle2_s, io_s, analysis_s, idle_s)` per
/// step for Case 1 (helper core, 3 threads), Case 2 (inline, 4 threads)
/// and Case 3 (solo, 3 threads).
pub fn gts_fig7_cases(machine: &MachineModel) -> Vec<(String, f64, f64, f64, f64, f64)> {
    let c = consts_for(machine);
    let coll = collective_factor(128);
    let mut rows = Vec::new();
    // Case 1: helper core (3 OpenMP threads), analytics co-resident.
    {
        let cycle = c.cycle_s * c.helper_thread_penalty * c.cache_interference * coll;
        let io = c.output_bytes * 2.0 / machine.node.local_copy_bw;
        let analysis = c.ana_work_s;
        let period = 2.0 * cycle + io;
        let idle = (period - analysis).max(0.0);
        rows.push((
            "Case 1: GTS (3 OpenMP) + analytics on helper core".to_string(),
            cycle,
            cycle,
            io,
            analysis,
            idle,
        ));
    }
    // Case 2: inline (4 OpenMP threads), analytics called directly.
    {
        let cycle = c.cycle_s * coll;
        rows.push((
            "Case 2: GTS (4 OpenMP), analytics inline".to_string(),
            cycle,
            cycle,
            0.0,
            c.ana_work_s,
            0.0,
        ));
    }
    // Case 3: solo (3 OpenMP threads), no I/O or analytics.
    {
        let cycle = c.cycle_s * c.helper_thread_penalty * coll;
        rows.push(("Case 3: GTS (3 OpenMP) solo".to_string(), cycle, cycle, 0.0, 0.0, 0.0));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{smoky, titan};
    use placement::{data_aware_mapping, holistic, topology_aware, CommGraph};

    fn scale(machine: MachineModel, cores: usize) -> GtsScale {
        GtsScale { machine, sim_cores: cores, steps: 20 }
    }

    #[test]
    fn helper_core_beats_inline_and_staging_on_smoky() {
        // Fig. 6a's qualitative result.
        let s = scale(smoky(), 512);
        let inline = gts_outcome(&s, Placement::Inline);
        let helper = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
        let staging = gts_outcome(&s, Placement::Staging(PolicyKind::TopologyAware));
        assert!(helper.total_s < inline.total_s, "{} !< {}", helper.total_s, inline.total_s);
        assert!(helper.total_s < staging.total_s);
    }

    #[test]
    fn topology_aware_is_best_helper_variant() {
        let s = scale(smoky(), 1024);
        let topo = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
        let holi = gts_outcome(&s, Placement::HelperCore(PolicyKind::Holistic));
        let data = gts_outcome(&s, Placement::HelperCore(PolicyKind::DataAware));
        assert!(topo.total_s < holi.total_s);
        assert!(holi.total_s <= data.total_s);
        // Paper: data-aware trails topo-aware by up to ~9.5%.
        let gap = data.total_s / topo.total_s - 1.0;
        assert!(gap < 0.12, "gap {gap}");
    }

    #[test]
    fn best_solution_close_to_lower_bound() {
        // Paper: at most 8.4% above the lower bound on Smoky, 7.9% on
        // Titan, at the same core counts.
        for m in [smoky(), titan()] {
            let name = m.name.clone();
            let s = scale(m, 512);
            let lb = gts_outcome(&s, Placement::LowerBound);
            let best = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
            let gap = best.total_s / lb.total_s - 1.0;
            assert!((0.0..0.12).contains(&gap), "{name}: gap {gap}");
        }
    }

    #[test]
    fn helper_advantage_grows_with_scale() {
        // "the benefit is more evident at larger scales".
        let small = scale(smoky(), 128);
        let large = scale(smoky(), 1024);
        let ratio = |s: &GtsScale| {
            gts_outcome(s, Placement::Inline).total_s
                / gts_outcome(s, Placement::HelperCore(PolicyKind::TopologyAware)).total_s
        };
        assert!(ratio(&large) >= ratio(&small) * 0.99);
        // And the improvement is in the paper's up-to-30% band.
        let improvement = 1.0 - 1.0 / ratio(&large);
        assert!((0.10..0.35).contains(&improvement), "improvement {improvement}");
    }

    #[test]
    fn cpu_hours_ranking_matches_paper() {
        // §IV.A.1: "Inline placement is the worst [CPU hours] ... Helper
        // core ... consumes less CPU hours by finishing faster. Staging
        // placement is worse than helper core".
        let s = scale(smoky(), 512);
        let inline = gts_outcome(&s, Placement::Inline);
        let helper = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
        let staging = gts_outcome(&s, Placement::Staging(PolicyKind::TopologyAware));
        assert!(helper.cpu_hours < inline.cpu_hours);
        assert!(helper.cpu_hours < staging.cpu_hours);
        assert!(staging.cpu_hours < inline.cpu_hours, "staging finishes early enough");
    }

    #[test]
    fn movement_volume_split_matches_paper() {
        // Helper core keeps particle data off the interconnect; staging
        // pushes all of it through (≈90% reduction claim).
        let s = scale(smoky(), 256);
        let helper = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
        let staging = gts_outcome(&s, Placement::Staging(PolicyKind::TopologyAware));
        assert_eq!(helper.inter_node_bytes, 0.0);
        assert!(staging.inter_node_bytes > 0.0);
        assert!(helper.intra_node_bytes >= staging.inter_node_bytes * 0.99);
    }

    #[test]
    fn analytics_idle_in_helper_case_is_large() {
        // Fig. 7 case 1: "analytics processes are idle for 67% of time".
        let s = scale(smoky(), 512);
        let helper = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
        let idle = helper.report.analytics_idle_fraction();
        assert!((0.45..0.80).contains(&idle), "idle fraction {idle}");
    }

    #[test]
    fn fig7_cases_reproduce_relationships() {
        let rows = gts_fig7_cases(&smoky());
        let (c1, c2, c3) = (&rows[0], &rows[1], &rows[2]);
        // Helper-core cycles are a few percent longer than solo 3-thread
        // cycles (cache interference).
        assert!(c1.1 > c3.1);
        assert!((c1.1 / c3.1 - 1.0 - 0.041).abs() < 0.01);
        // Inline analysis ≈ 23.6% of its total runtime.
        let inline_total = c2.1 + c2.2 + c2.4;
        assert!((c2.4 / inline_total - 0.236).abs() < 0.01);
        // Helper-core I/O is nearly invisible.
        assert!(c1.3 < 0.1 * c1.1);
        // Helper-core total beats inline total.
        let helper_total = c1.1 + c1.2 + c1.3;
        assert!(helper_total < inline_total);
    }

    #[test]
    fn policies_order_consistently() {
        // The fixed calibration must agree with the real placement
        // algorithms' modelled costs on a representative microcosm.
        let m = smoky();
        let g = CommGraph::coupled(24, 4, 50_000.0, 8, 110_000_000.0, 100_000.0);
        let topo = topology_aware(&g, &m, 2).modelled_cost;
        let holi = holistic(&g, &m, 2).modelled_cost;
        let data = data_aware_mapping(&g, &m, 2).modelled_cost;
        assert!(topo <= holi * 1.001, "topo {topo} vs holistic {holi}");
        assert!(topo <= data * 1.001, "topo {topo} vs data-aware {data}");
    }

    #[test]
    fn titan_and_smoky_both_supported() {
        let s = scale(titan(), 2048);
        let helper = gts_outcome(&s, Placement::HelperCore(PolicyKind::TopologyAware));
        let inline = gts_outcome(&s, Placement::Inline);
        assert!(helper.total_s < inline.total_s);
        assert_eq!(helper.sim_cores, 2048);
        assert_eq!(helper.nodes_used, 2048 / 16);
    }
}
