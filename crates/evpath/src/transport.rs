//! Pluggable byte transports beneath the messaging layer.
//!
//! "The choice of low level transport is automatically configured
//! according to the placement of online analytics" (§II.A): FlexIO holds a
//! boxed [`EvSender`]/[`EvReceiver`] pair and never cares whether bytes
//! move through an in-process channel, the lock-free shared-memory channel
//! (intra-node placement) or the simulated RDMA fabric (inter-node
//! placement).

use crossbeam::channel::{unbounded, Receiver, Sender};
use netsim::{NetSim, Port, PortAddress, Registration};
use shm::channel::{shm_channel, ShmReceiver, ShmSender};

/// Sending side of a byte transport.
pub trait EvSender: Send {
    /// Deliver one message; ordering per sender is preserved.
    fn send(&mut self, payload: &[u8]);

    /// Deliver one message given as scatter-gather segments (header +
    /// payload slices). Equivalent to `send` of the concatenation; the
    /// default implementation flattens once, while transports that can
    /// write segments directly into their destination (the shm pool slot)
    /// override it to skip the intermediate message buffer.
    fn send_vectored(&mut self, segments: &[&[u8]]) {
        self.send(&flatten(segments));
    }

    /// Human-readable transport name (for monitoring traces).
    fn transport_name(&self) -> &'static str;
}

/// Concatenate scatter-gather segments into one message buffer.
pub fn flatten(segments: &[&[u8]]) -> Vec<u8> {
    let total = segments.iter().map(|s| s.len()).sum();
    let mut flat = Vec::with_capacity(total);
    for s in segments {
        flat.extend_from_slice(s);
    }
    flat
}

/// Outcome of one non-blocking readiness poll on a receiver.
///
/// `Option<Vec<u8>>` is too lossy for an event-loop runtime (and was
/// silently conflating real failures with "nothing yet"): the reactor
/// must distinguish *try again later* from *this channel will never
/// produce another message* from *this frame arrived damaged*.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvPoll {
    /// A message was ready and has been dequeued.
    Msg(Vec<u8>),
    /// Nothing queued right now; poll again later.
    Empty,
    /// The queue is drained and the peer endpoint is gone — no further
    /// message can ever arrive. Transports that cannot observe peer
    /// death (the RDMA fabric has no connection state) never report it.
    Closed,
    /// A frame arrived but failed validation; it has been consumed. The
    /// reason is the shm channel's corruption diagnostic.
    Corrupt(&'static str),
}

/// Receiving side of a byte transport.
pub trait EvReceiver: Send {
    /// Blocking receive of the next message.
    fn recv(&mut self) -> Vec<u8>;

    /// Non-blocking readiness poll. Never blocks; `Empty` means "look
    /// again", every other variant is a definite event.
    fn poll_recv(&mut self) -> RecvPoll;

    /// Non-blocking receive, for drain-style callers that treat every
    /// non-message outcome as "stop draining". New code that must react
    /// to closed/corrupt channels uses [`poll_recv`](Self::poll_recv).
    fn try_recv(&mut self) -> Option<Vec<u8>> {
        match self.poll_recv() {
            RecvPoll::Msg(m) => Some(m),
            RecvPoll::Empty | RecvPoll::Closed | RecvPoll::Corrupt(_) => None,
        }
    }
}

/// Boxed sender, the form FlexIO stores.
pub type BoxedSender = Box<dyn EvSender>;
/// Boxed receiver, the form FlexIO stores.
pub type BoxedReceiver = Box<dyn EvReceiver>;

// ---------------------------------------------------------------- in-proc

struct InprocSender(Sender<Vec<u8>>);
struct InprocReceiver(Receiver<Vec<u8>>);

/// An in-process channel transport (same-address-space coupling, used for
/// inline placement and tests).
pub fn inproc_pair() -> (BoxedSender, BoxedReceiver) {
    let (tx, rx) = unbounded();
    (Box::new(InprocSender(tx)), Box::new(InprocReceiver(rx)))
}

impl EvSender for InprocSender {
    fn send(&mut self, payload: &[u8]) {
        let _ = self.0.send(payload.to_vec());
    }

    fn send_vectored(&mut self, segments: &[&[u8]]) {
        // Assemble the message once and hand the vector over without the
        // second copy the default (flatten → send → to_vec) would pay.
        let _ = self.0.send(flatten(segments));
    }

    fn transport_name(&self) -> &'static str {
        "inproc"
    }
}

impl EvReceiver for InprocReceiver {
    fn recv(&mut self) -> Vec<u8> {
        self.0.recv().expect("in-proc channel closed")
    }

    fn poll_recv(&mut self) -> RecvPoll {
        use crossbeam::channel::TryRecvError;
        match self.0.try_recv() {
            Ok(msg) => RecvPoll::Msg(msg),
            Err(TryRecvError::Empty) => RecvPoll::Empty,
            Err(TryRecvError::Disconnected) => RecvPoll::Closed,
        }
    }
}

// ------------------------------------------------------------------- shm

/// The intra-node transport: the FastForward queue + buffer pool from the
/// [`shm`] crate.
pub struct ShmTransport;

impl ShmTransport {
    /// Create a connected sender/receiver pair with `entries` queue slots
    /// of `inline_capacity` bytes.
    pub fn pair(entries: usize, inline_capacity: usize) -> (BoxedSender, BoxedReceiver) {
        let (tx, rx) = shm_channel(entries, inline_capacity);
        ShmTransport::from_halves(tx, rx)
    }

    /// Wrap pre-built channel halves. Fault-injection tests construct the
    /// raw channel themselves so they can poke frames straight into the
    /// queue (`ShmSender::inject_raw_frame`) before handing the receiving
    /// half to the protocol stack.
    pub fn from_halves(tx: ShmSender, rx: ShmReceiver) -> (BoxedSender, BoxedReceiver) {
        (Box::new(ShmTransportSender(tx)), Box::new(ShmTransportReceiver(rx)))
    }
}

struct ShmTransportSender(ShmSender);
struct ShmTransportReceiver(ShmReceiver);

impl EvSender for ShmTransportSender {
    fn send(&mut self, payload: &[u8]) {
        self.0.send_copy(payload);
    }

    fn send_vectored(&mut self, segments: &[&[u8]]) {
        // Segments land directly in the pool slot (or inline frame): the
        // producer-side copy stays at exactly one, preserving the paper's
        // two-copy bound for pooled transfers.
        self.0.send_copy_vectored(segments);
    }

    fn transport_name(&self) -> &'static str {
        "shm"
    }
}

impl EvReceiver for ShmTransportReceiver {
    fn recv(&mut self) -> Vec<u8> {
        // A corrupt control frame is consumed and skipped: to this layer it
        // is indistinguishable from a message the fabric lost, and the
        // protocol's timeout/retry machinery owns that failure mode.
        loop {
            if let Ok(msg) = self.0.recv() {
                return msg;
            }
        }
    }

    fn poll_recv(&mut self) -> RecvPoll {
        match self.0.try_recv() {
            Ok(Some(msg)) => RecvPoll::Msg(msg),
            Ok(None) => {
                if self.0.peer_closed() {
                    // The closed flag is set *after* the producer's last
                    // push, so one recheck closes the push-then-drop race:
                    // after the flag reads true no new frame can appear.
                    match self.0.try_recv() {
                        Ok(Some(msg)) => RecvPoll::Msg(msg),
                        Ok(None) => RecvPoll::Closed,
                        Err(e) => RecvPoll::Corrupt(e.reason()),
                    }
                } else {
                    RecvPoll::Empty
                }
            }
            Err(e) => RecvPoll::Corrupt(e.reason()),
        }
    }
}

// ------------------------------------------------------------------- net

/// The inter-node transport: a port pair on the simulated RDMA fabric.
pub struct NetTransport;

impl NetTransport {
    /// Open a connected pair between `src_node` and `dst_node` on `net`,
    /// using the registration cache (the paper's tuned configuration).
    pub fn pair(net: &NetSim, src_node: usize, dst_node: usize) -> (BoxedSender, BoxedReceiver) {
        let src = net.open_port(src_node);
        let dst = net.open_port(dst_node);
        let dst_addr = dst.address();
        (
            Box::new(NetTransportSender { port: src, peer: dst_addr }),
            Box::new(NetTransportReceiver { port: dst }),
        )
    }
}

struct NetTransportSender {
    port: Port,
    peer: PortAddress,
}

struct NetTransportReceiver {
    port: Port,
}

impl EvSender for NetTransportSender {
    fn send(&mut self, payload: &[u8]) {
        self.port.send(&self.peer, payload, Registration::Cached);
    }

    fn transport_name(&self) -> &'static str {
        "rdma"
    }
}

impl EvReceiver for NetTransportReceiver {
    fn recv(&mut self) -> Vec<u8> {
        self.port.recv().0
    }

    fn poll_recv(&mut self) -> RecvPoll {
        // RDMA has no connection teardown signal: a vanished peer looks
        // exactly like silence, so this transport never reports `Closed`
        // and the protocol's timeout machinery owns that failure mode.
        match self.port.try_recv() {
            Some((payload, _)) => RecvPoll::Msg(payload),
            None => RecvPoll::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::InterconnectParams;

    fn exercise(mut tx: BoxedSender, mut rx: BoxedReceiver) {
        // Drive the two halves from separate threads: bounded transports
        // (the shm queue) backpressure the sender, so a single-threaded
        // send-all-then-receive-all loop would deadlock — by design.
        let sender = std::thread::spawn(move || {
            for i in 0u64..50 {
                let size = if i % 4 == 0 { 100_000 } else { 16 };
                let mut payload = vec![0u8; size];
                payload[..8].copy_from_slice(&i.to_le_bytes());
                tx.send(&payload);
            }
        });
        for i in 0u64..50 {
            let got = rx.recv();
            assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), i);
        }
        sender.join().unwrap();
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn inproc_transport() {
        let (tx, rx) = inproc_pair();
        assert_eq!(tx.transport_name(), "inproc");
        exercise(tx, rx);
    }

    #[test]
    fn shm_transport() {
        let (tx, rx) = ShmTransport::pair(32, 256);
        assert_eq!(tx.transport_name(), "shm");
        exercise(tx, rx);
    }

    #[test]
    fn net_transport() {
        let net = NetSim::new(InterconnectParams::gemini(), 2);
        let (tx, rx) = NetTransport::pair(&net, 0, 1);
        assert_eq!(tx.transport_name(), "rdma");
        exercise(tx, rx);
    }

    #[test]
    fn transports_are_interchangeable_behind_the_trait() {
        // The same driver code runs over all three — the property FlexIO's
        // placement flexibility rests on.
        let net = NetSim::new(InterconnectParams::gemini(), 2);
        let pairs: Vec<(BoxedSender, BoxedReceiver)> =
            vec![inproc_pair(), ShmTransport::pair(16, 128), NetTransport::pair(&net, 0, 1)];
        for (mut tx, mut rx) in pairs {
            tx.send(b"same code everywhere");
            assert_eq!(rx.recv(), b"same code everywhere");
        }
    }
}
