//! **Ablation** — cache-line padding of queue entries (paper §II.D:
//! "entries in data queues are carefully aligned and padded to make sure
//! they do not share cache lines, so as to reduce false sharing"). The
//! unpadded variant packs multiple entries per line, so producer and
//! consumer ping-pong ownership of shared lines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shm::spsc::spsc_queue;
use shm::spsc_unpadded::{spsc_queue_unpadded, UNPADDED_PAYLOAD};

const MSGS: u64 = 50_000;

fn bench_padding(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_padding_ablation");
    g.throughput(Throughput::Elements(MSGS));

    g.bench_function("padded (FlexIO design)", |b| {
        b.iter(|| {
            // Same 24-byte payloads as the unpadded variant.
            let (mut tx, mut rx) = spsc_queue(256, UNPADDED_PAYLOAD);
            let payload = [1u8; UNPADDED_PAYLOAD];
            let t = std::thread::spawn(move || {
                for _ in 0..MSGS {
                    tx.push(&payload).unwrap();
                }
            });
            let mut buf = [0u8; UNPADDED_PAYLOAD];
            for _ in 0..MSGS {
                while rx.try_pop_into(&mut buf).is_none() {
                    std::hint::spin_loop();
                }
            }
            t.join().unwrap();
        });
    });

    g.bench_function("unpadded (entries share cache lines)", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = spsc_queue_unpadded(256);
            let payload = [1u8; UNPADDED_PAYLOAD];
            let t = std::thread::spawn(move || {
                for _ in 0..MSGS {
                    tx.push(&payload);
                }
            });
            let mut buf = [0u8; UNPADDED_PAYLOAD];
            for _ in 0..MSGS {
                rx.pop_into(&mut buf);
            }
            t.join().unwrap();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);
