//! `dessim` — discrete-event co-simulation of the coupled pipeline.
//!
//! The paper's headline results (Figs. 6, 7, 9) are Total Execution Times
//! of coupled simulation + analytics at up to thousands of cores on Titan
//! and Smoky. Those machines are gone and a laptop cannot time 4096 ranks
//! meaningfully, so scale experiments run on a **model**: the coupled
//! system is a two-stage pipeline (paper §III.B: "simulation and analytics
//! form a two-stage pipeline"), simulated step by step:
//!
//! * the simulation produces an output every `cycles_per_step` cycles,
//!   each cycle taking a placement-dependent time (helper-core placements
//!   surrender cores and suffer shared-cache interference; asynchronous
//!   bulk movement interferes with MPI);
//! * the output moves to the analytics through the placement's transport
//!   (shared memory, RDMA with NIC contention, or the file system);
//! * analytics processes consume steps at their allocated scale, applying
//!   backpressure through a bounded step queue.
//!
//! [`pipeline`] is the generic step-event simulator; [`gts`] and [`s3d`]
//! instantiate it for the two applications, deriving on-node efficiency
//! differences **from the actual placement algorithms** in the
//! `placement` crate (the modelled communication cost of each plan), and
//! transport times from the `machine` parameters. [`cache`] instantiates
//! the Fig. 8 shared-L3 interference experiment on the `memsim`
//! simulator.

pub mod cache;
pub mod gts;
pub mod pipeline;
pub mod s3d;

pub use cache::{gts_corun_mpki, GtsCacheResult};
pub use gts::{gts_fig7_cases, gts_outcome, GtsScale};
pub use pipeline::{simulate_pipeline, PipelineParams, PipelineReport};
pub use s3d::{s3d_outcome, S3dScale};

/// Which placement a scenario evaluates (paper Fig. 1's options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Analytics routines called directly from simulation processes.
    Inline,
    /// Analytics on dedicated cores of the compute nodes, bound by the
    /// given policy.
    HelperCore(placement::PolicyKind),
    /// Analytics on separate staging nodes, bound by the given policy.
    Staging(placement::PolicyKind),
    /// The data-aware mapping's mixed outcome for S3D (paper §IV.B.2).
    Hybrid,
    /// No I/O, no analytics: the lower bound on the optimum.
    LowerBound,
}

impl Placement {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Placement::Inline => "Inline".to_string(),
            Placement::HelperCore(p) => format!("Helper Core ({})", policy_label(*p)),
            Placement::Staging(p) => format!("Staging ({})", policy_label(*p)),
            Placement::Hybrid => "Hybrid (Data Aware Mapping)".to_string(),
            Placement::LowerBound => "Lower Bound".to_string(),
        }
    }
}

fn policy_label(p: placement::PolicyKind) -> &'static str {
    match p {
        placement::PolicyKind::DataAware => "Data Aware Mapping",
        placement::PolicyKind::Holistic => "Holistic",
        placement::PolicyKind::TopologyAware => "Node Topo. Aware",
    }
}

/// One scenario's result row (one point of a figure).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Placement evaluated.
    pub placement: Placement,
    /// Simulation cores (the figures' x axis).
    pub sim_cores: usize,
    /// Total compute nodes occupied (simulation + staging).
    pub nodes_used: usize,
    /// Total Execution Time, seconds (§III.A).
    pub total_s: f64,
    /// Total CPU hours (§III.A).
    pub cpu_hours: f64,
    /// Bytes moved between the programs through the interconnect.
    pub inter_node_bytes: f64,
    /// Bytes moved between the programs within nodes.
    pub intra_node_bytes: f64,
    /// Detailed phase breakdown.
    pub report: pipeline::PipelineReport,
}
