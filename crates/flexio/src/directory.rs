//! The directory server (paper §II.C.1).
//!
//! "Before actual data movement, simulation and analytics programs connect
//! to each other via assistance from an external directory server. To
//! avoid overloading this server, simulation and analytics processes,
//! respectively, elect a local coordinator. When creating a file in stream
//! mode, the coordinator of the simulation registers with the directory
//! server a file name associated with its own contact information. When
//! the analytics opens that file, its coordinator looks up the server with
//! the file name, retrieves the contact information of the simulation's
//! coordinator, and makes a connection with it. The directory server is
//! involved only in discovery and connection setup and is not in the
//! critical path of actual data movements."
//!
//! In this in-process reproduction the "contact information" is an
//! `Arc`-shared link-state handle; only the **coordinators** touch the
//! directory, and only at open time — the avoid-overload property is
//! enforced structurally and verified by the registration counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::link::LinkState;

/// Lookup failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// No writer registered the name before the timeout.
    LookupTimeout(String),
    /// A writer already registered this name.
    AlreadyRegistered(String),
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::LookupTimeout(n) => write!(f, "no stream named `{n}` appeared in time"),
            DirectoryError::AlreadyRegistered(n) => write!(f, "stream `{n}` already registered"),
        }
    }
}

impl std::error::Error for DirectoryError {}

#[derive(Default)]
struct State {
    entries: HashMap<String, Arc<LinkState>>,
}

/// The directory server. Clone handles freely; they share one registry.
#[derive(Clone, Default)]
pub struct Directory {
    state: Arc<(Mutex<State>, Condvar)>,
    registrations: Arc<AtomicU64>,
    lookups: Arc<AtomicU64>,
}

impl Directory {
    /// Fresh empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Writer-coordinator registration of `name` → contact.
    pub fn register(&self, name: &str, contact: Arc<LinkState>) -> Result<(), DirectoryError> {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        if st.entries.contains_key(name) {
            return Err(DirectoryError::AlreadyRegistered(name.to_string()));
        }
        st.entries.insert(name.to_string(), contact);
        self.registrations.fetch_add(1, Ordering::Relaxed);
        cvar.notify_all();
        Ok(())
    }

    /// Reader-coordinator lookup, blocking until the writer registers or
    /// `timeout` expires.
    pub fn lookup(&self, name: &str, timeout: Duration) -> Result<Arc<LinkState>, DirectoryError> {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(contact) = st.entries.get(name) {
                self.lookups.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(contact));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(DirectoryError::LookupTimeout(name.to_string()));
            }
            cvar.wait_for(&mut st, deadline - now);
        }
    }

    /// Non-blocking lookup (the reactor's poll-driven analogue of
    /// [`Self::lookup`]): `None` means "not registered yet", not failure.
    /// Bumps the lookup counter only on a hit, so the "directory is not in
    /// the critical path" accounting is identical to the blocking path.
    pub fn try_lookup(&self, name: &str) -> Option<Arc<LinkState>> {
        let contact = Arc::clone(self.state.0.lock().entries.get(name)?);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        Some(contact)
    }

    /// Remove a stream entry (writer close); returns whether it existed.
    pub fn unregister(&self, name: &str) -> bool {
        self.state.0.lock().entries.remove(name).is_some()
    }

    /// How many registrations the server handled — one per stream, never
    /// per rank or per step (the "not in the critical path" property).
    pub fn registration_count(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    /// How many successful lookups the server handled.
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn dummy_link() -> Arc<LinkState> {
        crate::link::LinkState::for_tests()
    }

    #[test]
    fn register_then_lookup() {
        let d = Directory::new();
        let link = dummy_link();
        d.register("run42/particles", Arc::clone(&link)).unwrap();
        let found = d.lookup("run42/particles", Duration::from_millis(10)).unwrap();
        assert!(Arc::ptr_eq(&link, &found));
    }

    #[test]
    fn lookup_blocks_until_registration() {
        let d = Directory::new();
        let d2 = d.clone();
        let t = thread::spawn(move || d2.lookup("late", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        d.register("late", dummy_link()).unwrap();
        assert!(t.join().unwrap().is_ok());
    }

    #[test]
    fn lookup_times_out() {
        let d = Directory::new();
        let err = d.lookup("never", Duration::from_millis(30)).err();
        assert_eq!(err, Some(DirectoryError::LookupTimeout("never".into())));
    }

    #[test]
    fn double_registration_rejected() {
        let d = Directory::new();
        d.register("s", dummy_link()).unwrap();
        assert_eq!(
            d.register("s", dummy_link()),
            Err(DirectoryError::AlreadyRegistered("s".into()))
        );
        assert!(d.unregister("s"));
        d.register("s", dummy_link()).unwrap();
    }

    #[test]
    fn counters_reflect_traffic() {
        let d = Directory::new();
        d.register("a", dummy_link()).unwrap();
        d.register("b", dummy_link()).unwrap();
        d.lookup("a", Duration::from_millis(5)).unwrap();
        d.lookup("a", Duration::from_millis(5)).unwrap();
        assert_eq!(d.registration_count(), 2);
        assert_eq!(d.lookup_count(), 2);
    }
}
