//! N-dimensional box selections: intersection and strided copies.
//!
//! This module is the geometric heart of the paper's Fig. 3: when a 2-D
//! array distributed over 9 simulation processes is read by 2 analytics
//! processes with a different decomposition, each sender computes the
//! overlap of its block with each reader's requested box and copies the
//! overlapping *strides*. The same machinery serves file-mode subset
//! reads.

use crate::var::{ArrayData, LocalBlock};

/// An axis-aligned box in global index space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoxSel {
    /// Starting global index per dimension.
    pub offset: Vec<u64>,
    /// Extent per dimension.
    pub count: Vec<u64>,
}

impl BoxSel {
    /// Construct (offsets and counts must have equal rank).
    pub fn new(offset: Vec<u64>, count: Vec<u64>) -> BoxSel {
        assert_eq!(offset.len(), count.len(), "rank mismatch");
        BoxSel { offset, count }
    }

    /// The whole array of the given shape.
    pub fn whole(shape: &[u64]) -> BoxSel {
        BoxSel { offset: vec![0; shape.len()], count: shape.to_vec() }
    }

    /// Dimensionality.
    pub fn rank(&self) -> usize {
        self.offset.len()
    }

    /// Number of elements selected.
    pub fn num_elements(&self) -> u64 {
        self.count.iter().product()
    }

    /// True if any dimension has zero extent.
    pub fn is_empty(&self) -> bool {
        self.count.contains(&0)
    }

    /// Intersection with another box; `None` when disjoint (or empty).
    pub fn intersect(&self, other: &BoxSel) -> Option<BoxSel> {
        assert_eq!(self.rank(), other.rank(), "rank mismatch");
        let mut offset = Vec::with_capacity(self.rank());
        let mut count = Vec::with_capacity(self.rank());
        for d in 0..self.rank() {
            let lo = self.offset[d].max(other.offset[d]);
            let hi = (self.offset[d] + self.count[d]).min(other.offset[d] + other.count[d]);
            if hi <= lo {
                return None;
            }
            offset.push(lo);
            count.push(hi - lo);
        }
        Some(BoxSel { offset, count })
    }

    /// Row-major linear index of a global coordinate *within this box*.
    /// `coord` must lie inside the box.
    pub fn linearize(&self, coord: &[u64]) -> u64 {
        debug_assert_eq!(coord.len(), self.rank());
        let mut idx = 0u64;
        for d in 0..self.rank() {
            debug_assert!(coord[d] >= self.offset[d] && coord[d] < self.offset[d] + self.count[d]);
            idx = idx * self.count[d] + (coord[d] - self.offset[d]);
        }
        idx
    }

    /// Iterate the box's contiguous row-major runs: yields
    /// `(start_coord, run_len)` where each run spans the last dimension.
    /// Rank-0 boxes yield a single run of length 1.
    pub fn rows(&self) -> RowIter<'_> {
        RowIter { sel: self, cursor: Some(self.offset.clone()), done: self.is_empty() }
    }
}

/// Iterator over contiguous last-dimension runs of a box.
pub struct RowIter<'a> {
    sel: &'a BoxSel,
    cursor: Option<Vec<u64>>,
    done: bool,
}

impl Iterator for RowIter<'_> {
    type Item = (Vec<u64>, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let sel = self.sel;
        if sel.rank() == 0 {
            self.done = true;
            return Some((Vec::new(), 1));
        }
        let current = self.cursor.clone()?;
        let run = sel.count[sel.rank() - 1];
        // Advance all but the last dimension, odometer-style.
        let mut next = current.clone();
        let mut d = sel.rank().wrapping_sub(2);
        loop {
            if sel.rank() == 1 {
                self.done = true;
                break;
            }
            next[d] += 1;
            if next[d] < sel.offset[d] + sel.count[d] {
                break;
            }
            next[d] = sel.offset[d];
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
        }
        if !self.done {
            self.cursor = Some(next);
        }
        Some((current, run))
    }
}

/// Copy the elements of `region` (a box in global space, fully contained
/// in both blocks' extents) from `src` into `dst`. Both blocks are
/// row-major in their own local extents.
pub fn copy_region(src: &LocalBlock, dst: &mut LocalBlock, region: &BoxSel) {
    let src_box = BoxSel::new(src.offset.clone(), src.count.clone());
    let dst_box = BoxSel::new(dst.offset.clone(), dst.count.clone());
    debug_assert!(src_box.intersect(region).map(|b| b == *region).unwrap_or(region.is_empty()));
    debug_assert!(dst_box.intersect(region).map(|b| b == *region).unwrap_or(region.is_empty()));
    for (start, run) in region.rows() {
        let s = src_box.linearize(&start) as usize;
        let d = dst_box.linearize(&start) as usize;
        src.data.copy_into(s, &mut dst.data, d, run as usize);
    }
}

/// Extract `region` of `src` into a fresh minimal block whose extent is
/// exactly `region` — the "packed strides" a sender ships to a receiver.
pub fn extract_region(src: &LocalBlock, region: &BoxSel) -> LocalBlock {
    let mut out = LocalBlock {
        global_shape: src.global_shape.clone(),
        offset: region.offset.clone(),
        count: region.count.clone(),
        data: ArrayData::zeros(src.data.data_type(), region.num_elements() as usize),
    };
    copy_region(src, &mut out, region);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::DataType;

    fn block_2d(offset: [u64; 2], count: [u64; 2]) -> LocalBlock {
        // Data value = global row * 100 + global col, for easy checking.
        let mut data = Vec::new();
        for r in offset[0]..offset[0] + count[0] {
            for c in offset[1]..offset[1] + count[1] {
                data.push((r * 100 + c) as f64);
            }
        }
        LocalBlock {
            global_shape: vec![10, 10],
            offset: offset.to_vec(),
            count: count.to_vec(),
            data: ArrayData::F64(data),
        }
        .validated()
    }

    #[test]
    fn intersection_basic() {
        let a = BoxSel::new(vec![0, 0], vec![5, 5]);
        let b = BoxSel::new(vec![3, 3], vec![5, 5]);
        assert_eq!(a.intersect(&b), Some(BoxSel::new(vec![3, 3], vec![2, 2])));
        let c = BoxSel::new(vec![5, 0], vec![2, 2]);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn intersection_is_commutative_and_contained() {
        let a = BoxSel::new(vec![1, 2, 0], vec![4, 3, 7]);
        let b = BoxSel::new(vec![0, 4, 3], vec![3, 6, 2]);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab, ba);
        let i = ab.unwrap();
        assert_eq!(i.intersect(&a).as_ref(), Some(&i));
        assert_eq!(i.intersect(&b).as_ref(), Some(&i));
    }

    #[test]
    fn rows_cover_the_box_exactly_once() {
        let b = BoxSel::new(vec![2, 3], vec![2, 4]);
        let rows: Vec<_> = b.rows().collect();
        assert_eq!(rows, vec![(vec![2, 3], 4), (vec![3, 3], 4)]);
        let b3 = BoxSel::new(vec![0, 1, 2], vec![2, 2, 3]);
        let total: u64 = b3.rows().map(|(_, run)| run).sum();
        assert_eq!(total, b3.num_elements());
    }

    #[test]
    fn rows_of_1d_and_empty() {
        let b = BoxSel::new(vec![5], vec![3]);
        assert_eq!(b.rows().collect::<Vec<_>>(), vec![(vec![5], 3)]);
        let e = BoxSel::new(vec![0, 0], vec![0, 4]);
        assert_eq!(e.rows().count(), 0);
    }

    #[test]
    fn extract_and_copy_region_preserve_values() {
        let src = block_2d([2, 2], [4, 4]);
        let region = BoxSel::new(vec![3, 3], vec![2, 2]);
        let extracted = extract_region(&src, &region);
        assert_eq!(
            extracted.data.as_f64(),
            &[303.0, 304.0, 403.0, 404.0],
            "values carry their global coordinates"
        );

        // Copy into a differently-shaped destination block.
        let mut dst = LocalBlock {
            global_shape: vec![10, 10],
            offset: vec![3, 0],
            count: vec![3, 6],
            data: ArrayData::zeros(DataType::F64, 18),
        }
        .validated();
        copy_region(&extracted, &mut dst, &region);
        // dst rows are global rows 3..6, cols 0..6.
        let d = dst.data.as_f64();
        assert_eq!(d[3], 303.0); // row 3, col 3
        assert_eq!(d[4], 304.0);
        assert_eq!(d[9], 403.0); // row 4 starts at index 6; col 3 => 6+3
        assert_eq!(d[10], 404.0);
        assert_eq!(d[0], 0.0, "untouched cells stay zero");
    }

    #[test]
    fn linearize_matches_row_major() {
        let b = BoxSel::new(vec![0, 0], vec![3, 4]);
        assert_eq!(b.linearize(&[0, 0]), 0);
        assert_eq!(b.linearize(&[0, 3]), 3);
        assert_eq!(b.linearize(&[1, 0]), 4);
        assert_eq!(b.linearize(&[2, 3]), 11);
    }

    #[test]
    fn whole_selection() {
        let w = BoxSel::whole(&[4, 5]);
        assert_eq!(w.num_elements(), 20);
        assert_eq!(w.offset, vec![0, 0]);
    }
}
