#!/usr/bin/env python3
"""Compare one fresh BENCH_*.json against its committed baseline.

Usage: git show HEAD:BENCH_x.json | bench_diff.py BENCH_x.json THRESHOLD_PCT

Rows are matched by their identity fields (sweep coordinates: stream
counts, transports, backends, ...); measured fields (rates, timings,
counters) are excluded from the match key. For each matched row the
throughput metric (steps_per_s / ops_per_s / msgs_per_s / gbps — higher
is better) is compared; a drop beyond the threshold is a regression.
Rows present on only one side are reported but never fail the run, so
sweeps may grow or shrink freely. Exits 1 on any regression."""

import json
import sys

# Fields that carry measurements rather than sweep coordinates.
MEASURED = {
    "elapsed_s",
    "steps_per_s",
    "steps_per_s_per_thread",
    "ops_per_s",
    "msgs_per_s",
    "gbps",
    "converge_ms",
    "migrations",
    "steps",
    "steps_total",
    "msgs",
    "ops",
}
# Throughput metrics, in preference order; higher is better.
RATES = ("gbps", "steps_per_s", "ops_per_s", "msgs_per_s")


def key_of(row):
    return tuple(sorted((k, v) for k, v in row.items() if k not in MEASURED))


def rate_of(row):
    for r in RATES:
        if r in row:
            return r, float(row[r])
    return None, None


def main():
    fresh_path, threshold = sys.argv[1], float(sys.argv[2])
    raw = sys.stdin.read()
    with open(fresh_path) as f:
        fresh = json.load(f)

    name = fresh.get("bench", fresh_path)
    if not raw.strip():
        # A bench present in this run but absent from the baseline is a
        # new bench, not a regression: first runs must pass so the file
        # can be committed and become the baseline.
        print(f"  {name}: no baseline (new bench) — {len(fresh.get('results', []))} rows, passing")
        sys.exit(0)
    baseline = json.loads(raw)
    base_rows = {key_of(r): r for r in baseline.get("results", [])}
    fresh_rows = {key_of(r): r for r in fresh.get("results", [])}

    regressions = 0
    compared = 0
    for key, new in fresh_rows.items():
        old = base_rows.get(key)
        if old is None:
            coords = ", ".join(f"{k}={v}" for k, v in key)
            print(f"  {name}: new row ({coords}) — no baseline, skipping")
            continue
        metric, new_v = rate_of(new)
        _, old_v = rate_of(old)
        if metric is None or old_v is None or old_v <= 0:
            continue
        compared += 1
        delta_pct = 100.0 * (new_v - old_v) / old_v
        if delta_pct < -threshold:
            coords = ", ".join(f"{k}={v}" for k, v in key)
            print(
                f"  {name}: REGRESSION ({coords}): {metric} "
                f"{old_v:.3f} -> {new_v:.3f} ({delta_pct:+.1f}%)"
            )
            regressions += 1
    for key in base_rows.keys() - fresh_rows.keys():
        coords = ", ".join(f"{k}={v}" for k, v in key)
        print(f"  {name}: baseline row ({coords}) missing from fresh results")

    print(f"  {name}: {compared} rows compared, {regressions} regressions")
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
