//! Replay determinism: the fault plan's decisions are a pure function of
//! (seed, channel label, message ordinal), so two runs of the same coupled
//! program under the same seed must inject — and heal — the exact same
//! faults, down to identical counter values. The seed can be swept from
//! the outside via `FLEXIO_FAULT_SEED` (the verify script loops over 20).

mod common;

use std::sync::Arc;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::{block_1d, couple};
use evpath::{FaultPlan, FaultSpec};
use flexio::{CachingLevel, StreamHints};

/// Everything about a run that must be reproducible. `retries` is timing
/// dependent (a fast machine may win a race a loaded one loses) and is
/// deliberately excluded; every fault decision and every healing action is
/// not.
#[derive(Debug, PartialEq)]
struct RunSignature {
    protocol: (u64, u64, u64, u64, u64, u64, u64),
    dup_msgs: u64,
    reorder_healed: u64,
    drops_observed: u64,
    eos_synthesized: u64,
    evictions: u64,
    faults: (u64, u64, u64, u64, u64, u64, u64),
}

fn run_once(seed: u64) -> RunSignature {
    const STEPS: u64 = 3;
    let mut plan = FaultPlan::new(seed);
    plan.set(
        "data",
        FaultSpec { dup_per_mille: 500, reorder_per_mille: 500, ..Default::default() },
    );
    let plan = Arc::new(plan);
    let hints = StreamHints {
        caching: CachingLevel::CachingAll,
        faults: Some(Arc::clone(&plan)),
        ..StreamHints::default()
    };
    let (links, steps) = couple(
        3,
        2,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 12));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        move |mut r, rank| {
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            r.subscribe("field", Selection::GlobalBox(my_box.clone()));
            let mut steps = 0;
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("field", &Selection::GlobalBox(my_box.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        for (i, &x) in b.data.as_f64().iter().enumerate() {
                            let g = rank as u64 * 6 + i as u64;
                            assert_eq!(
                                x,
                                (step * 100 + g) as f64,
                                "seed {seed} step {step} idx {g}"
                            );
                        }
                        steps += 1;
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            steps
        },
    );
    assert_eq!(steps, vec![STEPS as usize, STEPS as usize], "seed {seed} lost data");
    let (_retries, dup_msgs, reorder_healed, drops_observed, eos_synthesized, evictions, _) =
        links[0].counters.resilience_snapshot();
    RunSignature {
        protocol: links[0].counters.snapshot(),
        dup_msgs,
        reorder_healed,
        drops_observed,
        eos_synthesized,
        evictions,
        faults: plan.counters().snapshot(),
    }
}

#[test]
fn same_seed_replays_identical_fault_schedule() {
    let seed =
        std::env::var("FLEXIO_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF1EC5);
    let first = run_once(seed);
    let second = run_once(seed);
    assert_eq!(first, second, "seed {seed} must replay bit-identical counters");
    // And the schedule was not vacuously empty: at 50% rates over the
    // run's data messages, at least one fault fires for any seed (the
    // odds of a fully quiet schedule are ~2⁻²⁴, and the seed sweep in the
    // verify script would surface such a degenerate seed immediately).
    let (_, duplicated, reordered, ..) = first.faults;
    assert!(
        duplicated + reordered > 0,
        "seed {seed} injected nothing — not a meaningful replay test"
    );
}
