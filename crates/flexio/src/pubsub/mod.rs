//! Pub/sub fan-out with durable replay: one writer stream, N independent
//! reader groups, BP-spilled retention.
//!
//! The paper couples one writer to exactly one reader group. Production
//! event streams — and the file-based → streaming continuum of the
//! openPMD/ADIOS2 transition work — need a single simulation output to
//! feed many consumers that come and go at different rates. This module
//! decouples publication from consumption with a [`StreamLog`] per
//! stream:
//!
//! * the writer ranks append steps into a **bounded in-memory replay
//!   ring** (groups share each sealed step by `Arc` — fan-out to N
//!   groups copies nothing);
//! * every [`ReaderGroup`] holds an **independent cursor** with its own
//!   QoS ([`Qos::Lossless`] at-least-once vs [`Qos::LatestOnly`]
//!   at-most-once skip-to-latest) and per-group counters (lag in steps,
//!   replayed-from-spill, dropped-by-qos);
//! * when retention pressure exceeds the ring bound, cold steps live in
//!   **BP spill segments** (`adios::bp`, one container per step, written
//!   through at seal time) so late joiners and restarted groups catch up
//!   from any retained step — memory → spill → live tail, transparently;
//! * without a spill directory the slowest lossless cursor exerts real
//!   **backpressure**: the publisher blocks before evicting a step a
//!   registered group still needs;
//! * cursors of lossless groups are **durable** (checksummed file next
//!   to the spill segments, atomic rename), so a group killed mid-replay
//!   resumes where it committed;
//! * a crashed writer ([`StepPublisher::abandon`], or `kill -9` of the
//!   publishing process) leaves groups draining every retained step and
//!   then observing a synthesized end-of-stream.
//!
//! Discovery goes through the [`crate::DirectoryService`] trait: the
//! publisher registers `pubsub:<stream>` with the log attached to the
//! contact [`crate::link::LinkState`]; each group registers
//! `pubsub:<stream>#<group>` carrying its counters, so any backend
//! (in-proc, sharded, gossip-replicated) serves pub/sub discovery
//! unchanged. Delivery runs as reactor/fleet tasks via
//! [`ReaderGroup::into_task`] and
//! [`crate::FleetRuntime::spawn_reader_group`], with
//! [`crate::MonitorEvent::PubSubDeliver`]/[`crate::MonitorEvent::PubSubSpill`]
//! measurement points feeding the §II.G monitor.

mod group;
mod log;
mod spill;

pub use group::{GroupTaskHandle, ReaderGroup};
pub use log::{Fetch, SealedStep, StepPublisher, StreamLog};
pub use spill::{SpillStore, SpillTail};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use adios::{GroupConfig, ProcessGroup};
use machine::CoreLocation;

use crate::link::{FlexIo, HintKey, LinkState, StreamError, StreamHints};

/// Per-group delivery quality of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Qos {
    /// At-least-once: every retained step is delivered in order; the
    /// group's cursor holds retention (or rides the spill) until it
    /// commits.
    #[default]
    Lossless,
    /// At-most-once: a group that falls behind skips straight to the
    /// newest sealed step; skipped steps are counted as dropped-by-qos.
    LatestOnly,
}

impl Qos {
    /// Parse a `pubsub.qos` hint value.
    pub fn from_hint(v: &str) -> Option<Qos> {
        match v {
            "lossless" | "at_least_once" => Some(Qos::Lossless),
            "latest" | "at_most_once" => Some(Qos::LatestOnly),
            _ => None,
        }
    }

    /// The hint spelling of this QoS.
    pub fn as_str(&self) -> &'static str {
        match self {
            Qos::Lossless => "lossless",
            Qos::LatestOnly => "latest",
        }
    }
}

/// The `pubsub.*` hint family, resolved through [`HintKey`] exactly like
/// [`StreamHints`] and [`crate::DirectoryConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubSubConfig {
    /// Expected reader-group count (observability/bench sizing; groups
    /// beyond it still attach).
    pub groups: usize,
    /// In-memory replay ring bound, in steps.
    pub replay_steps: usize,
    /// Directory for BP spill segments; `None` disables durable replay
    /// (retention then backpressures the publisher instead of spilling).
    pub spill_dir: Option<PathBuf>,
    /// Default QoS for groups that don't choose one at attach.
    pub qos: Qos,
}

impl Default for PubSubConfig {
    fn default() -> Self {
        PubSubConfig { groups: 1, replay_steps: 64, spill_dir: None, qos: Qos::Lossless }
    }
}

impl PubSubConfig {
    /// Derive the pub/sub configuration from a parsed group config.
    pub fn from_config(cfg: &GroupConfig) -> PubSubConfig {
        let mut c = PubSubConfig::default();
        if let Some(n) = cfg.hint_u64(HintKey::PubsubGroups.as_str()) {
            c.groups = (n as usize).max(1);
        }
        if let Some(n) = cfg.hint_u64(HintKey::PubsubReplaySteps.as_str()) {
            c.replay_steps = (n as usize).max(1);
        }
        if let Some(dir) = cfg.hint(HintKey::PubsubSpillDir.as_str()) {
            c.spill_dir = Some(PathBuf::from(dir));
        }
        if let Some(q) = cfg.hint(HintKey::PubsubQos.as_str()).and_then(Qos::from_hint) {
            c.qos = q;
        }
        c
    }
}

/// FNV-1a over bytes; the checksum/digest primitive of the module.
pub(crate) fn fnv1a64(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Deterministic digest of one sealed step's content: the byte-identity
/// probe the fan-out equivalence tests compare across groups, backends
/// and replay sources (memory vs spill).
pub fn step_digest(step: u64, groups: &[ProcessGroup]) -> u64 {
    let mut h = fnv1a64(&step.to_le_bytes(), FNV_OFFSET);
    for g in groups {
        h = fnv1a64(&g.encode(), h);
    }
    h
}

/// Per-group delivery counters, shared with the group's directory
/// registration (the pub/sub analogue of [`crate::ProtocolCounters`]).
#[derive(Debug, Default)]
pub struct GroupCounters {
    /// Steps delivered to the group, from any source.
    pub delivered: AtomicU64,
    /// Steps delivered out of BP spill segments rather than the ring.
    pub replayed_from_spill: AtomicU64,
    /// Steps skipped by at-most-once QoS.
    pub dropped_by_qos: AtomicU64,
    /// Current lag behind the log tail, in steps (gauge).
    pub lag_steps: AtomicU64,
    /// The cursor this group resumed from (0 = fresh start).
    pub resumed_from: AtomicU64,
    /// End-of-stream synthesized after writer silence/crash.
    pub eos_synthesized: AtomicU64,
}

impl GroupCounters {
    pub(crate) fn new_shared() -> Arc<GroupCounters> {
        Arc::new(GroupCounters::default())
    }

    /// `(delivered, replayed_from_spill, dropped_by_qos, lag_steps)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.delivered.load(Ordering::Relaxed),
            self.replayed_from_spill.load(Ordering::Relaxed),
            self.dropped_by_qos.load(Ordering::Relaxed),
            self.lag_steps.load(Ordering::Relaxed),
        )
    }
}

/// Log-level counters.
#[derive(Debug, Default)]
pub struct PubSubCounters {
    /// Steps sealed into the log.
    pub published_steps: AtomicU64,
    /// Steps written through to BP spill segments.
    pub spilled_steps: AtomicU64,
    /// Bytes written to spill segments.
    pub spill_bytes: AtomicU64,
    /// Publishes that blocked on per-group backpressure.
    pub backpressure_waits: AtomicU64,
    /// Whether the writer abandoned the stream (crash) instead of
    /// closing it.
    pub abandoned: AtomicBool,
}

impl FlexIo {
    /// Open the publishing side of pub/sub stream `name` from one writer
    /// rank. Rank 0 creates the [`StreamLog`] and registers
    /// `pubsub:<name>` through the directory service with the log
    /// attached to the contact; other ranks join through the program
    /// bulletin exactly like [`FlexIo::open_writer`].
    pub fn open_publisher(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        cfg: &PubSubConfig,
        hints: StreamHints,
    ) -> Result<StepPublisher, StreamError> {
        let key = format!("pubsub:{name}");
        let link = if rank == 0 {
            let cores: Vec<CoreLocation> = (0..nranks)
                .map(|r| self.machine().node.location_of(r % self.machine().node.cores_per_node()))
                .collect();
            let link = LinkState::new(nranks, cores, None, &hints);
            let log = StreamLog::new(name, nranks, cfg, link.monitor.clone())?;
            link.set_attachment(log);
            self.directory().register(&key, Arc::clone(&link))?;
            self.post_bulletin(&format!("p:{name}"), Arc::clone(&link));
            link
        } else {
            self.wait_bulletin(&format!("p:{name}"), hints.recv_timeout)
                .ok_or(StreamError::Timeout)?
        };
        let log = link
            .attachment::<StreamLog>()
            .ok_or_else(|| StreamError::Protocol(format!("{key} contact carries no stream log")))?;
        Ok(StepPublisher::new(log, rank, hints))
    }

    /// Attach a reader group to pub/sub stream `stream`: look the log up
    /// through the directory service, register the group's own
    /// `pubsub:<stream>#<group>` entry (carrying its counters for
    /// discovery/observation), and resume from the group's durable
    /// cursor when one is retained.
    pub fn open_reader_group(
        &self,
        stream: &str,
        group: &str,
        qos: Option<Qos>,
        hints: StreamHints,
    ) -> Result<ReaderGroup, StreamError> {
        let link = self.directory().lookup(&format!("pubsub:{stream}"), hints.recv_timeout)?;
        let log = link.attachment::<StreamLog>().ok_or_else(|| {
            StreamError::Protocol(format!("pubsub:{stream} contact carries no stream log"))
        })?;
        let reader = ReaderGroup::attach(log, group, qos, &hints)?;
        // Advertise the group. A restarted group (kill -9 never
        // unregisters) steals its stale registration.
        let gkey = format!("pubsub:{stream}#{group}");
        let glink = LinkState::new(
            1,
            vec![self.machine().node.location_of(0)],
            None,
            &StreamHints::default(),
        );
        glink.set_attachment(reader.counters());
        if self.directory().register(&gkey, Arc::clone(&glink)).is_err() {
            self.directory().unregister(&gkey);
            self.directory().register(&gkey, Arc::clone(&glink))?;
        }
        Ok(reader.with_registration(Arc::clone(self.directory()), gkey))
    }

    /// Discover a reader group's live counters through the directory — a
    /// monitor/manager observing fan-out health uses this exactly like
    /// [`crate::MonitorSink::for_stream`] discovers streams.
    pub fn lookup_group_counters(
        &self,
        stream: &str,
        group: &str,
        timeout: std::time::Duration,
    ) -> Result<Arc<GroupCounters>, StreamError> {
        let link = self.directory().lookup(&format!("pubsub:{stream}#{group}"), timeout)?;
        link.attachment::<GroupCounters>().ok_or_else(|| {
            StreamError::Protocol(format!("pubsub:{stream}#{group} carries no counters"))
        })
    }
}
