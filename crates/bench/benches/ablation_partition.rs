//! **Ablation** — cost of the FM refinement inside the partitioner: how
//! much time the SCOTCH-stand-in spends, naive BFS bisection vs refined,
//! and the full graph-to-tree mapping. Cut *quality* is reported by the
//! `ablation_partition` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machine::smoky;
use placement::partition::{bisect, partition_k};
use placement::{map_to_tree, CommGraph};

fn workload(nsim: usize, nana: usize) -> CommGraph {
    CommGraph::coupled(nsim, 4, 50_000.0, nana, 110_000_000.0, 100_000.0)
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    for (nsim, nana) in [(24usize, 8usize), (96, 32)] {
        let graph = workload(nsim, nana);
        let n = graph.len();
        let vertices: Vec<usize> = (0..n).collect();
        g.bench_with_input(BenchmarkId::new("bisect", n), &graph, |b, graph| {
            b.iter(|| criterion::black_box(bisect(graph, &vertices, n / 2)));
        });
        g.bench_with_input(BenchmarkId::new("partition_k4", n), &graph, |b, graph| {
            b.iter(|| criterion::black_box(partition_k(graph, 4)));
        });
    }
    g.finish();
}

fn bench_tree_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_mapping");
    let m = smoky();
    for nodes in [2usize, 8] {
        let cores = nodes * m.node.cores_per_node();
        let graph = workload(cores * 3 / 4, cores / 4);
        let tree = m.topology_tree(nodes);
        g.bench_with_input(BenchmarkId::new("topology_tree", cores), &graph, |b, graph| {
            b.iter(|| criterion::black_box(map_to_tree(graph, &tree)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partition, bench_tree_mapping);
criterion_main!(benches);
