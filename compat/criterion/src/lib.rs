//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! It runs each benchmark closure a small fixed number of iterations and
//! prints mean wall-clock time per iteration — enough to smoke-test the
//! bench binaries (`harness = false`) and eyeball relative numbers, with
//! none of criterion's statistics, warm-up, or reporting machinery.
//!
//! Iteration count is deliberately tiny (see [`QUICK_ITERS`]) so that
//! `cargo bench` terminates quickly offline; set `CRITERION_ITERS` to
//! raise it when real measurements are wanted.

use std::fmt;
use std::time::{Duration, Instant};

const QUICK_ITERS: u64 = 10;

fn iters() -> u64 {
    std::env::var("CRITERION_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(QUICK_ITERS)
}

/// Opaque use of a value, preventing the optimiser from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation for a group; recorded and echoed, not analysed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iterations = n;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total: Duration::ZERO, iterations: 0 };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { total: Duration::ZERO, iterations: 0 };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter =
            if b.iterations > 0 { b.total / b.iterations as u32 } else { Duration::ZERO };
        let tp = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let gbps = n as f64 / per_iter.as_secs_f64() / 1e9;
                format!("  ({gbps:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
                format!("  ({meps:.3} Melem/s)")
            }
            _ => String::new(),
        };
        println!("{}/{id}: {:?}/iter over {} iters{tp}", self.name, per_iter, b.iterations);
    }
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scale", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &k| {
            b.iter(|| black_box(k) + 1)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
