//! Abstract syntax tree for the codelet language.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Array indexing `a[i]`.
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Builtin call `f(args...)`.
    Call {
        /// Function name (resolved against the builtin table at compile
        /// time).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `a[i] = expr;`
    IndexAssign {
        /// Array variable name.
        array: String,
        /// Index expression.
        index: Expr,
        /// New element value.
        value: Expr,
    },
    /// Expression statement (e.g. a call for its side effect).
    Expr(Expr),
    /// `if cond { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_block: Vec<Stmt>,
        /// Optional else-branch.
        else_block: Vec<Stmt>,
    },
    /// `while cond { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for i in a..b { .. }`
    For {
        /// Loop variable.
        var: String,
        /// Inclusive start.
        start: Expr,
        /// Exclusive end.
        end: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return;` — end the codelet early.
    Return,
}
