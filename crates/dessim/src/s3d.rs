//! The S3D_Box coupled-visualization scenario (paper §IV.B, Fig. 9).
//!
//! Calibration, from the paper:
//!
//! * 22 species arrays, **1.7 MB per process** per output, every ten
//!   cycles — tiny next to GTS, so intra-program MPI dominates and the
//!   holistic/topology-aware policies choose **staging** placement;
//! * resource allocation settles at a **128:1** simulation:analytics
//!   process ratio, i.e. ~0.78% extra resources for staging;
//! * inline placement's cost is the visualization + image writing on the
//!   critical path, and "due to insufficient scalability of file I/O, the
//!   advantage of staging placement over inline increases at larger
//!   scales" — modelled as per-writer metadata serialization at the
//!   shared file system;
//! * staging lands within **3.6%** (Titan) / **5.1%** (Smoky) of the
//!   lower bound and beats inline by up to **19%** (Smoky) / **30%**
//!   (Titan).

use machine::MachineModel;

use crate::pipeline::{simulate_pipeline, PipelineParams};
use crate::{Outcome, Placement};

/// Scale point of an S3D_Box run.
#[derive(Debug, Clone)]
pub struct S3dScale {
    /// Machine model.
    pub machine: MachineModel,
    /// Cores (= MPI processes; S3D_Box runs one rank per core).
    pub sim_cores: usize,
    /// Output steps simulated.
    pub steps: u64,
}

struct S3dConsts {
    /// Seconds per simulation cycle.
    cycle_s: f64,
    /// Output bytes per process per step.
    output_bytes: f64,
    /// Visualization work per simulation process per step (core-seconds).
    viz_work_s: f64,
    /// Serial compositing + image-encode time per step (does not scale).
    viz_serial_s: f64,
    /// Metadata-serialization factor of the shared file system (per-open
    /// MDS cost multiplier; higher on the slower Smoky fabric).
    mds_factor: f64,
    /// Simulation : analytics process ratio from resource allocation.
    sim_to_ana: usize,
}

fn consts_for(machine: &MachineModel) -> S3dConsts {
    S3dConsts {
        cycle_s: 5.0,
        output_bytes: 1.7e6,
        viz_work_s: 0.25,
        viz_serial_s: 2.0,
        mds_factor: if machine.name == "titan" { 2.0 } else { 4.0 },
        sim_to_ana: 128,
    }
}

/// Shared-file-system image-write time for one step: `writers` ranks
/// writing `total_bytes` of rendered images. Metadata (opens) serialize at
/// the MDS — the non-scalable component Fig. 9 turns on.
fn image_write_s(machine: &MachineModel, c: &S3dConsts, writers: usize, total_bytes: f64) -> f64 {
    let meta = machine.fs.per_op_ns / 1e9 * writers as f64 * c.mds_factor;
    let data = total_bytes / machine.fs.effective_aggregate_bw(writers);
    meta + data
}

/// Evaluate one `(scale, placement)` point of Fig. 9.
pub fn s3d_outcome(scale: &S3dScale, placement: Placement) -> Outcome {
    let m = &scale.machine;
    let c = consts_for(m);
    let cores_per_node = m.node.cores_per_node();
    assert!(scale.sim_cores.is_multiple_of(cores_per_node), "whole nodes only");
    let sim_nodes = scale.sim_cores / cores_per_node;
    let procs = scale.sim_cores; // one MPI rank per core
    let period = 10.0 * c.cycle_s;
    // Rendered images per step: 22 species at a resolution that grows
    // with the (weak-scaled) global grid.
    let image_bytes = 22.0 * 3.0 * (procs as f64).sqrt() * 1024.0 * 32.0;

    let (params, nodes_used, inter_bytes, intra_bytes) = match placement {
        Placement::LowerBound => (
            PipelineParams {
                n_steps: scale.steps,
                cycles_per_step: 10,
                sim_cycle_s: c.cycle_s,
                io_visible_s: 0.0,
                movement_s: 0.0,
                movement_async: true,
                analytics_s: 0.0,
                queue_depth: 2,
            },
            sim_nodes,
            0.0,
            0.0,
        ),
        Placement::Inline => {
            // Visualization + compositing + image write on the critical
            // path of every step, with every rank hammering the MDS.
            let io = c.viz_work_s + c.viz_serial_s + image_write_s(m, &c, procs, image_bytes);
            (
                PipelineParams {
                    n_steps: scale.steps,
                    cycles_per_step: 10,
                    sim_cycle_s: c.cycle_s,
                    io_visible_s: io,
                    movement_s: 0.0,
                    movement_async: false,
                    analytics_s: 0.0,
                    queue_depth: 1,
                },
                sim_nodes,
                0.0,
                0.0,
            )
        }
        Placement::Staging(_) | Placement::Hybrid => {
            let n_ana = (procs / c.sim_to_ana).max(1);
            let staging_nodes = n_ana.div_ceil(cores_per_node).max(1);
            // Small asynchronous movement; negligible interference
            // (§IV.B.1: "due to the small output data size, asynchronous
            // data movement does not cause visible impact").
            let flows_per_nic = (sim_nodes as f64 / staging_nodes as f64).max(1.0);
            let bw = m.interconnect.link_bw
                / (1.0 + m.interconnect.contention_factor * (flows_per_nic - 1.0));
            let movement = procs as f64 * c.output_bytes / staging_nodes as f64 / bw;
            let analytics = c.viz_work_s * procs as f64 / n_ana as f64
                + c.viz_serial_s
                + image_write_s(m, &c, n_ana, image_bytes);
            // The data-aware mapping's hybrid outcome pays extra for the
            // simulation MPI traffic it pushed across the interconnect
            // (§IV.B.2), growing with scale.
            let hybrid_penalty = if placement == Placement::Hybrid {
                1.0 + (0.015 * (sim_nodes.max(2) as f64).log2()).min(0.10)
            } else {
                1.0
            };
            (
                PipelineParams {
                    n_steps: scale.steps,
                    cycles_per_step: 10,
                    sim_cycle_s: c.cycle_s * 1.003 * hybrid_penalty,
                    io_visible_s: 0.053, // the tuned async write call
                    movement_s: movement,
                    movement_async: true,
                    analytics_s: analytics,
                    // Buffer-pool depth: several async steps in flight.
                    queue_depth: 4,
                },
                sim_nodes + staging_nodes,
                procs as f64 * c.output_bytes * scale.steps as f64,
                0.0,
            )
        }
        Placement::HelperCore(_) => {
            unreachable!("helper-core is a GTS outcome; S3D uses inline/hybrid/staging")
        }
    };

    let report = simulate_pipeline(&params);
    let _ = period;
    Outcome {
        placement,
        sim_cores: scale.sim_cores,
        nodes_used,
        total_s: report.total_s,
        cpu_hours: placement::cpu_hours(nodes_used, report.total_s),
        inter_node_bytes: inter_bytes,
        intra_node_bytes: intra_bytes,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{smoky, titan};
    use placement::PolicyKind;

    fn scale(machine: MachineModel, cores: usize) -> S3dScale {
        S3dScale { machine, sim_cores: cores, steps: 20 }
    }

    #[test]
    fn staging_beats_inline_and_gap_grows_with_scale() {
        let ratio = |cores: usize| {
            let s = scale(smoky(), cores);
            s3d_outcome(&s, Placement::Inline).total_s
                / s3d_outcome(&s, Placement::Staging(PolicyKind::TopologyAware)).total_s
        };
        assert!(ratio(256) > 1.0);
        assert!(ratio(1024) > ratio(256), "file I/O must not scale");
    }

    #[test]
    fn improvement_bands_match_paper() {
        // Up to 19% on Smoky, up to 30% on Titan at their largest scales.
        let smoky_scale = scale(smoky(), 1024);
        let s_impr = 1.0
            - s3d_outcome(&smoky_scale, Placement::Staging(PolicyKind::TopologyAware)).total_s
                / s3d_outcome(&smoky_scale, Placement::Inline).total_s;
        assert!((0.10..0.28).contains(&s_impr), "smoky improvement {s_impr}");

        let titan_scale = scale(titan(), 4096);
        let t_impr = 1.0
            - s3d_outcome(&titan_scale, Placement::Staging(PolicyKind::TopologyAware)).total_s
                / s3d_outcome(&titan_scale, Placement::Inline).total_s;
        assert!((0.18..0.40).contains(&t_impr), "titan improvement {t_impr}");
        assert!(t_impr > s_impr * 0.9, "titan benefits at least comparably");
    }

    #[test]
    fn staging_close_to_lower_bound() {
        // ≤3.6% (Titan) / ≤5.1% (Smoky) above the lower bound.
        for (m, bound) in [(titan(), 0.055), (smoky(), 0.075)] {
            let name = m.name.clone();
            let s = scale(m, 1024);
            let lb = s3d_outcome(&s, Placement::LowerBound).total_s;
            let st = s3d_outcome(&s, Placement::Staging(PolicyKind::TopologyAware)).total_s;
            let gap = st / lb - 1.0;
            assert!((0.0..bound).contains(&gap), "{name}: gap {gap}");
        }
    }

    #[test]
    fn staging_uses_fraction_of_extra_resources() {
        // "it uses 0.78% additional resources".
        let s = scale(smoky(), 1024);
        let st = s3d_outcome(&s, Placement::Staging(PolicyKind::TopologyAware));
        let extra = st.nodes_used as f64 / (1024.0 / 16.0) - 1.0;
        assert!((0.0..0.02).contains(&extra), "extra {extra}");
    }

    #[test]
    fn hybrid_trails_staging() {
        let s = scale(smoky(), 512);
        let staging = s3d_outcome(&s, Placement::Staging(PolicyKind::Holistic));
        let hybrid = s3d_outcome(&s, Placement::Hybrid);
        assert!(hybrid.total_s > staging.total_s);
    }

    #[test]
    fn staging_cpu_hours_beat_inline() {
        // "Staging placement also consumes less CPU hours than Inline,
        // since it uses 0.78% additional resources but improves Total
        // Execution Time by up to 19% and 30%".
        let s = scale(titan(), 4096);
        let staging = s3d_outcome(&s, Placement::Staging(PolicyKind::TopologyAware));
        let inline = s3d_outcome(&s, Placement::Inline);
        assert!(staging.cpu_hours < inline.cpu_hours);
    }

    #[test]
    fn movement_is_all_internode_for_staging() {
        let s = scale(smoky(), 256);
        let st = s3d_outcome(&s, Placement::Staging(PolicyKind::TopologyAware));
        assert!(st.inter_node_bytes > 0.0);
        assert_eq!(st.intra_node_bytes, 0.0);
        assert_eq!(st.inter_node_bytes, 256.0 * 1.7e6 * 20.0);
    }
}
