//! Stones: EVPath's dataflow graph abstraction.
//!
//! Events ([`Record`]s) are submitted to *stones*; each stone either
//! consumes the event (terminal handler), conditionally forwards it
//! (filter), rewrites it (transform), fans it out (split), or ships it into
//! a byte transport (bridge). FlexIO's runtime builds small stone graphs
//! for its control paths — e.g. monitoring events flow through a filter
//! (sampling) into a bridge towards the analytics side.

use crate::ffs::Record;
use crate::transport::BoxedSender;

/// Identifier of a stone within one [`EvGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoneId(usize);

enum Stone {
    Terminal(Box<dyn FnMut(Record) + Send>),
    Filter {
        predicate: Box<dyn FnMut(&Record) -> bool + Send>,
        target: StoneId,
    },
    Transform {
        func: Box<dyn FnMut(Record) -> Record + Send>,
        target: StoneId,
    },
    Split(Vec<StoneId>),
    Bridge(BoxedSender),
    /// A stone that silently drops events (useful as a filter sink).
    Blackhole,
}

/// A local dataflow graph of stones.
#[derive(Default)]
pub struct EvGraph {
    stones: Vec<Stone>,
}

impl EvGraph {
    /// Empty graph.
    pub fn new() -> EvGraph {
        EvGraph::default()
    }

    fn add(&mut self, stone: Stone) -> StoneId {
        self.stones.push(stone);
        StoneId(self.stones.len() - 1)
    }

    /// A terminal stone invoking `handler` for every event.
    pub fn terminal(&mut self, handler: impl FnMut(Record) + Send + 'static) -> StoneId {
        self.add(Stone::Terminal(Box::new(handler)))
    }

    /// A filter stone forwarding to `target` only events satisfying
    /// `predicate`.
    pub fn filter(
        &mut self,
        predicate: impl FnMut(&Record) -> bool + Send + 'static,
        target: StoneId,
    ) -> StoneId {
        self.add(Stone::Filter { predicate: Box::new(predicate), target })
    }

    /// A transform stone rewriting events before forwarding to `target`.
    pub fn transform(
        &mut self,
        func: impl FnMut(Record) -> Record + Send + 'static,
        target: StoneId,
    ) -> StoneId {
        self.add(Stone::Transform { func: Box::new(func), target })
    }

    /// A split stone forwarding each event to every target.
    pub fn split(&mut self, targets: Vec<StoneId>) -> StoneId {
        self.add(Stone::Split(targets))
    }

    /// A bridge stone encoding events and shipping them into a transport.
    pub fn bridge(&mut self, sender: BoxedSender) -> StoneId {
        self.add(Stone::Bridge(sender))
    }

    /// A stone that drops everything.
    pub fn blackhole(&mut self) -> StoneId {
        self.add(Stone::Blackhole)
    }

    /// Submit an event to a stone; it propagates through the graph
    /// synchronously.
    pub fn submit(&mut self, stone: StoneId, event: Record) {
        // Stones may chain; a worklist avoids recursion and the borrow
        // issues of re-entrant `&mut self`.
        let mut work = vec![(stone, event)];
        while let Some((StoneId(idx), event)) = work.pop() {
            match &mut self.stones[idx] {
                Stone::Terminal(handler) => handler(event),
                Stone::Filter { predicate, target } => {
                    if predicate(&event) {
                        work.push((*target, event));
                    }
                }
                Stone::Transform { func, target } => {
                    let out = func(event);
                    work.push((*target, out));
                }
                Stone::Split(targets) => {
                    for &t in targets.iter() {
                        work.push((t, event.clone()));
                    }
                }
                Stone::Bridge(sender) => sender.send(&event.encode()),
                Stone::Blackhole => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffs::FieldValue;
    use crate::transport::inproc_pair;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn event(v: u64) -> Record {
        Record::new().with("v", FieldValue::U64(v))
    }

    #[test]
    fn terminal_receives_events() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut g = EvGraph::new();
        let t = g.terminal(move |r| {
            seen2.fetch_add(r.get_u64("v").unwrap(), Ordering::SeqCst);
        });
        g.submit(t, event(3));
        g.submit(t, event(4));
        assert_eq!(seen.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn filter_drops_nonmatching() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut g = EvGraph::new();
        let t = g.terminal(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let f = g.filter(|r| r.get_u64("v").unwrap_or(0) % 2 == 0, t);
        for v in 0..10 {
            g.submit(f, event(v));
        }
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn transform_then_terminal() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut g = EvGraph::new();
        let t = g.terminal(move |r| {
            seen2.store(r.get_u64("v").unwrap(), Ordering::SeqCst);
        });
        let x = g.transform(
            |r| {
                let v = r.get_u64("v").unwrap();
                event(v * 10)
            },
            t,
        );
        g.submit(x, event(7));
        assert_eq!(seen.load(Ordering::SeqCst), 70);
    }

    #[test]
    fn split_fans_out() {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let mut g = EvGraph::new();
        let ta = g.terminal(move |_| {
            a2.fetch_add(1, Ordering::SeqCst);
        });
        let tb = g.terminal(move |_| {
            b2.fetch_add(1, Ordering::SeqCst);
        });
        let s = g.split(vec![ta, tb]);
        g.submit(s, event(1));
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bridge_ships_encoded_records() {
        let (tx, mut rx) = inproc_pair();
        let mut g = EvGraph::new();
        let bridge = g.bridge(tx);
        g.submit(bridge, event(99));
        let received = Record::decode(&rx.recv()).unwrap();
        assert_eq!(received.get_u64("v"), Some(99));
    }

    #[test]
    fn pipeline_filter_transform_bridge() {
        // The monitoring path FlexIO builds: sample events, annotate, ship.
        let (tx, mut rx) = inproc_pair();
        let mut g = EvGraph::new();
        let bridge = g.bridge(tx);
        let annotate = g.transform(|r| r.with("annotated", FieldValue::U64(1)), bridge);
        let sample = g.filter(|r| r.get_u64("v").unwrap_or(0) % 10 == 0, annotate);
        for v in 0..30 {
            g.submit(sample, event(v));
        }
        let mut count = 0;
        while let Some(bytes) = rx.try_recv() {
            let r = Record::decode(&bytes).unwrap();
            assert_eq!(r.get_u64("annotated"), Some(1));
            count += 1;
        }
        assert_eq!(count, 3);
    }
}
