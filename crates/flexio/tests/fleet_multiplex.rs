//! The fleet's reason to exist: N worker cores sharing the load of many
//! concurrent couplings, with NUMA-pinned buffer pools and the control
//! plane (monitor sink, placement manager) riding the same shards. Every
//! coupling runs the full protocol — open, handshake, data transfer,
//! sync acks, EOS — as a `Send` future placed near its endpoint core by
//! [`FleetRuntime::spawn_for`].

mod common;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::block_1d;
use flexio::{
    CachingLevel, FleetRuntime, FlexIo, ManagerPolicy, MonitorRelay, MonitorSink, PlacementManager,
    PluginPlacement, Runtime, StreamHints, WriteMode,
};
use machine::laptop;

const THREADS: usize = 4;
const COUPLINGS: usize = 64;
const STEPS: u64 = 3;
// 2 KiB payloads: past the 512 B inline threshold, so cross-core data
// chunks must be carried in pool-allocated shm buffers.
const ELEMS: u64 = 256;

fn fleet_hints() -> StreamHints {
    StreamHints {
        // Sync mode bounds in-flight data per stream, so many streams'
        // traffic cannot overrun the bounded shm queues while their
        // consumers wait for their turn on a shard.
        write_mode: WriteMode::Sync,
        caching: CachingLevel::CachingAll,
        runtime: Runtime::Reactor,
        ..StreamHints::default()
    }
}

#[test]
fn four_shards_share_64_couplings_with_numa_local_pools() {
    let io = FlexIo::single_node(laptop());
    let hints = fleet_hints();
    let fleet = FleetRuntime::new(&laptop(), THREADS);

    let writers_done = Arc::new(AtomicUsize::new(0));
    let readers_done = Arc::new(AtomicUsize::new(0));
    let steps_read = Arc::new(AtomicU64::new(0));
    let pooled_workers = Arc::new(AtomicUsize::new(0));

    for i in 0..COUPLINGS {
        // Spread producers over every core; half the couplings run
        // same-core (in-proc transport), half cross-core (shared-memory
        // transport): one fleet, both fabrics.
        let wcore = laptop().node.location_of(i % laptop().total_cores());
        let rcore = if i % 2 == 0 {
            wcore
        } else {
            laptop().node.location_of((i + 1) % laptop().total_cores())
        };
        let name = format!("mux{i}");

        let io_w = io.clone();
        let hints_w = hints.clone();
        let name_w = name.clone();
        let done = Arc::clone(&writers_done);
        let pooled = Arc::clone(&pooled_workers);
        fleet.spawn_for(&[wcore], async move {
            // Whatever shard polls this opening, its worker thread must
            // have a NUMA-pinned pool installed for channel allocation.
            if shm::placement::thread_pool().is_some() {
                pooled.fetch_add(1, Ordering::Relaxed);
            }
            let mut w = io_w
                .open_writer_rt(&name_w, 0, 1, wcore, vec![wcore], hints_w)
                .await
                .expect("open writer");
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..ELEMS).map(|e| (i as u64 * 1000 + step * 10 + e) as f64).collect();
                w.write("u", block_1d(0, data, ELEMS));
                w.end_step_rt().await.expect("end_step");
            }
            w.close();
            done.fetch_add(1, Ordering::Relaxed);
        });

        let io_r = io.clone();
        let hints_r = hints.clone();
        let done = Arc::clone(&readers_done);
        let steps = Arc::clone(&steps_read);
        fleet.spawn_for(&[rcore], async move {
            let mut r = io_r
                .open_reader_rt(&name, 0, 1, rcore, vec![rcore], hints_r)
                .await
                .expect("open reader");
            let whole = Selection::GlobalBox(BoxSel::whole(&[ELEMS]));
            r.subscribe("u", whole.clone());
            loop {
                match r.begin_step_rt().await.expect("begin_step") {
                    StepStatus::Step(step) => {
                        let v = r.read("u", &whole).expect("subscribed var present");
                        let VarValue::Block(b) = v else { panic!("block expected") };
                        for (e, &x) in b.data.as_f64().iter().enumerate() {
                            assert_eq!(
                                x,
                                (i as u64 * 1000 + step * 10 + e as u64) as f64,
                                "stream {i} step {step} elem {e}"
                            );
                        }
                        steps.fetch_add(1, Ordering::Relaxed);
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            r.close();
            done.fetch_add(1, Ordering::Relaxed);
        });
    }

    // Let every task finish before snapshotting pool stats (PoolStats is
    // a point-in-time copy), then join for the final shard counters.
    let handle = fleet.handle();
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.live() > 0 {
        assert!(Instant::now() < deadline, "fleet never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let pools = fleet.pool_stats();
    let snaps = fleet.join();

    assert_eq!(writers_done.load(Ordering::Relaxed), COUPLINGS, "every writer completed");
    assert_eq!(readers_done.load(Ordering::Relaxed), COUPLINGS, "every reader completed");
    assert_eq!(
        steps_read.load(Ordering::Relaxed),
        COUPLINGS as u64 * STEPS,
        "no step lost or duplicated"
    );
    assert_eq!(
        pooled_workers.load(Ordering::Relaxed),
        COUPLINGS,
        "every writer task saw a NUMA-pinned shard pool"
    );

    // The work was actually sharded: every worker completed tasks, and
    // the fleet's step counter saw the data plane (note_step from the
    // engines), with completions spread over both NUMA domains.
    let total_completed: u64 = snaps.iter().map(|s| s.completed).sum();
    assert_eq!(total_completed, COUPLINGS as u64 * 2, "all tasks accounted for: {snaps:?}");
    let busy_shards = snaps.iter().filter(|s| s.completed > 0).count();
    assert!(busy_shards >= 2, "couplings all landed on one shard: {snaps:?}");
    let total_steps: u64 = snaps.iter().map(|s| s.steps).sum();
    assert_eq!(
        total_steps,
        COUPLINGS as u64 * STEPS * 2,
        "writer + reader engines each report every step to their shard"
    );

    // Cross-core couplings allocate their shm receive buffers from the
    // shard-pinned pools installed at fleet startup.
    let pool_traffic: u64 = pools.iter().map(|(_, _, s)| s.hits + s.misses).sum();
    assert!(pool_traffic > 0, "shm channels bypassed the pinned shard pools: {pools:?}");
}

#[test]
fn control_plane_rides_the_fleet() {
    let io = FlexIo::single_node(laptop());
    let hints = fleet_hints();
    let fleet = FleetRuntime::new(&laptop(), 2);

    let wcore = laptop().node.location_of(0);
    let rcore = laptop().node.location_of(1);

    // Data plane: one monitored coupling.
    let io_w = io.clone();
    let hints_w = hints.clone();
    let writer_done = Arc::new(AtomicUsize::new(0));
    let done_w = Arc::clone(&writer_done);
    fleet.spawn_for(&[wcore], async move {
        let mut w = io_w
            .open_writer_rt("mon", 0, 1, wcore, vec![wcore], hints_w)
            .await
            .expect("open writer");
        // The monitor channel's placement needs both endpoints: yield
        // until the reader side has attached before claiming it.
        while w.link().try_reader_info().is_none() {
            flexio_reactor::sleep(Duration::from_millis(1)).await;
        }
        let mut relay = MonitorRelay::for_stream(
            io_w.directory().as_ref(),
            "mon",
            0,
            1,
            Duration::from_secs(2),
        )
        .expect("relay attaches to the registered link");
        for step in 0..STEPS {
            w.begin_step(step);
            let data: Vec<f64> = (0..ELEMS).map(|e| (step * 10 + e) as f64).collect();
            w.write("u", block_1d(0, data, ELEMS));
            w.end_step_rt().await.expect("end_step");
            // Publish a heavy wire-volume sample per step: enough for the
            // placement manager to recommend writer-side conditioning.
            relay.publish(flexio::MonitorEvent::DataSend, step, 0, 50 << 20, 1000);
        }
        w.close();
        done_w.fetch_add(1, Ordering::Relaxed);
    });

    let io_r = io.clone();
    let hints_r = hints.clone();
    fleet.spawn_for(&[rcore], async move {
        let mut r =
            io_r.open_reader_rt("mon", 0, 1, rcore, vec![rcore], hints_r).await.expect("reader");
        let whole = Selection::GlobalBox(BoxSel::whole(&[ELEMS]));
        r.subscribe("u", whole.clone());
        while let StepStatus::Step(_) = r.begin_step_rt().await.expect("begin_step") {
            r.end_step();
        }
        r.close();
    });

    // Control plane: the monitor-relay drain and the placement decision
    // loop are fleet tasks too — no helper threads anywhere. (Claiming
    // the monitor channel needs both endpoints placed, hence the wait.)
    let link = io.directory().lookup("mon", Duration::from_secs(2)).expect("stream registered");
    link.wait_reader_info(Duration::from_secs(2)).expect("reader attached");
    let sink = MonitorSink::for_stream(io.directory().as_ref(), "mon", Duration::from_secs(2))
        .expect("sink attaches to the registered link");
    let sink_task = fleet.spawn_monitor_sink(sink, Duration::from_millis(1));
    // The manager reads the coupling's live link monitor, where the
    // engines record real per-step wire volume (2 KiB here) — set the
    // threshold below it so the decision loop has something to decide.
    let policy = ManagerPolicy { wire_bytes_threshold: 1024, ..ManagerPolicy::default() };
    let manager = PlacementManager::builder()
        .policy(policy)
        .initial_placement(PluginPlacement::ReaderSide)
        .build_manager();
    let mgr_task = fleet.spawn_manager(
        manager,
        Arc::clone(io.directory()),
        "mon",
        0,
        Duration::from_millis(1),
    );

    // Every spawn_* now returns the unified TaskHandle; the typed
    // observers (live replica, latest recommendation) come back via
    // downcast when the generic kind/counters surface isn't enough.
    assert_eq!(sink_task.kind(), "monitor_sink");
    assert_eq!(mgr_task.kind(), "manager");
    let sink_handle =
        sink_task.typed::<flexio::relay::SinkTaskHandle>().expect("monitor_sink downcast").clone();
    let mgr_handle =
        mgr_task.typed::<flexio::manager::ManagerTaskHandle>().expect("manager downcast").clone();

    // Wait (off-fleet) until the data plane finished and the control
    // plane observed it, then release the two periodic loops.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let data_done = writer_done.load(Ordering::Relaxed) == 1;
        let monitored = sink_handle.absorbed() >= STEPS;
        let decided = mgr_handle.decisions() > 0 && mgr_handle.latest().is_some();
        if data_done && monitored && decided {
            break;
        }
        assert!(Instant::now() < deadline, "control plane never caught up");
        std::thread::sleep(Duration::from_millis(2));
    }
    sink_task.stop();
    mgr_task.stop();
    fleet.join();
    assert!(sink_task.is_done() && mgr_task.is_done(), "fleet joined ⇒ control tasks finished");
    assert_eq!(
        sink_task.counter("absorbed"),
        Some(sink_handle.absorbed()),
        "unified counters mirror the typed observer"
    );
    assert_eq!(mgr_task.counter("decisions"), Some(mgr_handle.decisions()));

    // The sink's shared monitor replica saw the relayed samples, and the
    // manager turned them into a placement decision.
    assert!(sink_handle.absorbed() >= STEPS, "sink drained every relayed sample");
    assert_eq!(sink_handle.corrupt_frames(), 0);
    assert!(sink_handle.monitor().count(flexio::MonitorEvent::DataSend) >= STEPS);
    let rec = mgr_handle.latest().expect("manager published a recommendation");
    assert_eq!(
        rec.placement,
        PluginPlacement::WriterSide,
        "2 KiB/step wire volume over a 1 KiB budget must pull conditioning to the writer: {}",
        rec.reason
    );
}
