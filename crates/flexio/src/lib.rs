//! `flexio` — the FlexIO middleware (paper §II).
//!
//! FlexIO couples a running parallel simulation with online analytics and
//! makes the analytics *location-flexible*: inline, on helper cores of the
//! compute nodes, on dedicated staging nodes, or offline via files — all
//! behind the unchanged ADIOS-style read/write API. This crate is the
//! runtime that makes that work:
//!
//! * [`directory`] — the external directory service used for connection
//!   management: the writer's coordinator registers a stream name with its
//!   contact information; the reader's coordinator looks it up (§II.C.1).
//!   Behind the [`DirectoryService`] trait live three backends: the
//!   original in-process map, a lock-striped sharded registry, and a
//!   gossip-replicated multi-node cluster with failover.
//! * [`link`] — the connection fabric between the two programs: per
//!   `(writer rank, reader rank)` duplex channels whose transport (shared
//!   memory vs RDMA) is **automatically selected from the placement** of
//!   the two endpoints (§II.A).
//! * [`protocol`] — the 4-step handshake (gather → exchange → broadcast →
//!   transfer) with the three caching levels `NO_CACHING` /
//!   `CACHING_LOCAL` / `CACHING_ALL`, batching, and sync/async write
//!   modes (§II.C.2), instrumented so message counts are observable.
//! * [`redistribute`] — MxN global-array redistribution (Fig. 3) on top
//!   of `adios`' hyperslab machinery, plus the process-group pattern.
//! * [`writer`] / [`reader`] — stream-mode [`adios::WriteEngine`] /
//!   [`adios::ReadEngine`] implementations; swapping them with the file
//!   engines is the paper's one-line-config placement switch.
//! * [`plugins`] — Data Conditioning plug-in management: reader-side
//!   creation, dynamic deployment into the writer's address space, and
//!   runtime migration (§II.F).
//! * [`monitor`] — performance monitoring of movement, plug-ins and
//!   memory (§II.G); [`manager`] — the online decision loop that turns
//!   monitoring data into dynamic plug-in placement (§II.G/§IV);
//!   [`relay`] — the stone-graph relay that ships monitoring samples from
//!   the simulation side to the analytics side online.
//! * [`pubsub`] — pub/sub fan-out with durable replay: one writer stream
//!   feeds N independent reader groups through a bounded replay ring with
//!   per-group QoS/backpressure and BP-spilled retention, so late joiners
//!   and restarted groups catch up from any retained step.
//! * [`query`] — declarative vectorized array queries over live streams:
//!   a small logical plan with filter pushdown, where eligible predicates
//!   lower to writer-side Data Conditioning plug-ins so filtered-out
//!   elements never cross the transport.
//! * Resiliency (§II.H): the simple timeout-and-retry scheme the paper
//!   ships lives in [`link::recv_record`]; the 2-phase-commit step
//!   transaction it names as future work is implemented inside the
//!   writer/reader step protocol (enable with `StreamHints::transactional`).

pub mod directory;
pub mod elastic;
pub mod fleet;
pub mod link;
pub mod manager;
pub mod monitor;
pub mod plugins;
pub mod procnet;
pub mod protocol;
pub mod pubsub;
pub mod query;
pub mod reader;
pub mod redistribute;
pub mod relay;
pub mod task;
pub mod writer;

pub use directory::{
    decode_contact_table, encode_contact_table, DirectoryCluster, DirectoryConfig, DirectoryError,
    DirectoryService, InProcDirectory, ReplicatedDirectory, ShardedDirectory, WireContact,
};
pub use elastic::{
    ElasticConfig, ElasticConfigBuilder, ElasticController, ElasticDecision, ElasticHandle,
    ElasticRoster,
};
pub use fleet::{resolve_threads, FleetRuntime};
pub use link::{FlexIo, HintKey, Runtime, StreamHints, StreamHintsBuilder, Transport};
pub use manager::{ManagerPolicy, PlacementManager, Recommendation};
pub use monitor::{MonitorEvent, PerfMonitor};
pub use plugins::{PluginPlacement, PluginSpec};
pub use procnet::{
    open_reader_proc, open_writer_proc, send_peer_list, ChannelHub, ProcConfig, RemoteDirectory,
    WireDirNode,
};
pub use protocol::{CachingLevel, ProtocolCounters, WriteMode};
pub use pubsub::{
    step_digest, Fetch, GroupCounters, GroupTaskHandle, PubSubConfig, PubSubCounters, Qos,
    ReaderGroup, SealedStep, SpillStore, SpillTail, StepPublisher, StreamLog,
};
pub use query::{QueryConfig, QueryCounters, QuerySession};
pub use reader::StreamReader;
pub use relay::{MonitorRelay, MonitorSink};
pub use task::{ControlTask, TaskHandle};
pub use writer::StreamWriter;

// Pre-unification control-task handle names. `FleetRuntime::spawn_*`
// now returns the one [`TaskHandle`]; the typed handles remain
// reachable through [`TaskHandle::typed`] and these paths.
#[deprecated(
    since = "0.10.0",
    note = "spawn_* now returns `TaskHandle`; downcast with \
    `TaskHandle::typed::<ManagerTaskHandle>()` when the typed observer is needed"
)]
pub use manager::ManagerTaskHandle;
#[deprecated(
    since = "0.10.0",
    note = "spawn_* now returns `TaskHandle`; downcast with \
    `TaskHandle::typed::<QueryHandle>()` when the typed observer is needed"
)]
pub use query::QueryHandle;
#[deprecated(
    since = "0.10.0",
    note = "spawn_* now returns `TaskHandle`; downcast with \
    `TaskHandle::typed::<SinkTaskHandle>()` when the typed observer is needed"
)]
pub use relay::SinkTaskHandle;
