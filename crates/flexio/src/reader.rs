//! The stream-mode read engine (paper §II.B–C, reader side).
//!
//! "The analytics opens the named file, but internally, this establishes
//! connections to simulation processes via the underlying transport.
//! Simulation processes, then, periodically write data to the file, and
//! the data is passed to analytics as return parameters of their read
//! calls. When the simulation closes the file, the connections are closed
//! by the transport and analytics components receive End-of-Stream as
//! return values from their read calls."

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue};
use evpath::{BoxedReceiver, BoxedSender, FieldValue, Record};

use crate::link::{
    recv_record, recv_record_rt, ChannelId, LinkState, Runtime, StreamError, StreamHints,
};
use crate::monitor::MonitorEvent;
use crate::plugins::{InstalledPlugin, PluginPlacement, PluginSpec};
use crate::protocol::{self, msg, CachingLevel, WriteMode};
use crate::redistribute::{self, BoxAssembler, ChunkPlan, Subscription, VarMeta};
use crate::writer::{
    decode_plugin_specs, decode_subscriptions, encode_plugin_specs, encode_subscriptions, CtrlIn,
};

struct ReaderCoord {
    from_ranks: Vec<Option<BoxedReceiver>>,
    to_ranks: Vec<Option<BoxedSender>>,
    ctrl_tx: BoxedSender,
    ctrl_in: CtrlIn,
    cached_sels: Vec<Vec<Subscription>>,
    /// Full plug-in registry; reader-side specs are also distributed to
    /// reader ranks, writer-side specs shipped across.
    all_plugins: Vec<PluginSpec>,
}

/// Stream-mode [`ReadEngine`]: one per reader rank.
pub struct StreamReader {
    link: Arc<LinkState>,
    rank: usize,
    nranks: usize,
    name: String,
    hints: StreamHints,
    subscriptions: Vec<Subscription>,
    plugins_dirty: bool,
    installed: HashMap<String, InstalledPlugin>,
    /// Local fallback copies of *writer-side* plug-ins: applied only to
    /// chunks that arrive without the [`crate::plugins::DC_APPLIED_MARKER`]
    /// (the writer has not yet installed the migrated plug-in), making
    /// migration seamless.
    fallback: HashMap<String, InstalledPlugin>,
    data_rx: HashMap<usize, BoxedReceiver>,
    ack_tx: HashMap<usize, BoxedSender>,
    side_up: Option<BoxedSender>,
    side_down: Option<BoxedReceiver>,
    coord: Option<ReaderCoord>,
    /// This rank's column of the transfer plan: chunks per writer rank.
    cached_plan_col: Vec<Vec<ChunkPlan>>,
    steps_read: u64,
    current_step: Option<u64>,
    store: HashMap<(usize, String), Vec<VarValue>>,
    /// `(writer, var)` chunks of the current step that arrived already
    /// conditioned (the `dc_applied` marker was stamped upstream), i.e.
    /// the writer-side plug-in really ran before the transport.
    wire_conditioned: HashSet<(usize, String)>,
    eos: bool,
    /// Elastic membership (coordinator only): the roster whose desired
    /// member count gets announced inside each `go` broadcast.
    elastic: Option<Arc<crate::elastic::ElasticRoster>>,
    /// Reader ranks participating in the *next* step (coordinator only;
    /// committed by the previous step's announcement).
    elastic_active: usize,
    /// Latest `(generation, active)` announcement this rank stamped into
    /// (rank 0) or parsed from (ranks > 0) a `go`.
    announced: Option<(u64, usize)>,
}

impl StreamReader {
    pub(crate) fn new(
        link: Arc<LinkState>,
        rank: usize,
        nranks: usize,
        name: String,
        hints: StreamHints,
    ) -> StreamReader {
        let (side_up, side_down, coord) = if rank == 0 {
            let coord = ReaderCoord {
                from_ranks: (0..nranks).map(|_| None).collect(),
                to_ranks: (0..nranks).map(|_| None).collect(),
                ctrl_tx: link.claim_sender(ChannelId::ControlToWriter),
                ctrl_in: CtrlIn::new(
                    link.claim_receiver(ChannelId::ControlToReader),
                    Arc::clone(&link.counters),
                ),
                cached_sels: vec![Vec::new(); nranks],
                all_plugins: Vec::new(),
            };
            (None, None, Some(coord))
        } else {
            (
                Some(link.claim_sender(ChannelId::ReaderSide { rank, up: true })),
                Some(link.claim_receiver(ChannelId::ReaderSide { rank, up: false })),
                None,
            )
        };
        StreamReader {
            link,
            rank,
            nranks,
            name,
            hints,
            subscriptions: Vec::new(),
            plugins_dirty: false,
            installed: HashMap::new(),
            fallback: HashMap::new(),
            data_rx: HashMap::new(),
            ack_tx: HashMap::new(),
            side_up,
            side_down,
            coord,
            cached_plan_col: Vec::new(),
            steps_read: 0,
            current_step: None,
            store: HashMap::new(),
            wire_conditioned: HashSet::new(),
            eos: false,
            elastic: None,
            elastic_active: nranks,
            announced: None,
        }
    }

    /// Stream name.
    pub fn stream_name(&self) -> &str {
        &self.name
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Shared link (counters, monitor) for inspection.
    pub fn link(&self) -> &Arc<LinkState> {
        &self.link
    }

    /// Declare interest in a variable under a selection. Must be called
    /// before the first `begin_step`; afterwards only under `NO_CACHING`
    /// (cached plans assume stable subscriptions, §II.C.2).
    pub fn subscribe(&mut self, var: &str, sel: Selection) {
        assert!(
            self.steps_read == 0 || self.hints.caching == CachingLevel::NoCaching,
            "subscriptions are frozen after the first step unless NO_CACHING"
        );
        self.subscriptions.push(Subscription { var: var.to_string(), sel });
    }

    /// Drop every subscription (same freeze rule as [`Self::subscribe`]).
    /// Elastic member ranks use this to re-slice their share of the
    /// global array when the roster resizes between steps.
    pub fn clear_subscriptions(&mut self) {
        assert!(
            self.steps_read == 0 || self.hints.caching == CachingLevel::NoCaching,
            "subscriptions are frozen after the first step unless NO_CACHING"
        );
        self.subscriptions.clear();
    }

    /// Put this coordinator's membership under `roster` control: from
    /// the next step on, every `go` broadcast carries the roster's
    /// desired member count, committing membership changes exactly at
    /// step boundaries. Requires `NO_CACHING` — elastic membership rides
    /// the per-step re-gather/re-plan handshake — and rank 0.
    pub fn enable_elastic(&mut self, roster: Arc<crate::elastic::ElasticRoster>) {
        assert_eq!(self.rank, 0, "the reader coordinator owns the roster");
        assert_eq!(
            self.hints.caching,
            CachingLevel::NoCaching,
            "elastic membership requires NO_CACHING (per-step re-plan)"
        );
        self.elastic_active = roster.active().min(self.nranks);
        self.elastic = Some(roster);
    }

    /// The latest `(generation, active)` roster announcement this rank
    /// has seen — the membership in force for the *next* step. Member
    /// ranks read this after `end_step` to learn whether they just
    /// retired; the coordinator's step loop reads it to drive its rank
    /// pool.
    pub fn elastic_announcement(&self) -> Option<(u64, usize)> {
        self.announced
    }

    /// Install or migrate a Data Conditioning plug-in. Reader-side
    /// creation (paper §II.F): only the analytics coordinator (rank 0)
    /// drives deployment; placement updates take effect within one step.
    pub fn install_plugin(&mut self, spec: PluginSpec) {
        assert_eq!(self.rank, 0, "plug-ins are deployed from the reader coordinator");
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        coord.all_plugins.retain(|p| p.var != spec.var);
        coord.all_plugins.push(spec);
        self.plugins_dirty = true;
    }

    /// Borrow the chunks stored for `(writer, var)` in the current step,
    /// in arrival order, without copying — packed wire views stay packed.
    /// The query executor reads chunks through this (zero-copy path);
    /// `read()` stays the materializing application API.
    pub fn stored(&self, w: usize, var: &str) -> Option<&[VarValue]> {
        self.store.get(&(w, var.to_string())).map(|v| v.as_slice())
    }

    /// Whether `(writer, var)`'s chunk for the current step arrived
    /// already conditioned (the `dc_applied` marker was stamped before
    /// the transport) — i.e. writer-side pushdown actually ran, as
    /// opposed to the reader's local fallback copy.
    pub fn arrived_conditioned(&self, w: usize, var: &str) -> bool {
        self.wire_conditioned.contains(&(w, var.to_string()))
    }

    fn install_local(&mut self, specs: &[PluginSpec]) {
        self.installed.clear();
        self.fallback.clear();
        for spec in specs {
            match InstalledPlugin::install(spec.clone()) {
                Ok(p) => {
                    if spec.placement == PluginPlacement::ReaderSide {
                        self.installed.insert(spec.var.clone(), p);
                    } else {
                        // Writer-side plug-in: keep a local copy to cover
                        // the migration handover (chunks that arrive
                        // unconditioned are conditioned here instead).
                        self.fallback.insert(spec.var.clone(), p);
                    }
                }
                Err(e) => {
                    eprintln!("flexio: dropping plug-in for `{}`: {e}", spec.var);
                }
            }
        }
    }

    /// Coordinator/rank step negotiation; returns the step index, or
    /// `None` for end-of-stream.
    fn coordinate_begin(&mut self) -> Result<Option<u64>, StreamError> {
        let first = self.steps_read == 0;
        let need_sub_gather = first || self.hints.caching == CachingLevel::NoCaching;
        let need_exchange = first || self.hints.caching != CachingLevel::CachingAll;
        let counters = Arc::clone(&self.link.counters);
        let hints = self.hints.clone();
        let link = Arc::clone(&self.link);
        let nranks = self.nranks;
        // Elastic membership: `participants` are the ranks committed for
        // *this* step (by the previous step's announcement); the roster
        // is re-read here so this step's `go` carries the freshest
        // desired membership for the next step.
        let elastic = self.elastic.is_some();
        let participants = if elastic { self.elastic_active } else { nranks };
        let roster_note =
            self.elastic.as_ref().map(|r| (r.generation(), r.active().clamp(1, nranks)));

        if self.rank != 0 {
            if need_sub_gather {
                self.side_up.as_mut().expect("non-coordinator has side_up").send(
                    &protocol::message("subs")
                        .with("sels", FieldValue::Record(encode_subscriptions(&self.subscriptions)))
                        .encode(),
                );
                counters.bump(&counters.gather_msgs);
            }
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let go = recv_record(rx, &hints, &counters)?;
            match protocol::kind_of(&go) {
                "go" => {
                    let step = go
                        .get_u64("step")
                        .ok_or_else(|| StreamError::Corrupt("go missing step".into()))?;
                    if let Some(plan) = go.get_record("plan") {
                        self.cached_plan_col = decode_plan_col(plan)
                            .ok_or_else(|| StreamError::Corrupt("bad plan col".into()))?;
                    }
                    if let Some(pl) = go.get_record("plugins") {
                        let specs = decode_plugin_specs(pl)
                            .ok_or_else(|| StreamError::Corrupt("bad plugin specs".into()))?;
                        self.install_local(&specs);
                    }
                    if let (Some(g), Some(a)) = (go.get_u64("e_gen"), go.get_u64("e_active")) {
                        self.announced = Some((g, a as usize));
                    }
                    Ok(Some(step))
                }
                k if k == msg::EOS => Ok(None),
                k => Err(StreamError::Protocol(format!("expected go/eos, got {k}"))),
            }
        } else {
            // ---- coordinator ----
            let mut plugin_dirty = self.plugins_dirty;
            self.plugins_dirty = false;
            {
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                // Ship dynamic plug-in updates ahead of the step (after the
                // first exchange they travel on the dedicated control path).
                if plugin_dirty && !first {
                    let update = protocol::message(msg::PLUGIN_UPDATE).with(
                        "plugins",
                        FieldValue::Record(encode_plugin_specs(&coord.all_plugins)),
                    );
                    coord.ctrl_tx.send(&update.encode());
                    counters.bump(&counters.plugin_msgs);
                }
            }

            // Step header (or EOS) from the writer coordinator. Under
            // `eos_on_silence` a writer that died without closing (crash
            // faults, abandoned streams) degrades into a synthesized EOS
            // instead of an error: the reader side drains and ends cleanly.
            let header = {
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                match coord.ctrl_in.recv_expect(&[msg::STEP, msg::EOS], &hints) {
                    Ok(h) => h,
                    Err(StreamError::Timeout) if hints.eos_on_silence => {
                        counters.bump(&counters.eos_synthesized);
                        protocol::message(msg::EOS)
                    }
                    Err(e) => return Err(e),
                }
            };
            if protocol::kind_of(&header) == msg::EOS {
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                for r in 1..participants {
                    if elastic && link.is_evicted(r) {
                        continue;
                    }
                    let tx = coord.to_ranks[r].get_or_insert_with(|| {
                        link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
                    });
                    tx.send(&protocol::message(msg::EOS).encode());
                    counters.bump(&counters.step_msgs);
                }
                return Ok(None);
            }
            let step = header
                .get_u64("step")
                .ok_or_else(|| StreamError::Corrupt("step header missing step".into()))?;
            let writer_exchanges = header.get_u64("exchange") == Some(1);
            if writer_exchanges != need_exchange {
                return Err(StreamError::Protocol(format!(
                    "caching configuration mismatch: writer exchange={writer_exchanges}, \
                     reader expects {need_exchange} (configure both sides identically)"
                )));
            }

            let mut plan_dirty = false;
            let mut writer_dists: Option<Vec<Vec<VarMeta>>> = None;
            if need_exchange {
                // Receive writer distributions.
                let info = {
                    let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                    coord.ctrl_in.recv_expect(&[msg::WRITER_INFO], &hints)?
                };
                let nw = info
                    .get_u64("nranks")
                    .ok_or_else(|| StreamError::Corrupt("writer_info missing nranks".into()))?
                    as usize;
                let mut dists = Vec::with_capacity(nw);
                for w in 0..nw {
                    let dr = info
                        .get_record(&format!("dists.{w}"))
                        .ok_or_else(|| StreamError::Corrupt("writer_info missing dists".into()))?;
                    dists.push(
                        decode_writer_metas(dr)
                            .ok_or_else(|| StreamError::Corrupt("bad metas".into()))?,
                    );
                }
                writer_dists = Some(dists);

                // Gather this side's subscriptions.
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                if need_sub_gather {
                    coord.cached_sels[0] = self.subscriptions.clone();
                    for r in 1..nranks {
                        if r >= participants || (elastic && link.is_evicted(r)) {
                            // Outside the committed roster (or gone for
                            // good): contributes nothing this step.
                            coord.cached_sels[r].clear();
                            continue;
                        }
                        let rx = coord.from_ranks[r].get_or_insert_with(|| {
                            link.claim_receiver(ChannelId::ReaderSide { rank: r, up: true })
                        });
                        match recv_record(rx, &hints, &counters) {
                            Ok(m) => {
                                coord.cached_sels[r] = m
                                    .get_record("sels")
                                    .and_then(decode_subscriptions)
                                    .ok_or_else(|| StreamError::Corrupt("bad subs".into()))?;
                            }
                            // An elastic member that never showed up
                            // (e.g. a freshly-activated rank killed
                            // before its first step): evict and re-plan
                            // around it instead of failing the coupling.
                            Err(StreamError::Timeout) if elastic => {
                                if link.evict_reader(r) {
                                    counters.bump(&counters.evictions);
                                }
                                counters.bump(&counters.degraded_steps);
                                coord.cached_sels[r].clear();
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                // Reply with selections (and, on the first step, plug-ins).
                let mut reply = protocol::message(msg::READER_INFO)
                    .with("nranks", FieldValue::U64(nranks as u64));
                for (r, sels) in coord.cached_sels.iter().enumerate() {
                    reply.set(&format!("sels.{r}"), FieldValue::Record(encode_subscriptions(sels)));
                }
                if first && !coord.all_plugins.is_empty() {
                    reply.set(
                        "plugins",
                        FieldValue::Record(encode_plugin_specs(&coord.all_plugins)),
                    );
                    plugin_dirty = true;
                }
                coord.ctrl_tx.send(&reply.encode());
                counters.bump(&counters.exchange_msgs);
                plan_dirty = true;
            }

            // Compute and distribute the plan.
            let coord = self.coord.as_mut().expect("rank 0 is coordinator");
            // Under elastic membership the plug-in registry rides every
            // `go`: a rank activated mid-run must not miss specs that
            // were only broadcast before it joined.
            let plugin_record = (plugin_dirty || (elastic && !coord.all_plugins.is_empty()))
                .then(|| encode_plugin_specs(&coord.all_plugins));
            let mut my_col = None;
            if plan_dirty {
                let dists = writer_dists.as_ref().expect("exchange delivered dists");
                let full = redistribute::plan(dists, &coord.cached_sels);
                // Column for each reader rank r: plan[w][r] over w.
                for r in 0..nranks {
                    let col: Vec<Vec<ChunkPlan>> = full.iter().map(|row| row[r].clone()).collect();
                    if r == 0 {
                        my_col = Some(col);
                        continue;
                    }
                    if r >= participants || (elastic && link.is_evicted(r)) {
                        continue;
                    }
                    let tx = coord.to_ranks[r].get_or_insert_with(|| {
                        link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
                    });
                    let mut go = protocol::message("go")
                        .with("step", FieldValue::U64(step))
                        .with("plan", FieldValue::Record(encode_plan_col(&col)));
                    if let Some(pl) = &plugin_record {
                        go.set("plugins", FieldValue::Record(pl.clone()));
                    }
                    if let Some((g, a)) = roster_note {
                        go.set("e_gen", FieldValue::U64(g));
                        go.set("e_active", FieldValue::U64(a as u64));
                    }
                    tx.send(&go.encode());
                    counters.bump(&counters.bcast_msgs);
                }
            } else {
                for r in 1..participants {
                    if elastic && link.is_evicted(r) {
                        continue;
                    }
                    let tx = coord.to_ranks[r].get_or_insert_with(|| {
                        link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
                    });
                    let mut go = protocol::message("go").with("step", FieldValue::U64(step));
                    if let Some(pl) = &plugin_record {
                        go.set("plugins", FieldValue::Record(pl.clone()));
                    }
                    if let Some((g, a)) = roster_note {
                        go.set("e_gen", FieldValue::U64(g));
                        go.set("e_active", FieldValue::U64(a as u64));
                    }
                    tx.send(&go.encode());
                    counters.bump(&counters.step_msgs);
                }
            }
            if let Some(col) = my_col {
                self.cached_plan_col = col;
            }
            if plugin_dirty {
                let specs = self.coord.as_ref().expect("coordinator").all_plugins.clone();
                self.install_local(&specs);
            }
            if let Some((g, a)) = roster_note {
                // Commit the announcement: every participant of this
                // step (including this coordinator) now knows the
                // roster the next step runs on.
                self.announced = Some((g, a));
                self.elastic_active = a;
            }
            Ok(Some(step))
        }
    }

    /// Step 4, receive side: collect the planned chunks from each writer.
    fn receive_chunks(&mut self, step: u64) -> Result<(), StreamError> {
        let counters = Arc::clone(&self.link.counters);
        let monitor = self.link.monitor.clone();
        let plan_col = self.cached_plan_col.clone();
        for (w, chunks) in plan_col.iter().enumerate() {
            let expected = redistribute::expected_messages(chunks, self.hints.batching);
            if expected == 0 {
                continue;
            }
            let rx = {
                let link = &self.link;
                let rank = self.rank;
                self.data_rx
                    .entry(w)
                    .or_insert_with(|| link.claim_receiver(ChannelId::Data { w, r: rank }))
            };
            let mut records = Vec::with_capacity(expected);
            for _ in 0..expected {
                let record = recv_record(rx, &self.hints, &counters)?;
                records.push(record);
            }
            for record in records {
                let bytes_estimate = 0u64; // bytes recorded at send side
                monitor.record(MonitorEvent::DataRecv, step, self.rank, bytes_estimate, 0);
                match protocol::kind_of(&record) {
                    k if k == msg::CHUNK => self.store_chunk(&record, step)?,
                    k if k == msg::BATCH => {
                        let n = record
                            .get_u64("n")
                            .ok_or_else(|| StreamError::Corrupt("batch missing n".into()))?;
                        for i in 0..n {
                            let c = record
                                .get_record(&format!("c.{i}"))
                                .ok_or_else(|| StreamError::Corrupt("batch missing chunk".into()))?
                                .clone();
                            self.store_chunk(&c, step)?;
                        }
                    }
                    k => {
                        return Err(StreamError::Protocol(format!("expected chunk/batch, got {k}")))
                    }
                }
            }
            if self.hints.write_mode == WriteMode::Sync {
                let tx = {
                    let link = &self.link;
                    let rank = self.rank;
                    self.ack_tx
                        .entry(w)
                        .or_insert_with(|| link.claim_sender(ChannelId::Ack { w, r: rank }))
                };
                tx.send(&protocol::message(msg::ACK).with("step", FieldValue::U64(step)).encode());
                counters.bump(&counters.ack_msgs);
            }
        }
        Ok(())
    }

    fn store_chunk(&mut self, record: &Record, step: u64) -> Result<(), StreamError> {
        let w = record
            .get_u64("w")
            .ok_or_else(|| StreamError::Corrupt("chunk missing writer rank".into()))?
            as usize;
        let chunk_step = record
            .get_u64("step")
            .ok_or_else(|| StreamError::Corrupt("chunk missing step".into()))?;
        if chunk_step != step {
            return Err(StreamError::Protocol(format!(
                "chunk for step {chunk_step} arrived during step {step}"
            )));
        }
        let var = record
            .get_str("var")
            .ok_or_else(|| StreamError::Corrupt("chunk missing var".into()))?
            .to_string();
        let mut value = record
            .get_record("body")
            .and_then(VarValue::from_record)
            .ok_or_else(|| StreamError::Corrupt("chunk body undecodable".into()))?;
        let mut extras: Vec<(String, VarValue)> = Vec::new();
        if let Some(er) = record.get_record("extras") {
            let n = er.get_u64("n").unwrap_or(0);
            for i in 0..n {
                let (Some(name), Some(vr)) =
                    (er.get_str(&format!("name.{i}")), er.get_record(&format!("val.{i}")))
                else {
                    return Err(StreamError::Corrupt("bad chunk extras".into()));
                };
                let v = VarValue::from_record(vr)
                    .ok_or_else(|| StreamError::Corrupt("bad extra value".into()))?;
                extras.push((name.to_string(), v));
            }
        }
        // Reader-side conditioning for whole-value (process-group) chunks:
        // the installed reader-side plug-in, or — when the chunk arrived
        // without the upstream marker — the fallback copy of a migrating
        // writer-side plug-in (exactly-once conditioning across handover).
        let already_conditioned =
            extras.iter().any(|(n, _)| n == crate::plugins::DC_APPLIED_MARKER);
        if already_conditioned {
            // The writer's plug-in ran before the chunk crossed the
            // transport — record that so consumers (the query counters)
            // can distinguish true pushdown from local fallback.
            self.wire_conditioned.insert((w, var.clone()));
        }
        if matches!(value, VarValue::Block(_)) && !already_conditioned {
            if let Some(plugin) = self.installed.get(&var).or_else(|| self.fallback.get(&var)) {
                // The plug-in decodes a packed wire view itself (one bulk
                // conversion); a rejected chunk stays as-is, so read-only
                // consumers keep borrowing the shared receive buffer.
                let monitor = self.link.monitor.clone();
                let applied = monitor.timed(
                    MonitorEvent::PluginExec,
                    step,
                    self.rank,
                    value.payload_bytes(),
                    || plugin.apply(&value),
                );
                if let Ok((v, e)) = applied {
                    value = v;
                    extras.extend(e);
                }
            }
        }
        self.store.entry((w, var)).or_default().push(value);
        for (name, v) in extras {
            self.store.entry((w, name)).or_default().push(v);
        }
        Ok(())
    }

    /// 2PC participant role (enabled by `StreamHints::transactional`).
    fn txn_reader(&mut self, step: u64) -> Result<(), StreamError> {
        let hints = self.hints.clone();
        if self.rank != 0 {
            self.side_up
                .as_mut()
                .expect("non-coordinator has side_up")
                .send(&protocol::message("txn_recv").with("step", FieldValue::U64(step)).encode());
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let decision = recv_record(rx, &hints, &self.link.counters)?;
            if protocol::kind_of(&decision) != msg::TXN_COMMIT {
                return Err(StreamError::Protocol("expected txn_commit".into()));
            }
            return Ok(());
        }
        let link = Arc::clone(&self.link);
        let nranks = self.nranks;
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        for r in 1..nranks {
            let rx = coord.from_ranks[r].get_or_insert_with(|| {
                link.claim_receiver(ChannelId::ReaderSide { rank: r, up: true })
            });
            let m = recv_record(rx, &hints, &link.counters)?;
            if protocol::kind_of(&m) != "txn_recv" {
                return Err(StreamError::Protocol("expected txn_recv".into()));
            }
        }
        let prepare = coord.ctrl_in.recv_expect(&[msg::TXN_PREPARE], &hints)?;
        if prepare.get_u64("step") != Some(step) {
            return Err(StreamError::Protocol("prepare for unexpected step".into()));
        }
        coord.ctrl_tx.send(
            &protocol::message(msg::TXN_VOTE)
                .with("step", FieldValue::U64(step))
                .with("ok", FieldValue::U64(1))
                .encode(),
        );
        let commit = coord.ctrl_in.recv_expect(&[msg::TXN_COMMIT], &hints)?;
        let ok = commit.get_u64("ok") == Some(1);
        for r in 1..nranks {
            let tx = coord.to_ranks[r].get_or_insert_with(|| {
                link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
            });
            tx.send(
                &protocol::message(msg::TXN_COMMIT).with("step", FieldValue::U64(step)).encode(),
            );
        }
        if !ok {
            return Err(StreamError::Protocol("writer aborted the step".into()));
        }
        Ok(())
    }

    /// Fallible version of [`ReadEngine::begin_step`].
    pub fn try_begin_step(&mut self) -> Result<StepStatus, StreamError> {
        if self.hints.runtime == Runtime::Reactor {
            // Reactor backend through the blocking API: the caller's
            // thread becomes a single-task event loop for this step.
            return flexio_reactor::block_on(self.begin_step_rt());
        }
        assert!(self.current_step.is_none(), "begin_step without end_step");
        if self.eos {
            return Ok(StepStatus::EndOfStream);
        }
        let Some(step) = self.coordinate_begin()? else {
            self.eos = true;
            return Ok(StepStatus::EndOfStream);
        };
        self.receive_chunks(step)?;
        if self.hints.transactional {
            self.txn_reader(step)?;
        }
        self.current_step = Some(step);
        self.steps_read += 1;
        Ok(StepStatus::Step(step))
    }

    // ------------------------------------------------ reactor state machine
    //
    // The poll-driven transcription of the engine above: identical
    // protocol steps, counter accounting and failure mapping, but every
    // receive wait is an `.await` that yields to the enclosing
    // `flexio-reactor` event loop — one core can drive many readers.

    /// Poll-driven variant of [`Self::try_begin_step`] for reactor tasks
    /// (the blocking API reaches it through `block_on` when the stream's
    /// `runtime` hint selects the reactor backend).
    pub async fn begin_step_rt(&mut self) -> Result<StepStatus, StreamError> {
        assert!(self.current_step.is_none(), "begin_step without end_step");
        if self.eos {
            return Ok(StepStatus::EndOfStream);
        }
        let Some(step) = self.coordinate_begin_rt().await? else {
            self.eos = true;
            return Ok(StepStatus::EndOfStream);
        };
        self.receive_chunks_rt(step).await?;
        if self.hints.transactional {
            self.txn_reader_rt(step).await?;
        }
        self.current_step = Some(step);
        self.steps_read += 1;
        // Feed the fleet's per-shard steps/s counter (no-op outside a
        // reactor).
        flexio_reactor::note_step();
        Ok(StepStatus::Step(step))
    }

    /// [`Self::coordinate_begin`] as a poll-driven step.
    async fn coordinate_begin_rt(&mut self) -> Result<Option<u64>, StreamError> {
        let first = self.steps_read == 0;
        let need_sub_gather = first || self.hints.caching == CachingLevel::NoCaching;
        let need_exchange = first || self.hints.caching != CachingLevel::CachingAll;
        let counters = Arc::clone(&self.link.counters);
        let hints = self.hints.clone();
        let link = Arc::clone(&self.link);
        let nranks = self.nranks;
        // Elastic membership (see [`Self::coordinate_begin`]).
        let elastic = self.elastic.is_some();
        let participants = if elastic { self.elastic_active } else { nranks };
        let roster_note =
            self.elastic.as_ref().map(|r| (r.generation(), r.active().clamp(1, nranks)));

        if self.rank != 0 {
            if need_sub_gather {
                self.side_up.as_mut().expect("non-coordinator has side_up").send(
                    &protocol::message("subs")
                        .with("sels", FieldValue::Record(encode_subscriptions(&self.subscriptions)))
                        .encode(),
                );
                counters.bump(&counters.gather_msgs);
            }
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let go = recv_record_rt(rx, &hints, &counters).await?;
            match protocol::kind_of(&go) {
                "go" => {
                    let step = go
                        .get_u64("step")
                        .ok_or_else(|| StreamError::Corrupt("go missing step".into()))?;
                    if let Some(plan) = go.get_record("plan") {
                        self.cached_plan_col = decode_plan_col(plan)
                            .ok_or_else(|| StreamError::Corrupt("bad plan col".into()))?;
                    }
                    if let Some(pl) = go.get_record("plugins") {
                        let specs = decode_plugin_specs(pl)
                            .ok_or_else(|| StreamError::Corrupt("bad plugin specs".into()))?;
                        self.install_local(&specs);
                    }
                    if let (Some(g), Some(a)) = (go.get_u64("e_gen"), go.get_u64("e_active")) {
                        self.announced = Some((g, a as usize));
                    }
                    Ok(Some(step))
                }
                k if k == msg::EOS => Ok(None),
                k => Err(StreamError::Protocol(format!("expected go/eos, got {k}"))),
            }
        } else {
            // ---- coordinator ----
            let mut plugin_dirty = self.plugins_dirty;
            self.plugins_dirty = false;
            {
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                if plugin_dirty && !first {
                    let update = protocol::message(msg::PLUGIN_UPDATE).with(
                        "plugins",
                        FieldValue::Record(encode_plugin_specs(&coord.all_plugins)),
                    );
                    coord.ctrl_tx.send(&update.encode());
                    counters.bump(&counters.plugin_msgs);
                }
            }

            // Step header (or EOS) from the writer coordinator; same
            // `eos_on_silence` degradation as the blocking engine.
            let header = {
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                match coord.ctrl_in.recv_expect_rt(&[msg::STEP, msg::EOS], &hints).await {
                    Ok(h) => h,
                    Err(StreamError::Timeout) if hints.eos_on_silence => {
                        counters.bump(&counters.eos_synthesized);
                        protocol::message(msg::EOS)
                    }
                    Err(e) => return Err(e),
                }
            };
            if protocol::kind_of(&header) == msg::EOS {
                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                for r in 1..participants {
                    if elastic && link.is_evicted(r) {
                        continue;
                    }
                    let tx = coord.to_ranks[r].get_or_insert_with(|| {
                        link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
                    });
                    tx.send(&protocol::message(msg::EOS).encode());
                    counters.bump(&counters.step_msgs);
                }
                return Ok(None);
            }
            let step = header
                .get_u64("step")
                .ok_or_else(|| StreamError::Corrupt("step header missing step".into()))?;
            let writer_exchanges = header.get_u64("exchange") == Some(1);
            if writer_exchanges != need_exchange {
                return Err(StreamError::Protocol(format!(
                    "caching configuration mismatch: writer exchange={writer_exchanges}, \
                     reader expects {need_exchange} (configure both sides identically)"
                )));
            }

            let mut plan_dirty = false;
            let mut writer_dists: Option<Vec<Vec<VarMeta>>> = None;
            if need_exchange {
                let info = {
                    let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                    coord.ctrl_in.recv_expect_rt(&[msg::WRITER_INFO], &hints).await?
                };
                let nw = info
                    .get_u64("nranks")
                    .ok_or_else(|| StreamError::Corrupt("writer_info missing nranks".into()))?
                    as usize;
                let mut dists = Vec::with_capacity(nw);
                for w in 0..nw {
                    let dr = info
                        .get_record(&format!("dists.{w}"))
                        .ok_or_else(|| StreamError::Corrupt("writer_info missing dists".into()))?;
                    dists.push(
                        decode_writer_metas(dr)
                            .ok_or_else(|| StreamError::Corrupt("bad metas".into()))?,
                    );
                }
                writer_dists = Some(dists);

                let coord = self.coord.as_mut().expect("rank 0 is coordinator");
                if need_sub_gather {
                    coord.cached_sels[0] = self.subscriptions.clone();
                    for r in 1..nranks {
                        if r >= participants || (elastic && link.is_evicted(r)) {
                            coord.cached_sels[r].clear();
                            continue;
                        }
                        let rx = coord.from_ranks[r].get_or_insert_with(|| {
                            link.claim_receiver(ChannelId::ReaderSide { rank: r, up: true })
                        });
                        match recv_record_rt(rx, &hints, &counters).await {
                            Ok(m) => {
                                coord.cached_sels[r] = m
                                    .get_record("sels")
                                    .and_then(decode_subscriptions)
                                    .ok_or_else(|| StreamError::Corrupt("bad subs".into()))?;
                            }
                            // Same gather-timeout eviction as the
                            // blocking engine (elastic mode only).
                            Err(StreamError::Timeout) if elastic => {
                                if link.evict_reader(r) {
                                    counters.bump(&counters.evictions);
                                }
                                counters.bump(&counters.degraded_steps);
                                coord.cached_sels[r].clear();
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                let mut reply = protocol::message(msg::READER_INFO)
                    .with("nranks", FieldValue::U64(nranks as u64));
                for (r, sels) in coord.cached_sels.iter().enumerate() {
                    reply.set(&format!("sels.{r}"), FieldValue::Record(encode_subscriptions(sels)));
                }
                if first && !coord.all_plugins.is_empty() {
                    reply.set(
                        "plugins",
                        FieldValue::Record(encode_plugin_specs(&coord.all_plugins)),
                    );
                    plugin_dirty = true;
                }
                coord.ctrl_tx.send(&reply.encode());
                counters.bump(&counters.exchange_msgs);
                plan_dirty = true;
            }

            // Compute and distribute the plan.
            let coord = self.coord.as_mut().expect("rank 0 is coordinator");
            // Under elastic membership the plug-in registry rides every
            // `go`: a rank activated mid-run must not miss specs that
            // were only broadcast before it joined.
            let plugin_record = (plugin_dirty || (elastic && !coord.all_plugins.is_empty()))
                .then(|| encode_plugin_specs(&coord.all_plugins));
            let mut my_col = None;
            if plan_dirty {
                let dists = writer_dists.as_ref().expect("exchange delivered dists");
                let full = redistribute::plan(dists, &coord.cached_sels);
                for r in 0..nranks {
                    let col: Vec<Vec<ChunkPlan>> = full.iter().map(|row| row[r].clone()).collect();
                    if r == 0 {
                        my_col = Some(col);
                        continue;
                    }
                    if r >= participants || (elastic && link.is_evicted(r)) {
                        continue;
                    }
                    let tx = coord.to_ranks[r].get_or_insert_with(|| {
                        link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
                    });
                    let mut go = protocol::message("go")
                        .with("step", FieldValue::U64(step))
                        .with("plan", FieldValue::Record(encode_plan_col(&col)));
                    if let Some(pl) = &plugin_record {
                        go.set("plugins", FieldValue::Record(pl.clone()));
                    }
                    if let Some((g, a)) = roster_note {
                        go.set("e_gen", FieldValue::U64(g));
                        go.set("e_active", FieldValue::U64(a as u64));
                    }
                    tx.send(&go.encode());
                    counters.bump(&counters.bcast_msgs);
                }
            } else {
                for r in 1..participants {
                    if elastic && link.is_evicted(r) {
                        continue;
                    }
                    let tx = coord.to_ranks[r].get_or_insert_with(|| {
                        link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
                    });
                    let mut go = protocol::message("go").with("step", FieldValue::U64(step));
                    if let Some(pl) = &plugin_record {
                        go.set("plugins", FieldValue::Record(pl.clone()));
                    }
                    if let Some((g, a)) = roster_note {
                        go.set("e_gen", FieldValue::U64(g));
                        go.set("e_active", FieldValue::U64(a as u64));
                    }
                    tx.send(&go.encode());
                    counters.bump(&counters.step_msgs);
                }
            }
            if let Some(col) = my_col {
                self.cached_plan_col = col;
            }
            if plugin_dirty {
                let specs = self.coord.as_ref().expect("coordinator").all_plugins.clone();
                self.install_local(&specs);
            }
            if let Some((g, a)) = roster_note {
                // Commit the announcement: every participant of this
                // step (including this coordinator) now knows the
                // roster the next step runs on.
                self.announced = Some((g, a));
                self.elastic_active = a;
            }
            Ok(Some(step))
        }
    }

    /// [`Self::receive_chunks`] as a poll-driven step.
    async fn receive_chunks_rt(&mut self, step: u64) -> Result<(), StreamError> {
        let counters = Arc::clone(&self.link.counters);
        let monitor = self.link.monitor.clone();
        let plan_col = self.cached_plan_col.clone();
        for (w, chunks) in plan_col.iter().enumerate() {
            let expected = redistribute::expected_messages(chunks, self.hints.batching);
            if expected == 0 {
                continue;
            }
            let rx = {
                let link = &self.link;
                let rank = self.rank;
                self.data_rx
                    .entry(w)
                    .or_insert_with(|| link.claim_receiver(ChannelId::Data { w, r: rank }))
            };
            let mut records = Vec::with_capacity(expected);
            for _ in 0..expected {
                let record = recv_record_rt(rx, &self.hints, &counters).await?;
                records.push(record);
            }
            for record in records {
                let bytes_estimate = 0u64; // bytes recorded at send side
                monitor.record(MonitorEvent::DataRecv, step, self.rank, bytes_estimate, 0);
                match protocol::kind_of(&record) {
                    k if k == msg::CHUNK => self.store_chunk(&record, step)?,
                    k if k == msg::BATCH => {
                        let n = record
                            .get_u64("n")
                            .ok_or_else(|| StreamError::Corrupt("batch missing n".into()))?;
                        for i in 0..n {
                            let c = record
                                .get_record(&format!("c.{i}"))
                                .ok_or_else(|| StreamError::Corrupt("batch missing chunk".into()))?
                                .clone();
                            self.store_chunk(&c, step)?;
                        }
                    }
                    k => {
                        return Err(StreamError::Protocol(format!("expected chunk/batch, got {k}")))
                    }
                }
            }
            if self.hints.write_mode == WriteMode::Sync {
                let tx = {
                    let link = &self.link;
                    let rank = self.rank;
                    self.ack_tx
                        .entry(w)
                        .or_insert_with(|| link.claim_sender(ChannelId::Ack { w, r: rank }))
                };
                tx.send(&protocol::message(msg::ACK).with("step", FieldValue::U64(step)).encode());
                counters.bump(&counters.ack_msgs);
            }
        }
        Ok(())
    }

    /// [`Self::txn_reader`] as a poll-driven step.
    async fn txn_reader_rt(&mut self, step: u64) -> Result<(), StreamError> {
        let hints = self.hints.clone();
        if self.rank != 0 {
            self.side_up
                .as_mut()
                .expect("non-coordinator has side_up")
                .send(&protocol::message("txn_recv").with("step", FieldValue::U64(step)).encode());
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let decision = recv_record_rt(rx, &hints, &self.link.counters).await?;
            if protocol::kind_of(&decision) != msg::TXN_COMMIT {
                return Err(StreamError::Protocol("expected txn_commit".into()));
            }
            return Ok(());
        }
        let link = Arc::clone(&self.link);
        let nranks = self.nranks;
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        for r in 1..nranks {
            let rx = coord.from_ranks[r].get_or_insert_with(|| {
                link.claim_receiver(ChannelId::ReaderSide { rank: r, up: true })
            });
            let m = recv_record_rt(rx, &hints, &link.counters).await?;
            if protocol::kind_of(&m) != "txn_recv" {
                return Err(StreamError::Protocol("expected txn_recv".into()));
            }
        }
        let prepare = coord.ctrl_in.recv_expect_rt(&[msg::TXN_PREPARE], &hints).await?;
        if prepare.get_u64("step") != Some(step) {
            return Err(StreamError::Protocol("prepare for unexpected step".into()));
        }
        coord.ctrl_tx.send(
            &protocol::message(msg::TXN_VOTE)
                .with("step", FieldValue::U64(step))
                .with("ok", FieldValue::U64(1))
                .encode(),
        );
        let commit = coord.ctrl_in.recv_expect_rt(&[msg::TXN_COMMIT], &hints).await?;
        let ok = commit.get_u64("ok") == Some(1);
        for r in 1..nranks {
            let tx = coord.to_ranks[r].get_or_insert_with(|| {
                link.claim_sender(ChannelId::ReaderSide { rank: r, up: false })
            });
            tx.send(
                &protocol::message(msg::TXN_COMMIT).with("step", FieldValue::U64(step)).encode(),
            );
        }
        if !ok {
            return Err(StreamError::Protocol("writer aborted the step".into()));
        }
        Ok(())
    }
}

impl ReadEngine for StreamReader {
    fn begin_step(&mut self) -> StepStatus {
        self.try_begin_step().expect("stream begin_step failed")
    }

    fn read(&mut self, name: &str, sel: &Selection) -> Option<VarValue> {
        assert!(self.current_step.is_some(), "read outside a step");
        match sel {
            Selection::ProcessGroup(w) => {
                // Cloning a stored packed block only bumps the view's Arc;
                // materializing owned elements for the application is the
                // single payload copy on this path.
                let mut v = self.store.get(&(*w, name.to_string()))?.first().cloned()?;
                v.make_owned();
                Some(v)
            }
            Selection::Scalar => self
                .store
                .iter()
                .filter(|((_, n), _)| n == name)
                .flat_map(|(_, vs)| vs.iter())
                .find(|v| matches!(v, VarValue::Scalar(_)))
                .cloned(),
            Selection::GlobalBox(want) => {
                // Assemble from all received region chunks of this var.
                let mut assembler: Option<BoxAssembler> = None;
                for ((_, n), values) in self.store.iter() {
                    if n != name {
                        continue;
                    }
                    for v in values {
                        let VarValue::Block(b) = v else { continue };
                        let have = BoxSel::new(b.offset.clone(), b.count.clone());
                        if have.intersect(want).is_none() {
                            continue;
                        }
                        let asm = assembler.get_or_insert_with(|| BoxAssembler::new(want, b));
                        // Merge the overlap straight from the stored block
                        // (a zero-copy wire view for large chunks) into the
                        // target — no clipped intermediate block.
                        let overlap = have.intersect(want).expect("checked above");
                        asm.add_region(b, &overlap);
                    }
                }
                assembler.map(|a| VarValue::Block(a.finish()))
            }
        }
    }

    fn end_step(&mut self) {
        assert!(self.current_step.take().is_some(), "end_step without begin_step");
        self.store.clear();
        self.wire_conditioned.clear();
    }

    fn close(&mut self) {
        self.eos = true;
    }
}

// --------------------------------------------------------- plan encoding

fn encode_plan_col(col: &[Vec<ChunkPlan>]) -> Record {
    let mut r = Record::new().with("writers", FieldValue::U64(col.len() as u64));
    for (w, chunks) in col.iter().enumerate() {
        r.set(&format!("count.{w}"), FieldValue::U64(chunks.len() as u64));
        for (ci, c) in chunks.iter().enumerate() {
            let mut cr = Record::new().with("var", FieldValue::Str(c.var.clone()));
            if let Some(region) = &c.region {
                cr.set("offset", FieldValue::U64Array(region.offset.clone()));
                cr.set("count", FieldValue::U64Array(region.count.clone()));
            }
            r.set(&format!("chunk.{w}.{ci}"), FieldValue::Record(cr));
        }
    }
    r
}

fn decode_plan_col(r: &Record) -> Option<Vec<Vec<ChunkPlan>>> {
    let writers = r.get_u64("writers")? as usize;
    let mut col = Vec::with_capacity(writers);
    for w in 0..writers {
        let count = r.get_u64(&format!("count.{w}"))? as usize;
        let mut chunks = Vec::with_capacity(count);
        for ci in 0..count {
            let cr = r.get_record(&format!("chunk.{w}.{ci}"))?;
            let var = cr.get_str("var")?.to_string();
            let region = match (cr.get_u64_array("offset"), cr.get_u64_array("count")) {
                (Some(o), Some(c)) => Some(BoxSel::new(o.to_vec(), c.to_vec())),
                _ => None,
            };
            chunks.push(ChunkPlan { var, region });
        }
        col.push(chunks);
    }
    Some(col)
}

fn decode_writer_metas(r: &Record) -> Option<Vec<VarMeta>> {
    let n = r.get_u64("n")? as usize;
    (0..n).map(|i| VarMeta::from_record(r.get_record(&format!("m.{i}"))?)).collect()
}
