//! The directory service (paper §II.C.1).
//!
//! "Before actual data movement, simulation and analytics programs connect
//! to each other via assistance from an external directory server. To
//! avoid overloading this server, simulation and analytics processes,
//! respectively, elect a local coordinator. When creating a file in stream
//! mode, the coordinator of the simulation registers with the directory
//! server a file name associated with its own contact information. When
//! the analytics opens that file, its coordinator looks up the server with
//! the file name, retrieves the contact information of the simulation's
//! coordinator, and makes a connection with it. The directory server is
//! involved only in discovery and connection setup and is not in the
//! critical path of actual data movements."
//!
//! The paper runs this as one external server. Reproduced literally that
//! is a scaling wall — every coordinator in the machine funnels through a
//! single mutex — so the component is a **service behind a trait**
//! ([`DirectoryService`]) with three backends:
//!
//! * [`InProcDirectory`] — the original single mutex+condvar map; the
//!   default, and still right for single-program tests.
//! * [`ShardedDirectory`] — the registry split into N lock-striped
//!   shards keyed by stream-name hash; per-shard mutex+condvar and
//!   [`crate::protocol::DirectoryCounters`] so registration/lookup
//!   traffic (and lock contention) is observable per stripe.
//! * [`ReplicatedDirectory`] — several directory nodes, each a sharded
//!   store, replicating registrations via anti-entropy gossip rounds;
//!   versioned entries with tombstoned unregisters, lookups served by
//!   any node, failover when a node dies.
//!
//! In this in-process reproduction the "contact information" is an
//! `Arc`-shared link-state handle; only the **coordinators** touch the
//! directory, and only at open time — the avoid-overload property is
//! enforced structurally and verified by the registration counters.

mod gossip;
mod service;
mod shard;

pub use gossip::{
    decode_contact_table, encode_contact_table, DirectoryNode, GossipCounters, WireContact,
};
pub(crate) use gossip::{decode_digest, encode_digest, ContactTable};
pub use service::{DirectoryCluster, ReplicatedDirectory};
pub use shard::ShardedDirectory;
pub(crate) use shard::VersionedEntry;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adios::GroupConfig;
use parking_lot::{Condvar, Mutex};

use crate::link::LinkState;

/// Directory failure.
///
/// `#[non_exhaustive]`: the replicated backend grows failure modes a
/// single in-process map cannot have (and future backends will add more),
/// so callers must leave room for variants they don't know yet.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DirectoryError {
    /// No writer registered the name before the timeout.
    LookupTimeout(String),
    /// A writer already registered this name.
    AlreadyRegistered(String),
    /// The directory service cannot currently serve requests (every
    /// replica of a replicated backend is dead, or the backend is
    /// shutting down).
    Unavailable(String),
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::LookupTimeout(n) => write!(f, "no stream named `{n}` appeared in time"),
            DirectoryError::AlreadyRegistered(n) => write!(f, "stream `{n}` already registered"),
            DirectoryError::Unavailable(why) => write!(f, "directory unavailable: {why}"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// Connection-management service: stream name → contact registration and
/// discovery (paper §II.C.1). Object-safe so [`crate::FlexIo`], the
/// monitoring relay and the placement manager can hold any backend as
/// `Arc<dyn DirectoryService>`.
///
/// Consistency contract: [`register`](Self::register) followed by
/// [`lookup`](Self::lookup) *through the same handle* always observes the
/// registration. Replicated backends are eventually consistent across
/// handles bound to different nodes — a lookup elsewhere blocks (within
/// its timeout) until gossip delivers the entry.
pub trait DirectoryService: Send + Sync {
    /// Writer-coordinator registration of `name` → contact.
    fn register(&self, name: &str, contact: Arc<LinkState>) -> Result<(), DirectoryError>;

    /// Reader-coordinator lookup, blocking until the writer registers or
    /// `timeout` expires.
    fn lookup(&self, name: &str, timeout: Duration) -> Result<Arc<LinkState>, DirectoryError>;

    /// Non-blocking lookup (the reactor's poll-driven analogue of
    /// [`lookup`](Self::lookup)): `None` means "not registered yet", not
    /// failure. Bumps the lookup counter only on a hit, so the "directory
    /// is not in the critical path" accounting is identical to the
    /// blocking path.
    fn try_lookup(&self, name: &str) -> Option<Arc<LinkState>>;

    /// Remove a stream entry (writer close); returns whether it existed.
    fn unregister(&self, name: &str) -> bool;

    /// How many registrations the service handled — one per stream, never
    /// per rank or per step (the "not in the critical path" property).
    fn registration_count(&self) -> u64;

    /// How many successful lookups the service handled.
    fn lookup_count(&self) -> u64;
}

#[derive(Default)]
struct State {
    entries: HashMap<String, Arc<LinkState>>,
}

/// The original directory server: one mutex-guarded map behind one
/// condvar, shared by cloning. The default backend of [`crate::FlexIo`]
/// and the baseline the sharded/replicated backends are measured against.
#[derive(Clone, Default)]
pub struct InProcDirectory {
    state: Arc<(Mutex<State>, Condvar)>,
    registrations: Arc<AtomicU64>,
    lookups: Arc<AtomicU64>,
}

impl InProcDirectory {
    /// Fresh empty directory.
    pub fn new() -> InProcDirectory {
        InProcDirectory::default()
    }
}

impl DirectoryService for InProcDirectory {
    fn register(&self, name: &str, contact: Arc<LinkState>) -> Result<(), DirectoryError> {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        if st.entries.contains_key(name) {
            return Err(DirectoryError::AlreadyRegistered(name.to_string()));
        }
        st.entries.insert(name.to_string(), contact);
        self.registrations.fetch_add(1, Ordering::Relaxed);
        cvar.notify_all();
        Ok(())
    }

    fn lookup(&self, name: &str, timeout: Duration) -> Result<Arc<LinkState>, DirectoryError> {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(contact) = st.entries.get(name) {
                self.lookups.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(contact));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(DirectoryError::LookupTimeout(name.to_string()));
            }
            cvar.wait_for(&mut st, deadline - now);
        }
    }

    fn try_lookup(&self, name: &str) -> Option<Arc<LinkState>> {
        let contact = Arc::clone(self.state.0.lock().entries.get(name)?);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        Some(contact)
    }

    fn unregister(&self, name: &str) -> bool {
        self.state.0.lock().entries.remove(name).is_some()
    }

    fn registration_count(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }
}

/// Stable FNV-1a hash used to key stream names onto shards. The same
/// function the fault layer uses for label → seed derivation, so shard
/// assignment is deterministic across runs and nodes.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Directory deployment knobs, parsed from the `directory.*` XML hint
/// family (same `<hint>` elements as the transport knobs, §II.B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Lock stripes per node's registry. 1 reproduces the single-map
    /// behaviour exactly.
    pub shards: usize,
    /// Directory nodes. 1 runs a local (non-replicated) service; more
    /// build a gossip-replicated cluster.
    pub nodes: usize,
    /// Anti-entropy gossip round interval for the replicated backend.
    pub gossip_interval: Duration,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig { shards: 8, nodes: 1, gossip_interval: Duration::from_millis(2) }
    }
}

impl DirectoryConfig {
    /// Parse `directory.shards`, `directory.nodes` and
    /// `directory.gossip_ms` hints; absent hints keep the defaults.
    pub fn from_config(cfg: &GroupConfig) -> DirectoryConfig {
        let mut c = DirectoryConfig::default();
        if let Some(s) = cfg.hint_u64(crate::link::HintKey::DirectoryShards.as_str()) {
            c.shards = (s as usize).max(1);
        }
        if let Some(n) = cfg.hint_u64(crate::link::HintKey::DirectoryNodes.as_str()) {
            c.nodes = (n as usize).max(1);
        }
        if let Some(ms) = cfg.hint_u64(crate::link::HintKey::DirectoryGossipMs.as_str()) {
            c.gossip_interval = Duration::from_millis(ms.max(1));
        }
        c
    }

    /// Build the configured backend. Single-node configs return a
    /// [`ShardedDirectory`]; multi-node configs build a
    /// [`DirectoryCluster`], spawn its gossip driver thread and return a
    /// handle bound to node 0 (the driver stops when the last handle
    /// drops).
    pub fn build(&self) -> Arc<dyn DirectoryService> {
        if self.nodes <= 1 {
            Arc::new(ShardedDirectory::new(self.shards))
        } else {
            let cluster =
                DirectoryCluster::new(self.nodes, self.shards, self.gossip_interval, None);
            Arc::new(cluster.spawn_driver())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn dummy_link() -> Arc<LinkState> {
        crate::link::LinkState::for_tests()
    }

    #[test]
    fn register_then_lookup() {
        let d = InProcDirectory::new();
        let link = dummy_link();
        d.register("run42/particles", Arc::clone(&link)).unwrap();
        let found = d.lookup("run42/particles", Duration::from_millis(10)).unwrap();
        assert!(Arc::ptr_eq(&link, &found));
    }

    #[test]
    fn lookup_blocks_until_registration() {
        let d = InProcDirectory::new();
        let d2 = d.clone();
        let t = thread::spawn(move || d2.lookup("late", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        d.register("late", dummy_link()).unwrap();
        assert!(t.join().unwrap().is_ok());
    }

    #[test]
    fn lookup_times_out() {
        let d = InProcDirectory::new();
        let err = d.lookup("never", Duration::from_millis(30)).err();
        assert_eq!(err, Some(DirectoryError::LookupTimeout("never".into())));
    }

    #[test]
    fn double_registration_rejected() {
        let d = InProcDirectory::new();
        d.register("s", dummy_link()).unwrap();
        assert_eq!(
            d.register("s", dummy_link()),
            Err(DirectoryError::AlreadyRegistered("s".into()))
        );
        assert!(d.unregister("s"));
        d.register("s", dummy_link()).unwrap();
    }

    #[test]
    fn counters_reflect_traffic() {
        let d = InProcDirectory::new();
        d.register("a", dummy_link()).unwrap();
        d.register("b", dummy_link()).unwrap();
        d.lookup("a", Duration::from_millis(5)).unwrap();
        d.lookup("a", Duration::from_millis(5)).unwrap();
        assert_eq!(d.registration_count(), 2);
        assert_eq!(d.lookup_count(), 2);
    }

    #[test]
    fn config_defaults_and_parsing() {
        let cfg = adios::IoConfig::from_xml(
            r#"<adios-config><group name="g"><method transport="STREAM">
               <hint name="directory.shards" value="4"/>
               <hint name="directory.nodes" value="3"/>
               <hint name="directory.gossip_ms" value="7"/>
            </method></group></adios-config>"#,
        )
        .unwrap();
        let c = DirectoryConfig::from_config(cfg.group("g").unwrap());
        assert_eq!(c.shards, 4);
        assert_eq!(c.nodes, 3);
        assert_eq!(c.gossip_interval, Duration::from_millis(7));
        let empty = adios::IoConfig::from_xml(
            r#"<adios-config><group name="g"><method transport="STREAM">
            </method></group></adios-config>"#,
        )
        .unwrap();
        assert_eq!(
            DirectoryConfig::from_config(empty.group("g").unwrap()),
            DirectoryConfig::default()
        );
    }

    #[test]
    fn config_builds_working_backends() {
        for nodes in [1usize, 3] {
            let dir =
                DirectoryConfig { nodes, shards: 2, gossip_interval: Duration::from_millis(1) }
                    .build();
            let link = dummy_link();
            dir.register("cfg", Arc::clone(&link)).unwrap();
            let found = dir.lookup("cfg", Duration::from_secs(1)).unwrap();
            assert!(Arc::ptr_eq(&link, &found), "nodes={nodes}");
        }
    }
}
