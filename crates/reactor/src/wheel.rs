//! Hashed timer wheel.
//!
//! The blocking backend expresses every deadline as a thread parked in
//! `recv_timeout(budget × 2^attempt)` — one OS thread per pending
//! deadline. The reactor inverts this: deadlines are *data*. Each
//! pending timeout hashes into one of `nslots` buckets by its absolute
//! tick (`slot = tick % nslots`), insertion and cancellation are O(1),
//! and advancing the wheel touches only the buckets the clock swept
//! past — the classic "hashed timing wheel" scheme (Varghese & Lauck).
//!
//! The wheel does not *deliver* wakeups (the runtime has no wakers —
//! transports are poll-only); it answers two questions for the
//! executor's idle loop: *did any deadline fire since last round?* and
//! *how long may the core sleep before the next one?*

use std::time::{Duration, Instant};

/// Handle to a pending wheel entry, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry {
    id: TimerId,
    /// Absolute tick index at which the entry fires.
    tick: u64,
}

/// A hashed timer wheel. See the module docs.
#[derive(Debug)]
pub struct TimerWheel {
    origin: Instant,
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// Deadlines corresponding to live entries, keyed by id — kept
    /// outside the slots so `next_deadline` needs no tick→Instant math.
    len: usize,
    /// Last tick index processed by `advance`.
    cursor: u64,
    next_id: u64,
}

/// Default tick granularity: fine enough that poll pacing (~50 µs) and
/// retry budgets (≥ milliseconds) both land on distinct ticks.
pub(crate) const DEFAULT_TICK: Duration = Duration::from_micros(50);
/// Default slot count; deadlines further than `nslots × tick` in the
/// future simply survive extra wheel revolutions.
pub(crate) const DEFAULT_SLOTS: usize = 256;

impl TimerWheel {
    /// A wheel with `nslots` buckets of `tick` granularity.
    pub fn new(tick: Duration, nslots: usize) -> Self {
        assert!(!tick.is_zero(), "timer wheel tick must be non-zero");
        assert!(nslots > 0, "timer wheel needs at least one slot");
        TimerWheel {
            origin: Instant::now(),
            tick,
            slots: (0..nslots).map(|_| Vec::new()).collect(),
            len: 0,
            cursor: 0,
            next_id: 0,
        }
    }

    /// Absolute tick index covering `at` (rounded up: an entry never
    /// fires before its deadline).
    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin).as_nanos();
        let tick = self.tick.as_nanos();
        elapsed.div_ceil(tick).min(u64::MAX as u128) as u64
    }

    /// Register a deadline; returns a handle usable with [`cancel`](Self::cancel).
    pub fn insert(&mut self, deadline: Instant) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        // Entries in the current tick would be skipped by the cursor
        // walk; clamp into the next tick so they fire on the upcoming
        // `advance` instead of never.
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { id, tick });
        self.len += 1;
        id
    }

    /// Remove a pending entry. Returns false if it already fired.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        for slot in &mut self.slots {
            if let Some(pos) = slot.iter().position(|e| e.id == id) {
                slot.swap_remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Sweep the wheel forward to `now`, removing expired entries.
    /// Returns how many fired.
    pub fn advance(&mut self, now: Instant) -> usize {
        let cur = self.tick_of(now);
        if cur <= self.cursor || self.len == 0 {
            self.cursor = self.cursor.max(cur);
            return 0;
        }
        let nslots = self.slots.len() as u64;
        let mut fired = 0;
        // Visit each bucket the clock swept past — at most one full
        // revolution, since a second pass over a bucket finds nothing new.
        let span = (cur - self.cursor).min(nslots);
        for t in (self.cursor + 1)..=(self.cursor + span) {
            let slot = &mut self.slots[(t % nslots) as usize];
            let before = slot.len();
            slot.retain(|e| e.tick > cur);
            fired += before - slot.len();
        }
        self.len -= fired;
        self.cursor = cur;
        fired
    }

    /// The earliest pending deadline, if any — the longest the executor
    /// may park. O(len) scan; wheels here hold at most a few entries
    /// per in-flight stream.
    pub fn next_deadline(&self) -> Option<Instant> {
        let tick = self.slots.iter().flat_map(|s| s.iter().map(|e| e.tick)).min()?;
        let nanos = (self.tick.as_nanos().min(u64::MAX as u128) as u64).saturating_mul(tick);
        Some(self.origin + Duration::from_nanos(nanos))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no deadlines are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new(DEFAULT_TICK, DEFAULT_SLOTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_across_revolutions() {
        let mut w = TimerWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        // 20 ticks out: > one revolution of the 8-slot wheel.
        let far = w.insert(now + Duration::from_millis(20));
        let near = w.insert(now + Duration::from_millis(2));
        assert_eq!(w.len(), 2);

        // Sweeping to t+5ms fires only the near entry, even though the
        // far entry hashes into a bucket the sweep visits.
        assert_eq!(w.advance(now + Duration::from_millis(5)), 1);
        assert_eq!(w.len(), 1);
        assert!(!w.cancel(near), "near entry already fired");
        assert!(w.next_deadline().is_some());

        assert_eq!(w.advance(now + Duration::from_millis(25)), 1);
        assert!(w.is_empty());
        assert!(!w.cancel(far));
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::default();
        let now = Instant::now();
        let id = w.insert(now + Duration::from_micros(100));
        assert!(w.cancel(id));
        assert_eq!(w.advance(now + Duration::from_secs(1)), 0);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut w = TimerWheel::default();
        let now = Instant::now();
        w.advance(now);
        // A deadline already in the past must still fire (clamped into
        // the next tick), not be lost behind the cursor.
        w.insert(now - Duration::from_secs(1));
        assert_eq!(w.advance(now + Duration::from_millis(1)), 1);
    }
}
