//! Inter-node network parameters (consumed by `netsim`).

/// Cost model for RDMA memory registration, the effect the paper measures in
/// Fig. 4: dynamically allocating and registering buffers per transfer
/// roughly halves achievable Get bandwidth on Gemini until very large
/// messages amortize the cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistrationParams {
    /// Fixed cost of one register/unregister pair, nanoseconds
    /// (syscall + NIC doorbell).
    pub base_ns: f64,
    /// Additional cost per registered page, nanoseconds (page-table walk
    /// and pinning).
    pub per_page_ns: f64,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Cost of a heap allocation for the buffer itself, nanoseconds.
    pub alloc_ns: f64,
}

impl RegistrationParams {
    /// Total one-time cost to allocate + register a buffer of `len` bytes.
    pub fn dynamic_cost_ns(&self, len: u64) -> f64 {
        let pages = len.div_ceil(self.page_bytes).max(1);
        self.alloc_ns + self.base_ns + pages as f64 * self.per_page_ns
    }
}

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectParams {
    /// Peak point-to-point unidirectional bandwidth, bytes/sec.
    pub link_bw: f64,
    /// Small-message one-way latency, nanoseconds.
    pub latency_ns: f64,
    /// Per-message NIC processing overhead, nanoseconds (descriptor
    /// handling; dominates small-message rate).
    pub per_message_ns: f64,
    /// Cut-off below which messages go through the mailbox path
    /// (RDMA Put / FMA Put, paper §II.E) instead of rendezvous Get.
    pub eager_threshold: u64,
    /// Memory-registration cost model.
    pub registration: RegistrationParams,
    /// Fraction of `link_bw` lost per additional concurrent flow sharing a
    /// NIC, capturing the contention that forces the paper's Get
    /// scheduling policy (§II.E).
    pub contention_factor: f64,
}

impl InterconnectParams {
    /// Ideal (uncongested, pre-registered) time to move `len` bytes,
    /// nanoseconds.
    pub fn transfer_ns(&self, len: u64) -> f64 {
        self.latency_ns + self.per_message_ns + len as f64 / self.link_bw * 1e9
    }

    /// Effective bandwidth for a message of `len` bytes when registration
    /// is performed dynamically for both source and sink buffers
    /// (Fig. 4's "Dynamic Allocation and Registration" curve).
    pub fn dynamic_reg_bandwidth(&self, len: u64) -> f64 {
        let reg = 2.0 * self.registration.dynamic_cost_ns(len);
        len as f64 / (self.transfer_ns(len) + reg) * 1e9
    }

    /// Effective bandwidth with statically registered (cached) buffers
    /// (Fig. 4's "Static Allocation and Registration" curve).
    pub fn static_reg_bandwidth(&self, len: u64) -> f64 {
        len as f64 / self.transfer_ns(len) * 1e9
    }

    /// Cray Gemini (Titan), calibrated so the static curve plateaus near
    /// the ~5 GB/s the paper's Fig. 4 shows, with dynamic registration
    /// costing roughly half the bandwidth at mid sizes.
    pub fn gemini() -> Self {
        InterconnectParams {
            link_bw: 5.2e9,
            latency_ns: 1_500.0,
            per_message_ns: 250.0,
            eager_threshold: 4096,
            registration: RegistrationParams {
                base_ns: 20_000.0,
                per_page_ns: 120.0,
                page_bytes: 4096,
                alloc_ns: 3_000.0,
            },
            contention_factor: 0.35,
        }
    }

    /// DDR InfiniBand (Smoky): ~1.5 GB/s effective point-to-point.
    pub fn ddr_infiniband() -> Self {
        InterconnectParams {
            link_bw: 1.5e9,
            latency_ns: 2_000.0,
            per_message_ns: 400.0,
            eager_threshold: 8192,
            registration: RegistrationParams {
                base_ns: 35_000.0,
                per_page_ns: 180.0,
                page_bytes: 4096,
                alloc_ns: 3_000.0,
            },
            contention_factor: 0.40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_beats_dynamic_everywhere() {
        let ic = InterconnectParams::gemini();
        for shift in 10..25 {
            let len = 1u64 << shift;
            assert!(ic.static_reg_bandwidth(len) > ic.dynamic_reg_bandwidth(len));
        }
    }

    #[test]
    fn dynamic_gap_narrows_at_large_sizes() {
        // Registration is amortized for huge messages: the ratio
        // static/dynamic should shrink toward 1 as size grows.
        let ic = InterconnectParams::gemini();
        let ratio = |len: u64| ic.static_reg_bandwidth(len) / ic.dynamic_reg_bandwidth(len);
        assert!(ratio(64 * 1024) > ratio(16 * 1024 * 1024));
        assert!(ratio(16 * 1024 * 1024) < 1.5);
        // ...but at small/mid sizes dynamic registration costs at least ~30%.
        assert!(ratio(64 * 1024) > 1.3);
    }

    #[test]
    fn static_plateau_near_link_bw() {
        let ic = InterconnectParams::gemini();
        let bw = ic.static_reg_bandwidth(64 * 1024 * 1024);
        assert!(bw > 0.95 * ic.link_bw, "bw={bw}");
    }

    #[test]
    fn registration_cost_scales_with_pages() {
        let reg = InterconnectParams::gemini().registration;
        let one_page = reg.dynamic_cost_ns(100);
        let many_pages = reg.dynamic_cost_ns(1 << 20);
        assert!(many_pages > one_page);
        assert_eq!(reg.dynamic_cost_ns(4096), reg.alloc_ns + reg.base_ns + reg.per_page_ns);
    }
}
