//! # flexio-reactor — one core drives many streams
//!
//! FlexIO's helper-core placement (paper §V) only pays off if the
//! middleware itself stays off the compute cores. The blocking backend
//! spends an OS thread per coupled stream: each thread parks in
//! `recv_retry` waiting for its own channel. This crate is the
//! alternative — a deliberately small, dependency-free, single-threaded
//! event-loop runtime:
//!
//! * [`Reactor`] — a cooperative executor. Tasks are plain `Future`s
//!   (the compiler turns the writer/reader engine protocol into the
//!   per-stream state machine for us); one `run()` loop polls every
//!   runnable task, then parks the core until the next timer deadline.
//! * [`TimerWheel`] — a hashed timer wheel. Retry budgets
//!   (`recv_timeout × 2^attempt`), fault stalls, and poll pacing all
//!   become wheel entries instead of per-thread `sleep` calls, so one
//!   core can hold thousands of pending deadlines.
//! * [`Backoff`] — the spin → yield → park escalation used both by the
//!   reactor's idle loop and by the blocking backend's receive loops
//!   (replacing the fixed 100 µs sleeps that used to burn a core).
//!
//! There are no wakers wired to I/O sources: the transports (shm SPSC
//! queues, in-proc channels, simulated RDMA) are poll-only, so readiness
//! is discovered by polling and the wheel only bounds *how long* the
//! core sleeps between discovery rounds. Futures that make progress call
//! [`note_progress`] so the executor knows to keep spinning hot.
//!
//! When one core stops being enough, [`ReactorFleet`] runs N of these
//! loops on worker threads — each owning a shard of tasks, with a
//! cross-shard submission queue, per-shard progress counters
//! ([`note_step`] feeds the steps/s signal), and a periodic rebalancer
//! that migrates work from hot shards to cold ones (see the
//! [`fleet`] and [`rebalance`] module docs).

#![forbid(unsafe_code)]

mod backoff;
mod exec;
pub mod fleet;
pub mod rebalance;
mod wheel;

pub use backoff::Backoff;
pub use exec::{
    block_on, in_reactor, note_progress, note_step, sleep, sleep_until, yield_now, Pacing, Reactor,
};
pub use fleet::{FleetBuilder, FleetHandle, FleetTopology, ReactorFleet, ShardSlot, ShardSnapshot};
pub use rebalance::{Migration, RebalancePolicy, ShardLoad};
pub use wheel::{TimerId, TimerWheel};
