//! Shared JSON result writer for the `benches/*.rs` harnesses.
//!
//! Every bench emits the same shape — `{"bench": "<name>", <summary
//! fields...>, "results": [<row>, ...]}` — printed to stdout as one
//! machine-parsable line and written to `BENCH_<name>.json` at the repo
//! root (where `scripts/bench_diff.sh` compares it against the committed
//! baseline). This module owns the formatting so each harness only
//! declares its fields; no serde, no dependencies.

use std::fmt::Write as _;

/// One JSON value. Floats carry their precision so results stay stable
/// and diffable across runs.
#[derive(Debug, Clone)]
pub enum Value {
    U64(u64),
    F64 {
        v: f64,
        precision: usize,
    },
    Bool(bool),
    Str(String),
    /// Pre-rendered JSON (nested objects a bench builds itself).
    Raw(String),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64 { v, precision } => {
                let _ = write!(out, "{v:.precision$}");
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Raw(json) => out.push_str(json),
        }
    }
}

/// An ordered JSON object under construction (a result row, or a nested
/// summary value via [`Value::Raw`]).
#[derive(Debug, Clone, Default)]
pub struct Obj {
    fields: Vec<(String, Value)>,
}

impl Obj {
    pub fn new() -> Obj {
        Obj::default()
    }

    pub fn field(mut self, key: &str, value: Value) -> Obj {
        self.fields.push((key.to_string(), value));
        self
    }

    pub fn u64(self, key: &str, v: u64) -> Obj {
        self.field(key, Value::U64(v))
    }

    pub fn f64(self, key: &str, v: f64, precision: usize) -> Obj {
        self.field(key, Value::F64 { v, precision })
    }

    pub fn str(self, key: &str, v: &str) -> Obj {
        self.field(key, Value::Str(v.to_string()))
    }

    pub fn bool(self, key: &str, v: bool) -> Obj {
        self.field(key, Value::Bool(v))
    }

    /// Render as `{"k": v, ...}`.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\": ");
            v.render(&mut out);
        }
        out.push('}');
        out
    }
}

/// A bench report: summary fields plus result rows, serialized in
/// declaration order with `"bench"` first and `"results"` last.
#[derive(Debug, Clone)]
pub struct Report {
    bench: String,
    summary: Obj,
    results: Vec<Obj>,
}

impl Report {
    pub fn new(bench: &str) -> Report {
        Report { bench: bench.to_string(), summary: Obj::new(), results: Vec::new() }
    }

    /// Add a top-level summary field (builder-style).
    pub fn field(mut self, key: &str, value: Value) -> Report {
        self.summary = self.summary.field(key, value);
        self
    }

    pub fn u64(self, key: &str, v: u64) -> Report {
        self.field(key, Value::U64(v))
    }

    pub fn f64(self, key: &str, v: f64, precision: usize) -> Report {
        self.field(key, Value::F64 { v, precision })
    }

    pub fn str(self, key: &str, v: &str) -> Report {
        self.field(key, Value::Str(v.to_string()))
    }

    /// Add a nested-object summary field.
    pub fn obj(self, key: &str, v: Obj) -> Report {
        self.field(key, Value::Raw(v.render()))
    }

    /// Append one result row.
    pub fn push(&mut self, row: Obj) {
        self.results.push(row);
    }

    /// The single-line JSON document.
    pub fn json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"bench\": \"{}\"", self.bench);
        for (k, v) in &self.summary.fields {
            let _ = write!(out, ", \"{k}\": ");
            v.render(&mut out);
        }
        out.push_str(", \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.render());
        }
        out.push_str("]}");
        out
    }

    /// Print the JSON to stdout (one machine-parsable line) and write it
    /// to `BENCH_<bench>.json` at the repo root; returns the path.
    pub fn write(&self) -> String {
        let json = self.json();
        println!("{json}");
        let out = format!("{}/../../BENCH_{}.json", env!("CARGO_MANIFEST_DIR"), self.bench);
        std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
        eprintln!("{}: wrote {out}", self.bench);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_summary_then_results() {
        let mut rep = Report::new("demo")
            .u64("payload_bytes", 1024)
            .f64("speedup", 2.5, 2)
            .obj("peaks", Obj::new().f64("shm", 10.1234, 4));
        rep.push(Obj::new().u64("streams", 8).str("backend", "reactor").f64("rate", 1.5, 3));
        assert_eq!(
            rep.json(),
            "{\"bench\": \"demo\", \"payload_bytes\": 1024, \"speedup\": 2.50, \
             \"peaks\": {\"shm\": 10.1234}, \
             \"results\": [{\"streams\": 8, \"backend\": \"reactor\", \"rate\": 1.500}]}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        Value::Str("a\"b\\c".to_string()).render(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn empty_results_still_valid_json() {
        let rep = Report::new("empty");
        assert_eq!(rep.json(), "{\"bench\": \"empty\", \"results\": []}");
    }
}
