//! The readiness contract at the protocol boundary: what `recv_record`
//! does — and which `ProtocolCounters` move — when the shared-memory
//! channel underneath reports each of `poll_recv`'s edge outcomes. The
//! corrupt frames are injected straight into the raw SPSC queue
//! (`ShmSender::inject_raw_frame`), beneath an *active* fault plan, so the
//! whole production receive stack (fault layer → evpath shm transport →
//! `recv_record`) is exercised, not a mock.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evpath::socket::{raw_socket_pair, receiver_over, SocketKind, SocketSender};
use evpath::{EvReceiver, EvSender, FaultPlan, FaultSpec, FieldValue, Record, ShmTransport};
use flexio::link::{recv_record, ChannelId, LinkState, StreamError};
use flexio::{MonitorSink, ProtocolCounters, StreamHints};
use shm::channel::shm_channel;

fn fast_hints() -> StreamHints {
    StreamHints { recv_timeout: Duration::from_millis(5), retries: 1, ..StreamHints::default() }
}

/// Wrap the receiving half in an active (non-noop) fault plan, as every
/// production channel under test is wrapped.
fn plan_wrapped(rx: Box<dyn EvReceiver>) -> (Arc<FaultPlan>, Box<dyn EvReceiver>) {
    let mut plan = FaultPlan::new(0xC0FFEE);
    // A crash threshold far beyond the test's traffic keeps the wrapper
    // installed (and counting) without ever firing.
    plan.set("data", FaultSpec { crash_receiver_after: Some(1 << 32), ..Default::default() });
    let plan = Arc::new(plan);
    let wrapped = plan.wrap_receiver("data", rx);
    (plan, wrapped)
}

fn record_bytes(tag: u64) -> Vec<u8> {
    Record::new().with("tag", FieldValue::U64(tag)).encode()
}

#[test]
fn corrupt_frames_surface_once_each_and_the_stream_recovers() {
    let (mut tx, rx) = shm_channel(16, 64);
    tx.send_copy(&record_bytes(1));
    tx.inject_raw_frame(&[9, 1, 2, 3]); // unknown kind byte
    tx.inject_raw_frame(&[]); // empty frame
    tx.send_copy(&record_bytes(2));
    let (_btx, brx) = ShmTransport::from_halves(tx, rx);
    let (_plan, mut rx) = plan_wrapped(brx);

    let hints = fast_hints();
    let counters = ProtocolCounters::new_shared();

    let first = recv_record(&mut rx, &hints, &counters).expect("valid frame before garbage");
    assert_eq!(first.get_u64("tag"), Some(1));
    assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), 0);

    // Each corrupt frame is one definite, consumed event: an error and
    // exactly one counter bump — not a retry loop burning the budget.
    for expected in 1..=2u64 {
        let err = recv_record(&mut rx, &hints, &counters).expect_err("corrupt frame");
        assert!(matches!(err, StreamError::Corrupt(_)), "got {err:?}");
        assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), expected);
    }
    assert_eq!(counters.retries.load(Ordering::Relaxed), 0, "no retry burned on corruption");

    // The channel is still usable past the damage.
    let last = recv_record(&mut rx, &hints, &counters).expect("valid frame after garbage");
    assert_eq!(last.get_u64("tag"), Some(2));
}

#[test]
fn peer_close_fails_fast_without_burning_the_retry_budget() {
    let (tx, rx) = shm_channel(16, 64);
    let (btx, brx) = ShmTransport::from_halves(tx, rx);
    let (_plan, mut rx) = plan_wrapped(brx);

    // Generous budget: with the old blind-retry scheme this would stall
    // 10s × (1 + 2 + 4) before giving up on a dead peer.
    let hints =
        StreamHints { recv_timeout: Duration::from_secs(10), retries: 2, ..StreamHints::default() };
    let counters = ProtocolCounters::new_shared();
    drop(btx); // producer dies; closed flag is ordered after its last push

    let start = Instant::now();
    let err = recv_record(&mut rx, &hints, &counters).expect_err("closed channel");
    assert_eq!(err, StreamError::Timeout, "mapped to the failure callers already handle");
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "peer death must be immediate, not a timeout sweep ({:?})",
        start.elapsed()
    );
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 1);
    assert_eq!(counters.retries.load(Ordering::Relaxed), 0);
}

#[test]
fn push_then_drop_race_still_delivers_the_final_frame() {
    let (mut tx, rx) = shm_channel(16, 64);
    tx.send_copy(&record_bytes(7));
    let (btx, brx) = ShmTransport::from_halves(tx, rx);
    let (_plan, mut rx) = plan_wrapped(brx);
    drop(btx); // frame queued *before* the closed flag

    let hints = fast_hints();
    let counters = ProtocolCounters::new_shared();
    let r = recv_record(&mut rx, &hints, &counters).expect("frame pushed before close");
    assert_eq!(r.get_u64("tag"), Some(7));
    let err = recv_record(&mut rx, &hints, &counters).expect_err("now drained and closed");
    assert_eq!(err, StreamError::Timeout);
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 1);
}

#[test]
fn empty_channel_exhausts_the_budget_and_counts_every_retry() {
    let (tx, rx) = shm_channel(16, 64);
    let (btx, brx) = ShmTransport::from_halves(tx, rx);
    let (_plan, mut rx) = plan_wrapped(brx);

    let hints = StreamHints {
        recv_timeout: Duration::from_millis(2),
        retries: 2,
        ..StreamHints::default()
    };
    let counters = ProtocolCounters::new_shared();
    let err = recv_record(&mut rx, &hints, &counters).expect_err("nothing ever arrives");
    assert_eq!(err, StreamError::Timeout);
    assert_eq!(counters.retries.load(Ordering::Relaxed), u64::from(hints.retries));
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 0, "sender still alive");
    assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), 0);
    drop(btx);
}

#[test]
fn oversize_payload_rides_the_pooled_path_intact() {
    // Larger than the 64-byte inline capacity: the channel must hand it
    // off through the pooled (token) path, and the readiness poll must
    // reassemble it as an ordinary message — oversize is a path choice,
    // never an error.
    let (tx, rx) = shm_channel(16, 64);
    let (mut btx, brx) = ShmTransport::from_halves(tx, rx);
    let (_plan, mut rx) = plan_wrapped(brx);

    let big: Vec<u64> = (0..512).collect();
    let bytes = Record::new().with("big", FieldValue::U64Array(big.clone())).encode();
    assert!(bytes.len() > 64, "payload must exceed the inline capacity");
    btx.send(&bytes);

    // Owned decode plane: large arrays come back as plain `U64Array`
    // fields instead of zero-copy packed views, so the roundtrip can be
    // compared element for element.
    let hints = StreamHints { packed_marshal: false, ..fast_hints() };
    let counters = ProtocolCounters::new_shared();
    let r = recv_record(&mut rx, &hints, &counters).expect("pooled frame");
    assert_eq!(r.get_u64_array("big"), Some(&big[..]));
    assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), 0);
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 0);
}

#[test]
fn socket_peer_close_counts_exact_like_shm_peer_close() {
    // Same fail-fast contract as `peer_close_fails_fast...`, but the
    // channel underneath is a real TCP stream: dropping the sender is the
    // wire-level analogue of a killed process.
    let (tx, rx) = raw_socket_pair(SocketKind::Tcp);
    let (_plan, mut rx) = plan_wrapped(receiver_over(rx));
    let hints =
        StreamHints { recv_timeout: Duration::from_secs(10), retries: 2, ..StreamHints::default() };
    let counters = ProtocolCounters::new_shared();
    drop(tx);

    let start = Instant::now();
    let err = recv_record(&mut rx, &hints, &counters).expect_err("closed socket");
    assert_eq!(err, StreamError::Timeout);
    assert!(start.elapsed() < Duration::from_secs(2), "socket peer death must fail fast");
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 1);
    assert_eq!(counters.retries.load(Ordering::Relaxed), 0);
}

#[test]
fn socket_corruption_counts_once_then_the_stream_is_closed() {
    // A byte stream cannot resync after garbage: one Corrupt verdict,
    // then the poisoned channel reads as closed — and the counters book
    // exactly one of each.
    let (tx, rx) = raw_socket_pair(SocketKind::Tcp);
    let mut tx = SocketSender::over(tx);
    tx.send(&record_bytes(3));
    tx.inject_raw_bytes(b"XXXXXXXXXXXX"); // bad magic mid-stream
    let (_plan, mut rx) = plan_wrapped(receiver_over(rx));

    let hints = fast_hints();
    let counters = ProtocolCounters::new_shared();
    let first = recv_record(&mut rx, &hints, &counters).expect("frame before the damage");
    assert_eq!(first.get_u64("tag"), Some(3));

    let err = recv_record(&mut rx, &hints, &counters).expect_err("corrupt frame");
    assert!(matches!(err, StreamError::Corrupt(_)), "got {err:?}");
    assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), 1);

    let err = recv_record(&mut rx, &hints, &counters).expect_err("poisoned stream");
    assert_eq!(err, StreamError::Timeout, "poisoned socket reads as closed");
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 1);
    assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), 1, "corruption charged once");
}

#[test]
fn monitor_sink_mirrors_socket_peer_health_into_link_counters() {
    // Satellite contract: a MonitorSink draining a *socket* peer reports
    // closed/corrupt through the same shared ProtocolCounters the
    // data-plane channels charge — not just its local accessors.
    let (tx, rx) = raw_socket_pair(SocketKind::Uds);
    let mut tx = SocketSender::over(tx);
    let counters = ProtocolCounters::new_shared();
    let mut sink = MonitorSink::new(receiver_over(rx)).with_counters(Arc::clone(&counters));

    tx.inject_raw_bytes(b"????????"); // garbage where a frame header belongs
    drop(tx); // then the peer dies

    // Drain until the sink sees the close (header bytes may land across
    // two polls on a real socket).
    let deadline = Instant::now() + Duration::from_secs(5);
    while !sink.peer_closed() {
        assert!(Instant::now() < deadline, "sink never observed peer death");
        sink.drain();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(sink.corrupt_frames(), 1, "local book keeps the corrupt frame");
    assert_eq!(counters.corrupt_frames.load(Ordering::Relaxed), 1, "shared book matches");
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 1, "peer death mirrored once");

    // Further drains must not double-charge the close.
    sink.drain();
    assert_eq!(counters.closed_channels.load(Ordering::Relaxed), 1);
}

#[test]
fn link_counters_record_peer_death_on_claimed_channels() {
    // Same contract one layer up: channels claimed through a LinkState
    // charge the *link's* shared counters, which is what the engines'
    // step accounting actually reads.
    let link = LinkState::for_tests();
    link.set_reader_info(1, vec![link.writer_cores[0]]);
    let id = ChannelId::Data { w: 0, r: 0 };
    let tx = link.claim_sender(id);
    let mut rx = link.claim_receiver(id);
    drop(tx);

    let hints = fast_hints();
    let err = recv_record(&mut rx, &hints, &link.counters).expect_err("peer gone");
    assert_eq!(err, StreamError::Timeout);
    assert_eq!(link.counters.closed_channels.load(Ordering::Relaxed), 1);
}
