//! Property tests for the `CTB1` contact-table wire encoding — the frame
//! that lets directory nodes hand out connectable addresses across a
//! process boundary. Arbitrary contact sets (any UTF-8 address, any
//! metadata, empty sets and empty fields included) must round-trip
//! bit-exactly, and damaged frames must be rejected, never misdecoded.

use flexio::{decode_contact_table, encode_contact_table, WireContact};
use proptest::prelude::*;

fn arb_contacts() -> impl Strategy<Value = Vec<(u64, WireContact)>> {
    proptest::collection::vec(
        (any::<u64>(), ".{0,40}", proptest::collection::vec(any::<u64>(), 0..8)),
        0..16,
    )
    .prop_map(|entries| {
        let mut out: Vec<(u64, WireContact)> = entries
            .into_iter()
            .map(|(token, addr, meta)| (token, WireContact { addr, meta }))
            .collect();
        out.sort_by_key(|(token, _)| *token);
        out.dedup_by_key(|(token, _)| *token);
        out
    })
}

proptest! {
    /// Any contact set round-trips through the wire encoding: tokens,
    /// addresses (arbitrary UTF-8, empty included) and metadata all
    /// survive bit-exactly.
    #[test]
    fn contact_tables_roundtrip(contacts in arb_contacts()) {
        let encoded = encode_contact_table(&contacts);
        let decoded = decode_contact_table(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded.len(), contacts.len());
        for ((t_in, c_in), (t_out, c_out)) in contacts.iter().zip(&decoded) {
            prop_assert_eq!(t_in, t_out);
            prop_assert_eq!(&c_in.addr, &c_out.addr);
            prop_assert_eq!(&c_in.meta, &c_out.meta);
        }
    }

    /// Every strict prefix of a valid frame is rejected — truncation on
    /// the wire can never yield a phantom partial table.
    #[test]
    fn truncated_frames_are_rejected(contacts in arb_contacts()) {
        let encoded = encode_contact_table(&contacts);
        for cut in 0..encoded.len() {
            prop_assert_eq!(decode_contact_table(&encoded[..cut]), None, "prefix of {} bytes", cut);
        }
    }

    /// Trailing garbage after a well-formed table is rejected (the frame
    /// length is authoritative; leftovers mean a desynced stream).
    #[test]
    fn trailing_bytes_are_rejected(contacts in arb_contacts(), junk in proptest::collection::vec(any::<u8>(), 1..16)) {
        let mut encoded = encode_contact_table(&contacts);
        encoded.extend_from_slice(&junk);
        prop_assert_eq!(decode_contact_table(&encoded), None);
    }

    /// A flipped magic byte is rejected no matter the payload.
    #[test]
    fn damaged_magic_is_rejected(contacts in arb_contacts(), byte in 0usize..4, flip in 1u8..=255) {
        let mut encoded = encode_contact_table(&contacts);
        encoded[byte] ^= flip;
        prop_assert_eq!(decode_contact_table(&encoded), None);
    }
}
