//! End-to-end runtime management: the analytics watches its monitoring
//! feed and migrates the conditioning plug-in at runtime (paper §II.G's
//! "decide the placement of DC Plug-ins" + §IV's dynamic placement demo).

use std::thread;

use adios::{ArrayData, LocalBlock, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use flexio::{
    FlexIo, ManagerPolicy, MonitorEvent, PlacementManager, PluginPlacement, PluginSpec,
    StreamHints, WriteMode,
};
use machine::{laptop, CoreLocation};

const STEPS: u64 = 8;
const N: usize = 20_000;

#[test]
fn manager_migrates_plugin_when_wire_volume_spikes() {
    let io = FlexIo::single_node(laptop());
    let hints = StreamHints { write_mode: WriteMode::Sync, ..StreamHints::default() };

    let io_w = io.clone();
    let hints_w = hints.clone();
    let writer = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = CoreLocation { node: 0, numa: 0, core: 0 };
            let mut w =
                io_w.open_writer("adaptive", 0, 1, core, vec![core], hints_w.clone()).unwrap();
            for step in 0..STEPS {
                w.begin_step(step);
                w.write(
                    "signal",
                    VarValue::Block(
                        LocalBlock {
                            global_shape: vec![N as u64],
                            offset: vec![0],
                            count: vec![N as u64],
                            data: ArrayData::F64(vec![step as f64; N]),
                        }
                        .validated(),
                    ),
                );
                w.end_step();
            }
            w.close();
        })
    });

    let io_r = io.clone();
    let reader = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = CoreLocation { node: 0, numa: 1, core: 0 };
            let mut r =
                io_r.open_reader("adaptive", 0, 1, core, vec![core], hints.clone()).unwrap();
            r.subscribe("signal", Selection::ProcessGroup(0));
            // Start with reader-side conditioning (the full signal crosses
            // the wire) and let the manager decide per step.
            let sampling = |placement| PluginSpec {
                var: "signal".to_string(),
                source: codelet::plugins::sampling("signal", 20),
                placement,
            };
            r.install_plugin(sampling(PluginPlacement::ReaderSide));
            let policy = ManagerPolicy {
                wire_bytes_threshold: 50_000, // the 160 kB steps exceed this
                max_writer_cpu_fraction: 0.9, // plug-in is cheap; allow it
                sim_step_ns: 1_000_000_000,
                window: 2,
            };
            let mut manager = PlacementManager::builder()
                .policy(policy)
                .initial_placement(PluginPlacement::ReaderSide)
                .build_manager();
            let monitor = r.link().monitor.clone();
            let mut migration_step = None;
            let mut lens = Vec::new();
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("signal", &Selection::ProcessGroup(0)).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        lens.push(b.data.as_f64().len());
                        r.end_step();
                        let rec = manager.decide(&monitor, 0);
                        if rec.placement != PluginPlacement::ReaderSide && migration_step.is_none()
                        {
                            migration_step = Some(step);
                            r.install_plugin(sampling(rec.placement));
                        }
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            (migration_step, lens, monitor.total_bytes(MonitorEvent::DataSend))
        })
    });

    writer.join().unwrap();
    let mut results = reader.join().unwrap();
    let (migration_step, lens, _) = results.pop().unwrap();
    // The manager must have seen the heavy wire volume and migrated the
    // plug-in into the writer's address space early in the run.
    let migrated_at = migration_step.expect("manager should trigger a migration");
    assert!(migrated_at <= 2, "migration happened at step {migrated_at}");
    // Conditioned output is identical regardless of placement.
    assert!(lens.iter().all(|&l| l == N / 20), "sampled length stable: {lens:?}");
}
