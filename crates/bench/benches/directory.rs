//! **Directory service** — lookup throughput of the lock-striped
//! registry swept over shard count under fixed client concurrency, plus
//! the gossip-replicated cluster's lookup service rate and convergence
//! lag swept over node count.
//!
//! Two sharded workloads, because the two contention pathologies striping
//! fixes are distinct:
//!
//! * `sharded` — resolved lookups hammering the stripe mutexes. This is
//!   the lock-serialization axis; it needs real cores to show (the
//!   stripes only help when clients can actually run in parallel), so on
//!   a single-core host it reads flat.
//! * `discovery` — the paper's §II.C.1 pattern: reader coordinators park
//!   in blocking lookups until the writer registers. This is the condvar
//!   herd axis: one stripe means every registration's `notify_all` wakes
//!   *every* parked lookup in the registry (spurious wakeups, context
//!   switches); 8 stripes wake only the name's own stripe. Herd cost is
//!   pure overhead, so this scales with shard count even on one core.
//!
//! The replicated sweep measures what replication costs: lookups are
//! still served from one node's local store (so they stay fast), and
//! `converge_ms` is the anti-entropy lag for a registration to become
//! visible on every node.
//!
//! Results land in `BENCH_directory.json` at the repo root and the
//! summary JSON is printed to stdout (one line, machine-parsable).
//!
//! Run with `cargo bench --bench directory`. Set `DIR_QUICK=1` to shrink
//! op counts for smoke runs.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use flexio::link::LinkState;
use flexio::{DirectoryCluster, DirectoryService, ShardedDirectory};

const THREADS: usize = 8;
const NAMES: usize = 1024;

struct RunResult {
    mode: &'static str,
    shards: usize,
    nodes: usize,
    ops: u64,
    elapsed_s: f64,
    converge_ms: f64,
}

impl RunResult {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed_s
    }
}

fn names() -> Vec<String> {
    (0..NAMES).map(|i| format!("stream/{i}")).collect()
}

/// 8 client threads hammering lookups over a pre-registered name set.
fn run_sharded(shards: usize, ops_per_thread: u64) -> RunResult {
    let dir = Arc::new(ShardedDirectory::new(shards));
    let names = Arc::new(names());
    for name in names.iter() {
        dir.register(name, LinkState::for_tests()).expect("register");
    }
    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let dir = Arc::clone(&dir);
            let names = Arc::clone(&names);
            thread::spawn(move || {
                for i in 0..ops_per_thread {
                    let name = &names[(t as u64 * 7919 + i) as usize % NAMES];
                    assert!(dir.try_lookup(name).is_some());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("bench thread");
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let ops = THREADS as u64 * ops_per_thread;
    assert_eq!(dir.lookup_count(), ops);
    RunResult { mode: "sharded", shards, nodes: 1, ops, elapsed_s, converge_ms: 0.0 }
}

/// Discovery workload: 8 client threads — 1 registrar and 7 reader
/// coordinators. Each reader blocking-looks-up its own name sequence in
/// order; the registrar round-robins one name per reader, so every
/// reader is almost always parked on its shard condvar waiting for its
/// next name. Throughput = resolved blocking lookups/s. The herd cost is
/// the variable: each registration's `notify_all` wakes every parked
/// reader sharing the stripe — all 7 with one stripe, ~1 with eight.
fn run_discovery(shards: usize, names_per_reader: u64) -> RunResult {
    const READERS: usize = THREADS - 1;
    let dir = Arc::new(ShardedDirectory::new(shards));
    let start = Instant::now();
    let mut workers = Vec::new();
    let registrar = Arc::clone(&dir);
    workers.push(thread::spawn(move || {
        for i in 0..names_per_reader {
            for r in 0..READERS {
                registrar
                    .register(&format!("reader{r}/{i}"), LinkState::for_tests())
                    .expect("register");
                // Registrations arrive one at a time over a transport in a
                // real deployment; without this the single run queue lets
                // the registrar batch a whole timeslice of registrations
                // and the readers never park at all.
                thread::yield_now();
            }
        }
    }));
    for r in 0..READERS {
        let reader = Arc::clone(&dir);
        workers.push(thread::spawn(move || {
            for i in 0..names_per_reader {
                reader
                    .lookup(&format!("reader{r}/{i}"), Duration::from_secs(30))
                    .expect("registrar delivers within the budget");
            }
        }));
    }
    for w in workers {
        w.join().expect("bench thread");
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let ops = READERS as u64 * names_per_reader;
    assert_eq!(dir.lookup_count(), ops);
    RunResult { mode: "discovery", shards, nodes: 1, ops, elapsed_s, converge_ms: 0.0 }
}

/// Lookup service rate through a cluster handle plus the mean time for a
/// fresh registration to become visible on every node.
fn run_replicated(node_count: usize, ops_per_thread: u64, probes: usize) -> RunResult {
    let cluster = DirectoryCluster::new(node_count, 8, Duration::from_millis(1), None);
    let handle = cluster.spawn_driver();
    let names = Arc::new(names());
    for name in names.iter() {
        handle.register(name, LinkState::for_tests()).expect("register");
    }
    // Convergence lag: register a fresh name, stamp when every node's
    // local store serves it.
    let mut converge_total = Duration::ZERO;
    for p in 0..probes {
        let name = format!("probe/{p}");
        let t0 = Instant::now();
        handle.register(&name, LinkState::for_tests()).expect("register probe");
        while !(0..node_count).all(|i| cluster.node(i).store().try_lookup(&name).is_some()) {
            std::hint::spin_loop();
        }
        converge_total += t0.elapsed();
    }
    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let dir = handle.clone();
            let names = Arc::clone(&names);
            thread::spawn(move || {
                for i in 0..ops_per_thread {
                    let name = &names[(t as u64 * 7919 + i) as usize % NAMES];
                    assert!(dir.try_lookup(name).is_some());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("bench thread");
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    RunResult {
        mode: "replicated",
        shards: 8,
        nodes: node_count,
        ops: THREADS as u64 * ops_per_thread,
        elapsed_s,
        converge_ms: converge_total.as_secs_f64() * 1000.0 / probes as f64,
    }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        println!("directory: skipped under test harness");
        return;
    }
    let quick = std::env::var("DIR_QUICK").is_ok();
    let ops_per_thread: u64 = if quick { 20_000 } else { 200_000 };
    let probes = if quick { 8 } else { 32 };

    let discovery_names: u64 = if quick { 2_000 } else { 10_000 };

    let mut results = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let r = run_sharded(shards, ops_per_thread);
        eprintln!(
            "directory: sharded    {:2} shards  {THREADS} threads  {:12.0} lookups/s",
            r.shards,
            r.ops_per_s()
        );
        results.push(r);
    }
    for shards in [1usize, 2, 4, 8] {
        let r = run_discovery(shards, discovery_names);
        eprintln!(
            "directory: discovery  {:2} shards  {THREADS} threads  {:12.0} lookups/s",
            r.shards,
            r.ops_per_s()
        );
        results.push(r);
    }
    for nodes in [1usize, 2, 3] {
        let r = run_replicated(nodes, ops_per_thread, probes);
        eprintln!(
            "directory: replicated {:2} nodes   {THREADS} threads  {:12.0} lookups/s  converge {:.2} ms",
            r.nodes,
            r.ops_per_s(),
            r.converge_ms
        );
        results.push(r);
    }

    let lookup_speedup = results[3].ops_per_s() / results[0].ops_per_s();
    let discovery_speedup = results[7].ops_per_s() / results[4].ops_per_s();
    eprintln!(
        "directory: 8-shard speedup over 1 shard — lookups {lookup_speedup:.2}x, \
         discovery {discovery_speedup:.2}x"
    );

    let mut rep = bench::report::Report::new("directory")
        .u64("names", NAMES as u64)
        .f64("lookup_speedup_8shard", lookup_speedup, 3)
        .f64("discovery_speedup_8shard", discovery_speedup, 3)
        .f64("speedup_8shard", lookup_speedup.max(discovery_speedup), 3);
    for r in &results {
        rep.push(
            bench::report::Obj::new()
                .str("mode", r.mode)
                .u64("shards", r.shards as u64)
                .u64("nodes", r.nodes as u64)
                .u64("threads", THREADS as u64)
                .u64("ops", r.ops)
                .f64("elapsed_s", r.elapsed_s, 6)
                .f64("ops_per_s", r.ops_per_s(), 3)
                .f64("converge_ms", r.converge_ms, 4),
        );
    }
    rep.write();
}
