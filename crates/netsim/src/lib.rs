//! `netsim` — a behavioural simulator of the RDMA transport (paper §II.E).
//!
//! The paper's inter-node transport sits on Sandia's NNTI library (Connect,
//! Memory Register/Unregister, RDMA Put and Get over IB verbs / Portals /
//! uGNI). None of that hardware exists here, so this crate provides the
//! closest synthetic equivalent: an in-process fabric where
//!
//! * every compute node has a [`nic::Nic`] with a **registration cache**
//!   (allocated+registered buffers are kept in a pool and reused; a
//!   configurable threshold triggers reclamation — §II.E's answer to the
//!   Fig. 4 cost), an active-flow counter that models NIC **contention**,
//!   and a **virtual clock** accumulating modelled nanoseconds;
//! * [`port::Port`]s exchange real bytes: small messages travel an eager
//!   mailbox path (the paper's paired message queues written with RDMA/FMA
//!   Put), large messages use **receiver-directed RDMA Get** — the sender
//!   copies into a registered send buffer and posts a small control message
//!   with its address/size; the receiver fetches the payload when the
//!   [`sched::GetScheduler`] grants it a slot;
//! * every operation charges modelled time derived from
//!   [`machine::InterconnectParams`], so benches report bandwidth/latency
//!   with the same first-order shape as the paper's hardware while tests
//!   verify the bytes themselves.
//!
//! Real wall-clock time plays no role: "time" is the virtual clock.
//!
//! ```
//! use machine::InterconnectParams;
//! use netsim::{NetSim, Registration};
//!
//! let net = NetSim::new(InterconnectParams::gemini(), 2);
//! let mut a = net.open_port(0);
//! let mut b = net.open_port(1);
//! a.send(&b.address(), b"hello across the fabric", Registration::Cached);
//! let (payload, _recv_ns) = b.recv();
//! assert_eq!(payload, b"hello across the fabric");
//! ```

pub mod nic;
pub mod port;
pub mod sched;

pub use nic::{Nic, NicStats, RegistrationCache};
pub use port::{NetSim, Port, PortAddress, Registration, SendReceipt};
pub use sched::{GetScheduler, SchedulingPolicy};
