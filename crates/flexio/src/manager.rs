//! Runtime placement management (paper §II.G + §IV):
//!
//! "For runtime management, monitoring data captured from the simulation
//! side can be gathered online and transferred to the analytics side. The
//! analytics process(es) can then use it to dynamically schedule data
//! movement and decide the placement of DC Plug-ins." The evaluation
//! "demonstrates the utility of Data Conditioning Plug-ins to enable
//! dynamic placement of analytics at runtime."
//!
//! [`PlacementManager`] is that decision loop: it watches the monitor's
//! per-step wire volume and plug-in execution cost and recommends where a
//! conditioning plug-in should run —
//!
//! * high wire volume + effective reduction ⇒ **writer side** (condition
//!   before the transport, shrink traffic);
//! * heavy plug-in cost relative to the simulation's budget ⇒ **reader
//!   side** (don't steal simulation cycles).

use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::directory::{DirectoryError, DirectoryService};
use crate::monitor::{MonitorEvent, PerfMonitor};
use crate::plugins::PluginPlacement;

/// Tunables of the decision policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerPolicy {
    /// Per-step wire bytes above which writer-side conditioning is worth
    /// pursuing (the transport is the bottleneck).
    pub wire_bytes_threshold: u64,
    /// Maximum fraction of a simulation step the plug-in may consume
    /// before it must be evicted to the reader side.
    pub max_writer_cpu_fraction: f64,
    /// The simulation's step budget in nanoseconds (from profiling).
    pub sim_step_ns: u64,
    /// Steps of history to average over.
    pub window: usize,
}

impl Default for ManagerPolicy {
    fn default() -> Self {
        ManagerPolicy {
            wire_bytes_threshold: 1 << 20,
            max_writer_cpu_fraction: 0.05,
            sim_step_ns: 1_000_000_000,
            window: 3,
        }
    }
}

/// A recommendation with its reasoning (surfaced to users/traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// Where the plug-in should run next.
    pub placement: PluginPlacement,
    /// Human-readable justification.
    pub reason: String,
}

/// Online placement decision loop for one conditioning plug-in.
#[derive(Debug, Clone)]
pub struct PlacementManager {
    policy: ManagerPolicy,
    current: PluginPlacement,
}

impl PlacementManager {
    /// Start managing with an initial placement.
    #[deprecated(
        since = "0.10.0",
        note = "use `PlacementManager::builder()` over an `ElasticConfig` instead of positional arguments"
    )]
    pub fn new(policy: ManagerPolicy, initial: PluginPlacement) -> PlacementManager {
        PlacementManager { policy, current: initial }
    }

    /// Fluent construction over [`crate::elastic::ElasticConfig`] — the
    /// one config that also drives the elastic controller, so the
    /// manager and the controller can never disagree on policy.
    pub fn builder() -> crate::elastic::ElasticConfigBuilder {
        crate::elastic::ElasticConfig::builder()
    }

    /// Build from an assembled [`crate::elastic::ElasticConfig`].
    pub fn from_elastic(cfg: &crate::elastic::ElasticConfig) -> PlacementManager {
        PlacementManager { policy: cfg.policy, current: cfg.initial_placement }
    }

    /// Current placement.
    pub fn current(&self) -> PluginPlacement {
        self.current
    }

    /// Mean of the last `window` values of a per-step series.
    fn recent_mean(series: &[(u64, u64)], window: usize) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        let tail = &series[series.len().saturating_sub(window)..];
        tail.iter().map(|&(_, v)| v as f64).sum::<f64>() / tail.len() as f64
    }

    /// Inspect the monitor and decide the plug-in's next placement.
    /// `rank` selects whose monitoring series to read (typically the
    /// writer rank whose address space hosts the plug-in).
    pub fn decide(&mut self, monitor: &PerfMonitor, rank: usize) -> Recommendation {
        let wire = Self::recent_mean(
            &monitor.bytes_per_step(MonitorEvent::DataSend, rank),
            self.policy.window,
        );
        let plugin_execs = monitor.count(MonitorEvent::PluginExec);
        let plugin_ns = if plugin_execs == 0 {
            0.0
        } else {
            monitor.total_nanos(MonitorEvent::PluginExec) as f64 / plugin_execs as f64
        };
        let cpu_fraction = plugin_ns / self.policy.sim_step_ns as f64;

        let rec = if cpu_fraction > self.policy.max_writer_cpu_fraction {
            Recommendation {
                placement: PluginPlacement::ReaderSide,
                reason: format!(
                    "plug-in consumes {:.1}% of the simulation step (budget {:.1}%): evict to analytics",
                    cpu_fraction * 100.0,
                    self.policy.max_writer_cpu_fraction * 100.0
                ),
            }
        } else if wire as u64 > self.policy.wire_bytes_threshold {
            Recommendation {
                placement: PluginPlacement::WriterSide,
                reason: format!(
                    "wire volume {:.0} B/step exceeds {} B: condition before the transport",
                    wire, self.policy.wire_bytes_threshold
                ),
            }
        } else {
            Recommendation {
                placement: self.current,
                reason: "within budgets: keep current placement".to_string(),
            }
        };
        self.current = rec.placement;
        rec
    }

    /// Decide placement for stream `name` found through the directory
    /// service: the manager reads the live link's shared [`PerfMonitor`]
    /// directly, so a staging-node decision loop needs only a directory
    /// handle — not a reference to whichever program opened the stream.
    pub fn decide_stream(
        &mut self,
        directory: &dyn DirectoryService,
        name: &str,
        rank: usize,
    ) -> Result<Recommendation, DirectoryError> {
        let link = directory
            .try_lookup(name)
            .ok_or_else(|| DirectoryError::LookupTimeout(name.to_string()))?;
        Ok(self.decide(&link.monitor, rank))
    }

    /// Convert the manager into a periodic decision loop for a reactor
    /// (the staging node's placement poller folded into the fleet). The
    /// task re-decides stream `name`'s placement every `interval` from
    /// the live link's monitor, publishing each recommendation through
    /// the handle. It ends on its own once a stream it has seen becomes
    /// unregistered (the coupling is gone), or early via the handle's
    /// `stop`.
    pub fn into_task(
        mut self,
        directory: Arc<dyn DirectoryService>,
        name: String,
        rank: usize,
        interval: Duration,
    ) -> (ManagerTaskHandle, impl Future<Output = ()> + Send) {
        let handle = ManagerTaskHandle {
            latest: Arc::new(Mutex::new(None)),
            decisions: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
            done: Arc::new(AtomicBool::new(false)),
        };
        let (latest, decisions, stop, done) = (
            Arc::clone(&handle.latest),
            Arc::clone(&handle.decisions),
            Arc::clone(&handle.stop),
            Arc::clone(&handle.done),
        );
        let task = async move {
            let mut seen = false;
            while !stop.load(Ordering::Acquire) {
                match directory.try_lookup(&name) {
                    Some(link) => {
                        seen = true;
                        let rec = self.decide(&link.monitor, rank);
                        *latest.lock() = Some(rec);
                        decisions.fetch_add(1, Ordering::Relaxed);
                    }
                    // A stream that was up and is now gone won't come
                    // back under the same registration; stop polling.
                    None if seen => break,
                    None => {}
                }
                flexio_reactor::sleep(interval).await;
            }
            done.store(true, Ordering::Release);
        };
        (handle, task)
    }
}

/// Observer/controller for a fleet-spawned [`PlacementManager::into_task`]
/// decision loop. Cloning shares the underlying state.
#[derive(Clone)]
pub struct ManagerTaskHandle {
    latest: Arc<Mutex<Option<Recommendation>>>,
    decisions: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
}

impl ManagerTaskHandle {
    /// The most recent recommendation, if any decision has run yet.
    pub fn latest(&self) -> Option<Recommendation> {
        self.latest.lock().clone()
    }

    /// Decision rounds completed so far.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Ask the task to exit after its current round.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl crate::task::ControlTask for ManagerTaskHandle {
    fn kind(&self) -> &'static str {
        "manager"
    }

    fn stop(&self) {
        ManagerTaskHandle::stop(self);
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("decisions", self.decisions())]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor_with(wire_per_step: u64, plugin_ns: u64, steps: u64) -> PerfMonitor {
        let m = PerfMonitor::new();
        for step in 0..steps {
            m.record(MonitorEvent::DataSend, step, 0, wire_per_step, 0);
            if plugin_ns > 0 {
                m.record(MonitorEvent::PluginExec, step, 0, 0, plugin_ns);
            }
        }
        m
    }

    #[test]
    fn heavy_wire_volume_pushes_plugin_to_writer() {
        let m = monitor_with(50 << 20, 1000, 5);
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::ReaderSide)
            .build_manager();
        let rec = mgr.decide(&m, 0);
        assert_eq!(rec.placement, PluginPlacement::WriterSide);
        assert!(rec.reason.contains("wire volume"));
    }

    #[test]
    fn expensive_plugin_is_evicted_to_reader() {
        // Plug-in eats 20% of the step: must not run in the simulation.
        let m = monitor_with(50 << 20, 200_000_000, 5);
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::WriterSide)
            .build_manager();
        let rec = mgr.decide(&m, 0);
        assert_eq!(rec.placement, PluginPlacement::ReaderSide);
        assert!(rec.reason.contains("evict"));
    }

    #[test]
    fn quiet_stream_keeps_current_placement() {
        let m = monitor_with(1000, 100, 5);
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::ReaderSide)
            .build_manager();
        let rec = mgr.decide(&m, 0);
        assert_eq!(rec.placement, PluginPlacement::ReaderSide);
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::WriterSide)
            .build_manager();
        let rec = mgr.decide(&m, 0);
        assert_eq!(rec.placement, PluginPlacement::WriterSide);
    }

    #[test]
    fn eviction_wins_over_wire_pressure() {
        // Both triggers fire: CPU safety beats bandwidth savings.
        let m = monitor_with(500 << 20, 400_000_000, 5);
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::WriterSide)
            .build_manager();
        assert_eq!(mgr.decide(&m, 0).placement, PluginPlacement::ReaderSide);
    }

    #[test]
    fn window_averages_recent_steps_only() {
        let m = PerfMonitor::new();
        // Old steps were heavy; recent steps are light.
        for step in 0..5u64 {
            m.record(MonitorEvent::DataSend, step, 0, 100 << 20, 0);
        }
        for step in 5..10u64 {
            m.record(MonitorEvent::DataSend, step, 0, 1000, 0);
        }
        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::ReaderSide)
            .build_manager();
        let rec = mgr.decide(&m, 0);
        assert_eq!(rec.placement, PluginPlacement::ReaderSide, "{}", rec.reason);
    }
}
