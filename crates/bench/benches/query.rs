//! **Query pushdown** — bytes moved across the transport for a
//! selective filter evaluated writer-side vs reader-side.
//!
//! One writer streams 1 MiB f64 chunks; the reader runs the same
//! `field < 0.2` plan (20%-selective on the synthetic data) twice: once
//! with the filter lowered to a writer-side Data Conditioning plug-in
//! and once fully reader-side. Both runs must produce bit-identical
//! query outputs; the headline is the wire-bytes ratio (no-pushdown /
//! pushdown), which must exceed 3× — the paper's location-flexibility
//! argument in miniature: moving the computation beats moving the data.
//!
//! Results land in `BENCH_query.json`. Run with
//! `cargo bench --bench query`; set `QUERY_QUICK=1` for smoke runs.

use std::thread;
use std::time::{Duration, Instant};

use adios::{ArrayData, LocalBlock, VarValue, WriteEngine};
use flexio::query::{Expr, Plan};
use flexio::{FlexIo, MonitorEvent, QueryConfig, QuerySession, StreamHints};
use machine::laptop;

/// 1 MiB of f64 per chunk.
const ELEMS: usize = 128 * 1024;

fn hints() -> StreamHints {
    StreamHints { recv_timeout: Duration::from_secs(10), retries: 2, ..StreamHints::default() }
}

fn payload(step: u64) -> VarValue {
    // Values cycle 0.000..0.999, shifted per step so every step differs;
    // `field < 0.2` keeps exactly 20% regardless of the shift.
    let data: Vec<f64> =
        (0..ELEMS).map(|i| ((i as u64 + step * 7) % 1000) as f64 / 1000.0).collect();
    VarValue::Block(
        LocalBlock {
            global_shape: vec![ELEMS as u64],
            offset: vec![0],
            count: vec![ELEMS as u64],
            data: ArrayData::F64(data),
        }
        .validated(),
    )
}

struct RunOut {
    wire_bytes: u64,
    rows_in: u64,
    rows_out: u64,
    bytes_pushed_down: u64,
    bytes_saved: u64,
    elapsed_s: f64,
    digest: u64,
}

fn run(pushdown: bool, steps: u64) -> RunOut {
    let io = FlexIo::new(laptop(), 4);
    let io_w = io.clone();
    let m = laptop();
    let wcore = m.node.location_of(0);
    let rcore = m.node.location_of(m.total_cores() - 1);
    let start = Instant::now();
    let wt = thread::spawn(move || {
        rankrt::launch_named(1, "sim", move |_comm| {
            let mut w = io_w
                .open_writer("query-bench", 0, 1, wcore, vec![wcore], hints())
                .expect("open writer");
            for step in 0..steps {
                w.begin_step(step);
                w.write("field", payload(step));
                w.end_step();
            }
            let bytes = w.link().monitor.total_bytes(MonitorEvent::DataSend);
            w.close();
            bytes
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch_named(1, "ana", move |_comm| {
            let r = io
                .open_reader("query-bench", 0, 1, rcore, vec![rcore], hints())
                .expect("open reader");
            let plan = Plan::select(&["field"]).filter(Expr::col("field").lt(Expr::lit(0.2)));
            let cfg = QueryConfig { pushdown, ..QueryConfig::default() };
            let session = QuerySession::attach(r, 1, plan, cfg).expect("attach");
            assert_eq!(session.pushdown_active(), pushdown);
            let counters = session.counters();
            let out = session.run_to_end().expect("query run");
            (counters.snapshot(), out.digest())
        })
    });
    let wire_bytes = wt.join().expect("writer")[0];
    let ((rows_in, rows_out, bytes_pushed_down, bytes_saved), digest) =
        rt.join().expect("reader").pop().expect("one reader");
    RunOut {
        wire_bytes,
        rows_in,
        rows_out,
        bytes_pushed_down,
        bytes_saved,
        elapsed_s: start.elapsed().as_secs_f64(),
        digest,
    }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        println!("query: skipped under test harness");
        return;
    }
    let quick = std::env::var("QUERY_QUICK").is_ok();
    let steps: u64 = if quick { 6 } else { 24 };

    let with = run(true, steps);
    let without = run(false, steps);

    // Correctness gates first: pushdown must be result-invisible, and
    // the counters must account for exactly the bytes that stayed home.
    assert_eq!(with.digest, without.digest, "pushdown changed the query result");
    assert_eq!(with.rows_in, steps * ELEMS as u64);
    assert_eq!((without.bytes_pushed_down, without.bytes_saved), (0, 0));
    assert_eq!(with.bytes_pushed_down, with.rows_in * 8, "all chunks conditioned writer-side");
    assert_eq!(with.bytes_saved, (with.rows_in - with.rows_out) * 8);

    let ratio = without.wire_bytes as f64 / with.wire_bytes as f64;
    let selectivity = with.rows_out as f64 / with.rows_in as f64;
    eprintln!(
        "query: {:.1}% selective filter, wire bytes {} -> {} ({ratio:.2}x reduction)",
        selectivity * 100.0,
        without.wire_bytes,
        with.wire_bytes
    );
    assert!(
        ratio >= 3.0,
        "writer-side pushdown must cut bytes moved by >= 3x on a 20%-selective \
         filter (got {ratio:.2}x: {} -> {} bytes)",
        without.wire_bytes,
        with.wire_bytes
    );

    let mut rep = bench::report::Report::new("query")
        .u64("chunk_bytes", (ELEMS * 8) as u64)
        .f64("selectivity", selectivity, 3)
        .f64("bytes_moved_ratio", ratio, 2);
    for (mode, r) in [("pushdown", &with), ("reader_side", &without)] {
        rep.push(
            bench::report::Obj::new()
                .str("mode", mode)
                .u64("steps", steps)
                .u64("wire_bytes", r.wire_bytes)
                .u64("rows_in", r.rows_in)
                .u64("rows_out", r.rows_out)
                .u64("bytes_pushed_down", r.bytes_pushed_down)
                .u64("bytes_saved", r.bytes_saved)
                .f64("elapsed_s", r.elapsed_s, 6)
                .f64("steps_per_s", steps as f64 / r.elapsed_s, 3),
        );
    }
    rep.write();
}
