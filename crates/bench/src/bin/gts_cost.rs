//! **§IV.A cost table** — CPU-hours and data-movement volume of the GTS
//! placements (the paper's §III.A metrics beyond Total Execution Time):
//!
//! * CPU-hours ranking: Inline worst, Helper Core best, Staging between;
//! * data movement: helper-core/inline avoid moving particle data through
//!   the interconnect (~90% less inter-node volume than staging).
//!
//! Run: `cargo run --release -p bench --bin gts_cost [--machine titan]`

use dessim::{gts_outcome, GtsScale, Placement};
use placement::PolicyKind;

fn main() {
    let machine = bench::machine_arg();
    let cores = if machine.name == "titan" { 2048 } else { 512 };
    let scale = GtsScale { machine: machine.clone(), sim_cores: cores, steps: 20 };
    let placements = [
        Placement::Inline,
        Placement::HelperCore(PolicyKind::TopologyAware),
        Placement::Staging(PolicyKind::TopologyAware),
    ];
    println!(
        "GTS cost metrics on {} at {cores} cores, 20 output steps (§III.A / §IV.A)",
        machine.name
    );
    println!(
        "{:<38} {:>9} {:>8} {:>11} {:>14} {:>14}",
        "placement", "TET (s)", "nodes", "CPU-hours", "inter-node GB", "intra-node GB"
    );
    let mut outcomes = Vec::new();
    for p in placements {
        let o = gts_outcome(&scale, p);
        println!(
            "{:<38} {:>9.0} {:>8} {:>11.2} {:>14.1} {:>14.1}",
            o.placement.label(),
            o.total_s,
            o.nodes_used,
            o.cpu_hours,
            o.inter_node_bytes / 1e9,
            o.intra_node_bytes / 1e9
        );
        outcomes.push(o);
    }
    let (inline, helper, staging) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    assert!(helper.cpu_hours < staging.cpu_hours && staging.cpu_hours < inline.cpu_hours);
    println!(
        "\nCPU-hours ranking: Helper < Staging < Inline (paper §IV.A.1). \n\
         Helper-core keeps {:.0}% of the particle traffic off the interconnect\n\
         (paper: ~90% inter-node reduction vs staging).",
        (1.0 - helper.inter_node_bytes / staging.inter_node_bytes.max(1.0)) * 100.0
    );
}
