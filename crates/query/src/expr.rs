//! Typed expression tree over array elements.
//!
//! Expressions are built reader-side against the columns a [`crate::Plan`]
//! selects. Evaluation is defined in the `f64` domain (every element is
//! widened to `f64` before arithmetic/comparison, exactly like the codelet
//! VM the pushdown lowering targets), so the vectorized kernels, the naive
//! oracle and a writer-side lowered codelet all compute bit-identical
//! results.

use std::fmt;

/// Comparison operators (predicate leaves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub(crate) fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The codelet spelling of this operator.
    pub(crate) fn codelet_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Arithmetic operators (numeric interior nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub(crate) fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }

    pub(crate) fn codelet_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// An expression over the current row: column references, literals,
/// arithmetic, comparisons and boolean combinators.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The row's element of the named selected column.
    Col(String),
    /// A numeric literal.
    Lit(f64),
    /// Arithmetic over two numeric subexpressions.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison of two numeric subexpressions (boolean-typed).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction of two boolean subexpressions.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction of two boolean subexpressions.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
}

/// Static type of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprType {
    Num,
    Bool,
}

/// Type error found while checking an expression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query expression type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

impl Expr {
    /// Column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_string())
    }

    /// Numeric literal.
    pub fn lit(v: f64) -> Expr {
        Expr::Lit(v)
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    // The arithmetic builders intentionally shadow the `std::ops` names:
    // they are the DSL's vocabulary (`a.add(b)` reads as the plan text),
    // and taking `Expr` by value keeps them chainable.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Check the tree and return its type. Column references are
    /// validated against `columns` (the plan's selected variables).
    pub fn check(&self, columns: &[String]) -> Result<ExprType, TypeError> {
        match self {
            Expr::Col(name) => {
                if columns.iter().any(|c| c == name) {
                    Ok(ExprType::Num)
                } else {
                    Err(TypeError(format!("column `{name}` is not selected by the plan")))
                }
            }
            Expr::Lit(_) => Ok(ExprType::Num),
            Expr::Bin(_, a, b) => {
                expect(a.check(columns)?, ExprType::Num, "arithmetic operand")?;
                expect(b.check(columns)?, ExprType::Num, "arithmetic operand")?;
                Ok(ExprType::Num)
            }
            Expr::Cmp(_, a, b) => {
                expect(a.check(columns)?, ExprType::Num, "comparison operand")?;
                expect(b.check(columns)?, ExprType::Num, "comparison operand")?;
                Ok(ExprType::Bool)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                expect(a.check(columns)?, ExprType::Bool, "boolean operand")?;
                expect(b.check(columns)?, ExprType::Bool, "boolean operand")?;
                Ok(ExprType::Bool)
            }
            Expr::Not(a) => {
                expect(a.check(columns)?, ExprType::Bool, "negation operand")?;
                Ok(ExprType::Bool)
            }
        }
    }

    /// Collect the distinct column names the expression references, in
    /// first-reference order.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(name) => {
                if !out.iter().any(|c| c == name) {
                    out.push(name.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) => a.collect_columns(out),
        }
    }

    /// Whether every literal in the tree is finite (a prerequisite for
    /// lowering to codelet source, whose lexer has no NaN/inf spelling).
    pub fn literals_finite(&self) -> bool {
        match self {
            Expr::Col(_) => true,
            Expr::Lit(v) => v.is_finite(),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.literals_finite() && b.literals_finite()
            }
            Expr::Not(a) => a.literals_finite(),
        }
    }
}

fn expect(got: ExprType, want: ExprType, what: &str) -> Result<(), TypeError> {
    if got == want {
        Ok(())
    } else {
        Err(TypeError(format!("{what} must be {want:?}, got {got:?}")))
    }
}

// ------------------------------------------------------------ compiled form

/// One postfix instruction of a compiled expression. Compilation maps
/// column names to indexes into the plan's selected-variable list, so
/// the per-row inner loop never touches strings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    PushCol(usize),
    PushLit(f64),
    Bin(BinOp),
    Cmp(CmpOp),
    And,
    Or,
    Not,
}

/// A compiled predicate/expression: postfix ops evaluated over a small
/// value stack. The structural order of operations matches the AST walk
/// of the naive evaluator exactly, so both produce bit-identical `f64`s.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Program {
    pub ops: Vec<Op>,
}

impl Program {
    /// Compile `expr` against the column roster. The expression must
    /// already have passed [`Expr::check`].
    pub fn compile(expr: &Expr, columns: &[String]) -> Program {
        let mut prog = Program::default();
        prog.emit(expr, columns);
        prog
    }

    fn emit(&mut self, expr: &Expr, columns: &[String]) {
        match expr {
            Expr::Col(name) => {
                let idx = columns.iter().position(|c| c == name).expect("checked column");
                self.ops.push(Op::PushCol(idx));
            }
            Expr::Lit(v) => self.ops.push(Op::PushLit(*v)),
            Expr::Bin(op, a, b) => {
                self.emit(a, columns);
                self.emit(b, columns);
                self.ops.push(Op::Bin(*op));
            }
            Expr::Cmp(op, a, b) => {
                self.emit(a, columns);
                self.emit(b, columns);
                self.ops.push(Op::Cmp(*op));
            }
            Expr::And(a, b) => {
                self.emit(a, columns);
                self.emit(b, columns);
                self.ops.push(Op::And);
            }
            Expr::Or(a, b) => {
                self.emit(a, columns);
                self.emit(b, columns);
                self.ops.push(Op::Or);
            }
            Expr::Not(a) => {
                self.emit(a, columns);
                self.ops.push(Op::Not);
            }
        }
    }

    /// Evaluate over one row whose column values are pre-loaded (widened
    /// to `f64`) in `row`, indexed by the compiled column indexes.
    #[inline]
    pub fn eval_bool(&self, row: &[f64]) -> bool {
        // Slots are untagged: comparisons/booleans store 1.0/0.0. The
        // type checker guarantees ops never mix domains.
        let mut stack = [0.0f64; MAX_DEPTH];
        let mut sp = 0usize;
        for op in &self.ops {
            match op {
                Op::PushCol(i) => {
                    stack[sp] = row[*i];
                    sp += 1;
                }
                Op::PushLit(v) => {
                    stack[sp] = *v;
                    sp += 1;
                }
                Op::Bin(b) => {
                    sp -= 1;
                    stack[sp - 1] = b.apply(stack[sp - 1], stack[sp]);
                }
                Op::Cmp(c) => {
                    sp -= 1;
                    stack[sp - 1] = f64::from(c.apply(stack[sp - 1], stack[sp]));
                }
                Op::And => {
                    sp -= 1;
                    stack[sp - 1] = f64::from(stack[sp - 1] != 0.0 && stack[sp] != 0.0);
                }
                Op::Or => {
                    sp -= 1;
                    stack[sp - 1] = f64::from(stack[sp - 1] != 0.0 || stack[sp] != 0.0);
                }
                Op::Not => stack[sp - 1] = f64::from(stack[sp - 1] == 0.0),
            }
        }
        stack[0] != 0.0
    }

    /// Maximum stack depth the program needs.
    pub fn depth(&self) -> usize {
        let mut depth = 0usize;
        let mut max = 0usize;
        for op in &self.ops {
            match op {
                Op::PushCol(_) | Op::PushLit(_) => {
                    depth += 1;
                    max = max.max(depth);
                }
                Op::Bin(_) | Op::Cmp(_) | Op::And | Op::Or => depth -= 1,
                Op::Not => {}
            }
        }
        max
    }
}

/// Fixed evaluation stack bound; [`crate::Plan::validate`] rejects
/// deeper expressions up front.
pub(crate) const MAX_DEPTH: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_catches_domain_mixing() {
        let cols = vec!["v".to_string()];
        assert_eq!(Expr::col("v").lt(Expr::lit(1.0)).check(&cols), Ok(ExprType::Bool));
        assert!(Expr::col("v").and(Expr::lit(1.0)).check(&cols).is_err());
        assert!(Expr::col("w").lt(Expr::lit(1.0)).check(&cols).is_err());
        assert!(Expr::col("v").add(Expr::lit(1.0)).check(&cols).is_ok());
        assert!(Expr::col("v").lt(Expr::lit(1.0)).not().check(&cols).is_ok());
    }

    #[test]
    fn compiled_program_matches_hand_eval() {
        let cols = vec!["a".to_string(), "b".to_string()];
        // (a * 2 + b >= 3) && !(b == 0)
        let e = Expr::col("a")
            .mul(Expr::lit(2.0))
            .add(Expr::col("b"))
            .ge(Expr::lit(3.0))
            .and(Expr::col("b").eq(Expr::lit(0.0)).not());
        assert_eq!(e.check(&cols), Ok(ExprType::Bool));
        let p = Program::compile(&e, &cols);
        assert!(p.depth() <= MAX_DEPTH);
        assert!(p.eval_bool(&[1.0, 1.0])); // 3 >= 3 && b != 0
        assert!(!p.eval_bool(&[1.0, 0.0])); // b == 0
        assert!(!p.eval_bool(&[0.5, 1.0])); // 2 < 3
    }

    #[test]
    fn column_collection_dedupes_in_order() {
        let e = Expr::col("b").add(Expr::col("a")).lt(Expr::col("b"));
        assert_eq!(e.columns(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn nonfinite_literals_are_flagged() {
        assert!(Expr::col("v").lt(Expr::lit(1.0)).literals_finite());
        assert!(!Expr::col("v").lt(Expr::lit(f64::NAN)).literals_finite());
        assert!(!Expr::col("v").lt(Expr::lit(f64::INFINITY)).literals_finite());
    }
}
