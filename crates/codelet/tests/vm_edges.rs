//! VM edge cases that the pushdown code generator leans on: degenerate
//! loop ranges, mid-loop budget exhaustion (the sandbox guarantee for
//! writer-side plug-ins), and dtype mismatches on `get_f64`.

use codelet::{Codelet, RunError};
use evpath::{FieldValue, Record};

#[test]
fn empty_and_inverted_ranges_run_zero_iterations() {
    // `a..b` with a >= b must execute the body zero times, not wrap or
    // trap — the pushdown filter hits this on every empty chunk.
    let c = Codelet::compile(
        r#"
        let v = get_f64("v");
        let n = len(v);
        let out = array();
        for i in 0..n {
            push(out, v[i]);
        }
        let hits = 0;
        for i in 5..5 { let hits = hits + 1; }
        for i in 7..3 { let hits = hits + 100; }
        emit_f64("v", out);
        emit_int("iters", hits);
        "#,
    )
    .expect("compile");
    let input = Record::new().with("v", FieldValue::F64Array(Vec::new()));
    let out = c.run(&input).expect("run");
    assert_eq!(out.get_f64_array("v"), Some(&[][..]), "empty chunk passes through empty");
    assert_eq!(out.get_i64("iters"), Some(0), "degenerate ranges must not iterate");
}

#[test]
fn budget_exhaustion_mid_loop_is_a_clean_error() {
    let c = Codelet::compile(
        r#"
        let v = get_f64("v");
        let n = len(v);
        let acc = 0.0;
        for i in 0..n {
            let acc = acc + v[i];
        }
        emit_float("acc", acc);
        "#,
    )
    .expect("compile");
    let input = Record::new().with("v", FieldValue::F64Array(vec![1.0; 10_000]));
    // Generous budget: completes.
    c.run_budgeted(&input, 10_000_000).expect("generous budget");
    // Starved budget: must stop mid-loop with the typed error, never
    // partial output or a hang.
    let err = c.run_budgeted(&input, 500).expect_err("budget must trip");
    assert_eq!(err, RunError::BudgetExceeded);
    // The boundary is deterministic: the same starved budget fails the
    // same way every time (replay safety for fault batteries).
    assert_eq!(c.run_budgeted(&input, 500).expect_err("same"), RunError::BudgetExceeded);
}

#[test]
fn get_f64_on_non_f64_fields_reports_the_field() {
    let c = Codelet::compile(
        r#"
        let v = get_f64("v");
        emit_int("n", len(v));
        "#,
    )
    .expect("compile");
    // Wrong dtype: u64 array under the requested name.
    let wrong = Record::new().with("v", FieldValue::U64Array(vec![1, 2, 3]));
    assert_eq!(c.run(&wrong).expect_err("dtype mismatch"), RunError::MissingField("v".into()));
    // Scalar under the requested name.
    let scalar = Record::new().with("v", FieldValue::F64(1.5));
    assert_eq!(c.run(&scalar).expect_err("scalar mismatch"), RunError::MissingField("v".into()));
    // Absent entirely.
    let empty = Record::new();
    assert_eq!(c.run(&empty).expect_err("absent"), RunError::MissingField("v".into()));
}
