//! Zero-copy guarantees for the packed wire format.
//!
//! The acceptance bar from the data-plane redesign: decoding a packed
//! array of >= 64 KiB out of a shared receive buffer must not allocate
//! (or copy into) a payload-sized buffer — the decoded field is a view
//! into the receive buffer itself. A counting global allocator watches
//! for any allocation at or above the payload size during
//! `Record::decode_shared`, and an `Arc` identity check proves the view
//! aliases the receive buffer rather than a private copy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use evpath::{FieldValue, Record};

/// Wraps the system allocator, counting allocations >= a size threshold
/// while armed. The threshold is set to the payload size under test, so
/// any hidden payload-sized `Vec` shows up as a nonzero count.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static THRESHOLD: AtomicUsize = AtomicUsize::new(usize::MAX);
static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) && layout.size() >= THRESHOLD.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) && new_size >= THRESHOLD.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with the allocation counter armed at `threshold` bytes and
/// return how many allocations at or above it happened inside.
fn count_large_allocs<R>(threshold: usize, f: impl FnOnce() -> R) -> (usize, R) {
    THRESHOLD.store(threshold, Ordering::SeqCst);
    LARGE_ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (LARGE_ALLOCS.load(Ordering::SeqCst), out)
}

#[test]
fn shared_decode_of_large_packed_array_does_not_copy_payload() {
    // 64 KiB of f64 payload (8192 elements * 8 bytes), well above the
    // ZERO_COPY_MIN_BYTES threshold.
    let elems = 8192usize;
    let payload_bytes = elems * 8;
    let data: Vec<f64> = (0..elems).map(|i| i as f64 * 0.5).collect();
    let rec = Record::new()
        .with("step", FieldValue::U64(7))
        .with("field", FieldValue::F64Array(data.clone()));

    // Wire bytes arrive in a shared receive buffer (as off recv_record).
    let wire = Arc::new(rec.encode());

    let (large, decoded) =
        count_large_allocs(payload_bytes, || Record::decode_shared(&wire).expect("decode"));
    assert_eq!(
        large, 0,
        "decode_shared of a {payload_bytes}-byte packed array allocated \
         {large} payload-sized buffer(s); expected a zero-copy view"
    );

    // The decoded field must be a view aliasing the receive buffer, not
    // a private copy of the payload.
    let packed = decoded.get_packed("field").expect("packed view");
    assert!(
        Arc::ptr_eq(packed.backing_buf(), &wire),
        "packed view does not alias the shared receive buffer"
    );
    assert_eq!(packed.byte_len(), payload_bytes);

    // Materializing still yields the original values bit-exactly.
    assert_eq!(packed.to_f64_vec(), data);
    assert_eq!(decoded.get_u64("step"), Some(7));
}

#[test]
fn small_arrays_decode_owned_even_from_shared_buffers() {
    // Below ZERO_COPY_MIN_BYTES the decoder materializes owned vectors,
    // so short-lived records don't pin large receive buffers alive.
    let rec = Record::new().with("v", FieldValue::F64Array(vec![1.0, 2.0, 3.0]));
    let wire = Arc::new(rec.encode());
    let decoded = Record::decode_shared(&wire).expect("decode");
    assert!(decoded.get_packed("v").is_none(), "small array should decode owned");
    assert_eq!(decoded.get_f64_array("v"), Some(&[1.0, 2.0, 3.0][..]));
}

#[test]
fn view_outlives_caller_arc_via_refcount() {
    // Lifetime rule: the view holds its own strong reference, so the
    // caller can drop the receive buffer handle and the view stays valid.
    let elems = 8192usize;
    let data: Vec<u64> = (0..elems as u64).collect();
    let rec = Record::new().with("u", FieldValue::U64Array(data.clone()));
    let wire = Arc::new(rec.encode());
    let decoded = Record::decode_shared(&wire).expect("decode");
    drop(wire);
    let packed = decoded.get_packed("u").expect("packed view");
    assert_eq!(packed.to_u64_vec(), data);
}
