//! Fault-injection integration tests: a deterministic fault plan on the
//! stream's data channels must be healed by the sequence-framing layer
//! (duplicates discarded, reorders re-sorted) and absorbed by the
//! timeout-and-retry scheme (delays), with the analytics still reading
//! bit-identical arrays.

mod common;

use std::sync::Arc;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::{block_1d, couple};
use evpath::{FaultPlan, FaultSpec};
use flexio::{CachingLevel, StreamHints};

#[test]
fn duplicated_and_reordered_data_is_healed_end_to_end() {
    // The Fig. 3 MxN pattern under a hostile transport: 40% of data
    // messages are duplicated and 40% held back and swapped. CACHING_ALL +
    // async writes keep the writer free-running, so a chunk held back by a
    // reorder fault is always flushed by the next step's send (or the
    // writer's close) rather than deadlocking the handshake.
    const STEPS: u64 = 3;
    let mut plan = FaultPlan::new(21);
    plan.set(
        "data",
        FaultSpec { dup_per_mille: 400, reorder_per_mille: 400, ..Default::default() },
    );
    let plan = Arc::new(plan);
    let hints = StreamHints {
        caching: CachingLevel::CachingAll,
        faults: Some(Arc::clone(&plan)),
        ..StreamHints::default()
    };

    let (links, reader_steps) = couple(
        3,
        2,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 12));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        |mut r, rank| {
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            r.subscribe("field", Selection::GlobalBox(my_box.clone()));
            let mut steps = 0;
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("field", &Selection::GlobalBox(my_box.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        for (i, &x) in b.data.as_f64().iter().enumerate() {
                            let g = rank as u64 * 6 + i as u64;
                            assert_eq!(x, (step * 100 + g) as f64, "step {step} idx {g}");
                        }
                        steps += 1;
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            steps
        },
    );

    // Every reader saw every step with correct data despite the faults.
    assert_eq!(reader_steps, vec![STEPS as usize, STEPS as usize]);

    // The schedule actually fired (seed 21 injects both fault kinds over
    // the 12 data messages of this run — deterministic, not a probability).
    let (_, duplicated, reordered, ..) = plan.counters().snapshot();
    assert!(duplicated > 0, "plan injected no duplicates: {duplicated}");
    assert!(reordered > 0, "plan injected no reorders: {reordered}");

    // ... and the healing layer observed and repaired it. Exact equality
    // is too strong end-to-end: a duplicate (or Drop-flushed held message)
    // of a channel's *final* chunk can land after the reader took its last
    // step and stopped polling that channel, so the healed counts are
    // bounded by the injected counts, not equal to them.
    let (_, dup_msgs, reorder_healed, drops, eos_synth, evictions, _) =
        links[0].counters.resilience_snapshot();
    assert!(dup_msgs > 0 && dup_msgs <= duplicated, "{dup_msgs} of {duplicated} dups discarded");
    assert!(
        reorder_healed > 0 && reorder_healed <= reordered,
        "{reorder_healed} of {reordered} held messages re-sorted on arrival"
    );
    assert_eq!(drops, 0, "nothing was dropped, nothing may be written off");
    assert_eq!((eos_synth, evictions), (0, 0), "no crash machinery involved");
}

#[test]
fn delayed_data_is_absorbed_by_retry_with_backoff() {
    // Every data send stalls 300 ms; the reader's receive budget is
    // 30 ms × (1+2+4+8+8) ≈ 690 ms, so each step is saved by the retry
    // loop — observable in the retries counter — and no data is lost.
    const STEPS: u64 = 2;
    let mut plan = FaultPlan::new(5);
    plan.set(
        "data",
        FaultSpec {
            delay_per_mille: 1000,
            delay: std::time::Duration::from_millis(300),
            ..Default::default()
        },
    );
    let plan = Arc::new(plan);
    let hints = StreamHints {
        recv_timeout: std::time::Duration::from_millis(30),
        retries: 4,
        faults: Some(Arc::clone(&plan)),
        ..StreamHints::default()
    };

    let (links, sums) = couple(
        1,
        1,
        hints,
        |mut w, _| {
            for step in 0..STEPS {
                w.begin_step(step);
                w.write("v", block_1d(0, vec![step as f64; 4], 4));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        |mut r, _| {
            r.subscribe("v", Selection::GlobalBox(BoxSel::new(vec![0], vec![4])));
            let mut sums = Vec::new();
            while let StepStatus::Step(step) = r.begin_step() {
                let v = r.read("v", &Selection::GlobalBox(BoxSel::new(vec![0], vec![4]))).unwrap();
                let VarValue::Block(b) = v else { panic!() };
                assert_eq!(b.data.as_f64(), &[step as f64; 4]);
                sums.push(b.data.as_f64().iter().sum::<f64>());
                r.end_step();
            }
            sums.len()
        },
    );

    assert_eq!(sums, vec![STEPS as usize]);
    let delayed = plan.counters().snapshot().3;
    assert_eq!(delayed, STEPS, "every data message must have been delayed");
    let (retries, ..) = links[0].counters.resilience_snapshot();
    assert!(retries >= 2, "300 ms stalls against a 30 ms timeout must retry: {retries}");
}
