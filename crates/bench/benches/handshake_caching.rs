//! **MICRO-CACHING** — end-to-end step rate of the stream protocol under
//! the three handshake caching levels (paper §II.C.2). `CACHING_ALL`
//! should push the most steps per second; `NO_CACHING` pays the full
//! gather/exchange/broadcast every step.

use std::thread;

use adios::{
    ArrayData, BoxSel, LocalBlock, ReadEngine, Selection, StepStatus, VarValue, WriteEngine,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexio::{CachingLevel, FlexIo, StreamHints};
use machine::{laptop, CoreLocation};

const WRITERS: usize = 3;
const STEPS: u64 = 40;

fn run_steps(level: CachingLevel) {
    let io = FlexIo::single_node(laptop());
    let hints = StreamHints { caching: level, ..StreamHints::default() };
    let io_w = io.clone();
    let io_r = io.clone();
    let hints_r = hints.clone();
    let wt = thread::spawn(move || {
        rankrt::launch(WRITERS, move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> =
                (0..WRITERS).map(|r| laptop().node.location_of(r)).collect();
            let mut w = io_w
                .open_writer("bench", rank, WRITERS, roster[rank], roster, hints.clone())
                .unwrap();
            for step in 0..STEPS {
                w.begin_step(step);
                w.write(
                    "v",
                    VarValue::Block(
                        LocalBlock {
                            global_shape: vec![WRITERS as u64 * 64],
                            offset: vec![rank as u64 * 64],
                            count: vec![64],
                            data: ArrayData::F64(vec![step as f64; 64]),
                        }
                        .validated(),
                    ),
                );
                w.end_step();
            }
            w.close();
        })
    });
    let rt = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = laptop().node.location_of(15);
            let mut r = io_r.open_reader("bench", 0, 1, core, vec![core], hints_r.clone()).unwrap();
            r.subscribe("v", Selection::GlobalBox(BoxSel::whole(&[WRITERS as u64 * 64])));
            while let StepStatus::Step(_) = r.begin_step() {
                r.end_step();
            }
        })
    });
    wt.join().unwrap();
    rt.join().unwrap();
}

fn bench_caching_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("handshake_caching");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STEPS));
    for (label, level) in [
        ("NO_CACHING", CachingLevel::NoCaching),
        ("CACHING_LOCAL", CachingLevel::CachingLocal),
        ("CACHING_ALL", CachingLevel::CachingAll),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &level, |b, &level| {
            b.iter(|| run_steps(level));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_caching_levels);
criterion_main!(benches);
