//! Deterministic transport fault injection.
//!
//! FlexIO's resiliency story (paper §II.H) is "simple timeout-and-retry
//! schemes to cope with errors and failures during data movement". That
//! only earns its keep if the retry/degradation branches are actually
//! exercised, so this module provides a **seedable, deterministic schedule
//! of transport faults** — message drop, duplication, reordering, delay,
//! and endpoint crashes — installed as a wrapping layer around any
//! [`EvSender`]/[`EvReceiver`] pair.
//!
//! Determinism: each wrapped channel draws its fault decisions from a
//! SplitMix64 stream seeded with `plan_seed ^ hash(channel_label)`. The
//! decisions therefore depend only on the plan seed, the channel label and
//! the per-channel message ordinal — never on thread scheduling or wall
//! time — so the same seed replays the same fault sequence, and tests can
//! assert exact counter values across runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::transport::{BoxedReceiver, BoxedSender, EvReceiver, EvSender, RecvPoll};

/// Fault rates and crash points for one channel (or the plan default).
/// Rates are per-mille (0–1000) per message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Per-mille chance a sent message silently vanishes.
    pub drop_per_mille: u16,
    /// Per-mille chance a sent message is delivered twice.
    pub dup_per_mille: u16,
    /// Per-mille chance a sent message is held back and swapped with the
    /// next one (pairwise reorder).
    pub reorder_per_mille: u16,
    /// Per-mille chance a send stalls for [`FaultSpec::delay`] first.
    pub delay_per_mille: u16,
    /// Stall length for delay faults.
    pub delay: Duration,
    /// After this many successful sends the sender "crashes": every later
    /// send is silently discarded, as if the process died mid-protocol.
    pub crash_sender_after: Option<u64>,
    /// After this many received messages the receiver goes deaf: later
    /// messages are consumed and discarded, never delivered upward.
    pub crash_receiver_after: Option<u64>,
    /// Synthetic stall consumed from a directory lookup's timeout budget
    /// (directory servers are not transports, so this is interpreted by
    /// the layer doing the lookup rather than by the channel wrappers).
    pub stall: Option<Duration>,
}

impl FaultSpec {
    fn is_noop(&self) -> bool {
        self == &FaultSpec::default()
    }
}

/// Counters of faults actually injected; shared by every channel of one
/// plan so tests can assert the schedule fired.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Messages silently dropped by sender wrappers.
    pub dropped: AtomicU64,
    /// Messages delivered twice.
    pub duplicated: AtomicU64,
    /// Message pairs delivered swapped.
    pub reordered: AtomicU64,
    /// Sends that stalled for `delay` first.
    pub delayed: AtomicU64,
    /// Messages discarded because their sender had crashed.
    pub crashed_sends: AtomicU64,
    /// Messages discarded because their receiver had gone deaf.
    pub deaf_recvs: AtomicU64,
    /// Directory lookups that were stalled.
    pub stalls: AtomicU64,
}

impl FaultCounters {
    /// Snapshot as plain numbers `(dropped, duplicated, reordered, delayed,
    /// crashed_sends, deaf_recvs, stalls)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.dropped.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.reordered.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
            self.crashed_sends.load(Ordering::Relaxed),
            self.deaf_recvs.load(Ordering::Relaxed),
            self.stalls.load(Ordering::Relaxed),
        )
    }
}

/// A deterministic schedule of transport faults: a seed, a default
/// [`FaultSpec`], and per-label overrides (longest-prefix match, so
/// `"data"` targets every `data:w->r` channel while `"data:0->1"` targets
/// one). Install with [`FaultPlan::wrap_sender`]/[`FaultPlan::wrap_receiver`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    default_spec: FaultSpec,
    by_label: HashMap<String, FaultSpec>,
    counters: FaultCounters,
}

impl FaultPlan {
    /// Empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_spec: FaultSpec::default(),
            by_label: HashMap::new(),
            counters: FaultCounters::default(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the spec applied to channels with no more specific override.
    pub fn set_default(&mut self, spec: FaultSpec) -> &mut Self {
        self.default_spec = spec;
        self
    }

    /// Set the spec for channels whose label starts with `label_prefix`.
    pub fn set(&mut self, label_prefix: &str, spec: FaultSpec) -> &mut Self {
        self.by_label.insert(label_prefix.to_string(), spec);
        self
    }

    /// Injected-fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Resolve the spec for a channel label: the longest configured prefix
    /// of `label` wins, falling back to the default spec.
    pub fn spec_for(&self, label: &str) -> &FaultSpec {
        self.by_label
            .iter()
            .filter(|(prefix, _)| label.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, spec)| spec)
            .unwrap_or(&self.default_spec)
    }

    /// Record a directory-lookup stall (interpreted by the lookup layer).
    pub fn note_stall(&self) {
        self.counters.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Wrap the sending half of channel `label`. Channels whose resolved
    /// spec injects nothing are returned unwrapped (zero overhead).
    pub fn wrap_sender(self: &Arc<Self>, label: &str, inner: BoxedSender) -> BoxedSender {
        let spec = self.spec_for(label).clone();
        if spec.is_noop() {
            return inner;
        }
        Box::new(FaultySender {
            inner,
            spec,
            rng: SplitMix64::new(self.seed ^ fnv1a(label)),
            plan: Arc::clone(self),
            sent: 0,
            held: None,
            crashed: false,
        })
    }

    /// Wrap the receiving half of channel `label` (only the receiver-crash
    /// fault acts on this side).
    pub fn wrap_receiver(self: &Arc<Self>, label: &str, inner: BoxedReceiver) -> BoxedReceiver {
        let spec = self.spec_for(label).clone();
        if spec.crash_receiver_after.is_none() {
            return inner;
        }
        Box::new(FaultyReceiver { inner, spec, plan: Arc::clone(self), received: 0 })
    }
}

/// Stable FNV-1a hash for label → per-channel seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Per-mille roll. Always consumes exactly one draw so the decision
    /// stream stays aligned across fault types.
    fn roll(&mut self, per_mille: u16) -> bool {
        self.next_u64() % 1000 < per_mille as u64
    }
}

struct FaultySender {
    inner: BoxedSender,
    spec: FaultSpec,
    rng: SplitMix64,
    plan: Arc<FaultPlan>,
    sent: u64,
    /// Message held back by a reorder fault, delivered after its successor.
    held: Option<Vec<u8>>,
    crashed: bool,
}

impl EvSender for FaultySender {
    fn send(&mut self, payload: &[u8]) {
        let c = &self.plan.counters;
        if let Some(n) = self.spec.crash_sender_after {
            if self.sent >= n {
                self.crashed = true;
            }
        }
        if self.crashed {
            c.crashed_sends.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.sent += 1;
        // One roll per fault type per message, in fixed order, so the
        // decision sequence is a pure function of (seed, label, ordinal).
        let delay = self.rng.roll(self.spec.delay_per_mille);
        let drop = self.rng.roll(self.spec.drop_per_mille);
        let dup = self.rng.roll(self.spec.dup_per_mille);
        let reorder = self.rng.roll(self.spec.reorder_per_mille);
        if delay {
            c.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.spec.delay);
        }
        if drop {
            c.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if reorder && self.held.is_none() {
            c.reordered.fetch_add(1, Ordering::Relaxed);
            self.held = Some(payload.to_vec());
            return;
        }
        self.inner.send(payload);
        if let Some(held) = self.held.take() {
            // The held message goes out *after* its successor: swapped.
            self.inner.send(&held);
        }
        if dup {
            c.duplicated.fetch_add(1, Ordering::Relaxed);
            self.inner.send(payload);
        }
    }

    fn transport_name(&self) -> &'static str {
        self.inner.transport_name()
    }
}

impl Drop for FaultySender {
    fn drop(&mut self) {
        // A reorder hold must not turn into a drop at end of stream.
        if let Some(held) = self.held.take() {
            if !self.crashed {
                self.inner.send(&held);
            }
        }
    }
}

struct FaultyReceiver {
    inner: BoxedReceiver,
    spec: FaultSpec,
    plan: Arc<FaultPlan>,
    received: u64,
}

impl FaultyReceiver {
    fn deaf(&self) -> bool {
        matches!(self.spec.crash_receiver_after, Some(n) if self.received >= n)
    }
}

impl EvReceiver for FaultyReceiver {
    fn recv(&mut self) -> Vec<u8> {
        loop {
            if let Some(msg) = self.try_recv() {
                return msg;
            }
            // A crashed receiver never returns; its peer's timeout machinery
            // is the intended observer.
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn poll_recv(&mut self) -> RecvPoll {
        if self.deaf() {
            // Consume and discard so the transport queue cannot back up
            // behind a corpse. A dead endpoint reports *silence*, never
            // `Closed` — its peer's timeout machinery is the intended
            // observer, exactly as with a real crashed process.
            if self.inner.try_recv().is_some() {
                self.plan.counters.deaf_recvs.fetch_add(1, Ordering::Relaxed);
            }
            return RecvPoll::Empty;
        }
        match self.inner.poll_recv() {
            RecvPoll::Msg(msg) => {
                self.received += 1;
                RecvPoll::Msg(msg)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc_pair;

    fn drain(rx: &mut BoxedReceiver) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(m) = rx.try_recv() {
            out.push(m);
        }
        out
    }

    #[test]
    fn noop_spec_passes_through_unwrapped() {
        let plan = Arc::new(FaultPlan::new(1));
        let (tx, rx) = inproc_pair();
        let mut tx = plan.wrap_sender("data:0->0", tx);
        let mut rx = plan.wrap_receiver("data:0->0", rx);
        tx.send(b"x");
        assert_eq!(rx.recv(), b"x");
        assert_eq!(plan.counters().snapshot(), (0, 0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn label_prefix_resolution_prefers_longest() {
        let mut plan = FaultPlan::new(7);
        plan.set_default(FaultSpec { drop_per_mille: 1, ..Default::default() });
        plan.set("data", FaultSpec { drop_per_mille: 2, ..Default::default() });
        plan.set("data:0->1", FaultSpec { drop_per_mille: 3, ..Default::default() });
        assert_eq!(plan.spec_for("ack:1->0").drop_per_mille, 1);
        assert_eq!(plan.spec_for("data:1->0").drop_per_mille, 2);
        assert_eq!(plan.spec_for("data:0->1").drop_per_mille, 3);
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let survivors = |seed: u64| {
            let mut p = FaultPlan::new(seed);
            p.set_default(FaultSpec { drop_per_mille: 300, ..Default::default() });
            let plan = Arc::new(p);
            let (tx, mut rx) = inproc_pair();
            let mut tx = plan.wrap_sender("data:0->0", tx);
            for i in 0u64..200 {
                tx.send(&i.to_le_bytes());
            }
            (drain(&mut rx), plan.counters().snapshot())
        };
        let (a1, c1) = survivors(42);
        let (a2, c2) = survivors(42);
        let (b, _) = survivors(43);
        assert_eq!(a1, a2, "same seed must drop the same messages");
        assert_eq!(c1, c2);
        assert_ne!(a1, b, "different seed should drop differently");
        assert!(c1.0 > 0, "a 30% rate over 200 messages must drop some");
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut p = FaultPlan::new(5);
        p.set_default(FaultSpec { dup_per_mille: 1000, ..Default::default() });
        let plan = Arc::new(p);
        let (tx, mut rx) = inproc_pair();
        let mut tx = plan.wrap_sender("ctrl", tx);
        tx.send(b"once");
        let got = drain(&mut rx);
        assert_eq!(got, vec![b"once".to_vec(), b"once".to_vec()]);
        assert_eq!(plan.counters().duplicated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reorder_swaps_adjacent_messages() {
        let mut p = FaultPlan::new(5);
        p.set_default(FaultSpec { reorder_per_mille: 1000, ..Default::default() });
        let plan = Arc::new(p);
        let (tx, mut rx) = inproc_pair();
        let mut tx = plan.wrap_sender("ctrl", tx);
        tx.send(b"a");
        tx.send(b"b");
        tx.send(b"c");
        tx.send(b"d");
        drop(tx); // flush any trailing held message
        let got = drain(&mut rx);
        // Every message still arrives exactly once, just not in order.
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(sorted, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        assert_ne!(got[0], b"a".to_vec(), "first message must have been held back");
        assert!(plan.counters().reordered.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn sender_crash_discards_everything_after_n() {
        let mut p = FaultPlan::new(5);
        p.set_default(FaultSpec { crash_sender_after: Some(3), ..Default::default() });
        let plan = Arc::new(p);
        let (tx, mut rx) = inproc_pair();
        let mut tx = plan.wrap_sender("ctrl", tx);
        for i in 0u64..10 {
            tx.send(&i.to_le_bytes());
        }
        assert_eq!(drain(&mut rx).len(), 3);
        assert_eq!(plan.counters().crashed_sends.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn receiver_crash_goes_deaf_after_n() {
        let mut p = FaultPlan::new(5);
        p.set_default(FaultSpec { crash_receiver_after: Some(2), ..Default::default() });
        let plan = Arc::new(p);
        let (mut tx, rx) = inproc_pair();
        let mut rx = plan.wrap_receiver("data", rx);
        for i in 0u64..5 {
            tx.send(&i.to_le_bytes());
        }
        assert!(rx.try_recv().is_some());
        assert!(rx.try_recv().is_some());
        // Deaf from here: the remaining three messages are swallowed.
        assert!(rx.try_recv().is_none());
        assert!(rx.try_recv().is_none());
        assert!(rx.try_recv().is_none());
        assert!(rx.try_recv().is_none());
        assert_eq!(plan.counters().deaf_recvs.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn delay_stalls_but_delivers() {
        let mut p = FaultPlan::new(5);
        p.set_default(FaultSpec {
            delay_per_mille: 1000,
            delay: Duration::from_millis(5),
            ..Default::default()
        });
        let plan = Arc::new(p);
        let (tx, mut rx) = inproc_pair();
        let mut tx = plan.wrap_sender("ctrl", tx);
        let start = std::time::Instant::now();
        tx.send(b"slow");
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(rx.recv(), b"slow");
        assert_eq!(plan.counters().delayed.load(Ordering::Relaxed), 1);
    }
}
