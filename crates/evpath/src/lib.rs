//! `evpath` — the messaging layer of the FlexIO stack (paper Fig. 2).
//!
//! "FlexIO uses the EVPath messaging library to implement its data movement
//! protocols. EVPath provides point-to-point messaging and data marshaling
//! capabilities. Its modular architecture supports multiple messaging
//! transports, and we have added to it the shared memory transport and the
//! RDMA transport required by FlexIO." (§II.C)
//!
//! This crate reproduces those three capabilities:
//!
//! * [`ffs`] — self-describing binary marshaling in the spirit of FFS
//!   (EVPath's format system): every message carries a compact schema so a
//!   receiver can decode records it has never seen the layout of. Typed
//!   fields cover scalars, strings, numeric arrays and nested records.
//! * [`stones`] — EVPath's dataflow abstraction: *stones* are graph nodes
//!   events flow through. Terminal stones invoke handlers, filter stones
//!   drop events, split stones fan out, transform stones rewrite records,
//!   and bridge stones forward events into a transport.
//! * [`transport`] — the pluggable byte transports: in-process channels,
//!   the [`shm`] lock-free shared-memory channel (intra-node), and the
//!   [`netsim`] RDMA fabric (inter-node). FlexIO picks among them per the
//!   analytics placement.
//! * [`socket`] — real stream sockets (TCP and Unix-domain) behind the
//!   same contract, with length-prefixed framing, so couplings can cross
//!   an actual process boundary.

//! * [`fault`] — a deterministic, seedable fault-injection layer that wraps
//!   any transport pair with scheduled drops, duplicates, reorders, delays
//!   and endpoint crashes, so the retry/degradation branches of the layers
//!   above can be exercised reproducibly.

pub mod fault;
pub mod ffs;
pub mod socket;
pub mod stones;
pub mod transport;

pub use fault::{FaultCounters, FaultPlan, FaultSpec};
pub use ffs::{
    DecodeError, EncSegment, EncodedRecord, FieldValue, PackedArray, PackedDtype, Record,
    ZERO_COPY_MIN_BYTES,
};
pub use socket::{
    connect, connect_retry, decode_frame_header, encode_frame_header, read_frame, receiver_over,
    sender_over, socket_pair, write_frame, SockStream, SocketKind, SocketListener, SocketReceiver,
    SocketSender, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN,
};
pub use stones::{EvGraph, StoneId};
pub use transport::{
    inproc_pair, BoxedReceiver, BoxedSender, EvReceiver, EvSender, NetTransport, RecvPoll,
    ShmTransport,
};
