//! Helpers for moving numeric slices through byte-oriented messaging.
//!
//! All encodings are little-endian and alignment-independent (slices are
//! copied, never transmuted), so payloads are portable across the transport
//! layers regardless of buffer alignment.

/// Encode a slice of `f64`s as little-endian bytes.
pub fn f64s_as_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `f64`s. Panics if the length is not a
/// multiple of 8.
pub fn bytes_as_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len().is_multiple_of(8), "payload is not a whole number of f64s");
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Encode a slice of `u64`s as little-endian bytes.
pub fn u64s_as_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `u64`s. Panics if the length is not a
/// multiple of 8.
pub fn bytes_as_u64s(bytes: &[u8]) -> Vec<u64> {
    assert!(bytes.len().is_multiple_of(8), "payload is not a whole number of u64s");
    bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn f64_roundtrip(values in proptest::collection::vec(any::<f64>(), 0..64)) {
            let bytes = f64s_as_bytes(&values);
            let back = bytes_as_f64s(&bytes);
            prop_assert_eq!(values.len(), back.len());
            for (a, b) in values.iter().zip(&back) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn u64_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let bytes = u64s_as_bytes(&values);
            prop_assert_eq!(bytes_as_u64s(&bytes), values);
        }
    }
}
