//! Thread-scoped buffer-pool placement (paper §V applied to ourselves).
//!
//! The paper pins FlexIO's internal buffers in the NUMA domain local to
//! the core that runs the data movement ("allocating FlexIO's internal
//! buffers [...] in the local memory of the NUMA domain"). In this
//! reproduction the unit of execution is a reactor-fleet worker thread,
//! so placement is thread-scoped: at fleet startup each worker installs
//! its shard's NUMA-pinned [`BufferPool`] here, and every
//! [`crate::shm_channel`] created *on that thread* afterwards draws its
//! pooled (2-copy) buffers from it instead of allocating a private,
//! unpinned pool.
//!
//! Channels created on threads with no installed pool keep the old
//! behaviour (a fresh per-channel pool), so nothing outside the fleet
//! changes. The channel's two halves share whichever pool the *creating*
//! thread had installed — in a fleet that is the shard that claimed the
//! channel first, which is the core that polls it.

use std::cell::RefCell;

use crate::pool::BufferPool;

thread_local! {
    static CURRENT: RefCell<Option<BufferPool>> = const { RefCell::new(None) };
}

/// Install `pool` as this thread's allocation home. Subsequent
/// `shm_channel` calls on this thread use it for their pooled path.
/// Replaces any previously installed pool.
pub fn install_thread_pool(pool: BufferPool) {
    CURRENT.with(|c| *c.borrow_mut() = Some(pool));
}

/// Remove this thread's installed pool; later channels go back to
/// private per-channel pools.
pub fn clear_thread_pool() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A handle to this thread's installed pool, if any.
pub fn thread_pool() -> Option<BufferPool> {
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_take_and_clear() {
        assert!(thread_pool().is_none());
        install_thread_pool(BufferPool::new_pinned(1 << 20, 3));
        assert_eq!(thread_pool().expect("installed").numa_domain(), Some(3));
        clear_thread_pool();
        assert!(thread_pool().is_none());
    }

    #[test]
    fn installation_is_thread_scoped() {
        install_thread_pool(BufferPool::new_pinned(1 << 20, 1));
        let other = std::thread::spawn(|| thread_pool().is_none()).join().unwrap();
        assert!(other, "pool must not leak to other threads");
        clear_thread_pool();
    }
}
