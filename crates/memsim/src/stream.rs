//! Synthetic memory-access streams for the co-run interference model.
//!
//! Each workload is approximated by a mix of the two access archetypes that
//! dominate the paper's codes:
//!
//! * **Resident** — repeated accesses over a hot working set (GTS's field
//!   grid and per-particle state it scatters/gathers into);
//! * **Streaming** — a sequential sweep over a large region with no reuse
//!   (particle array output, the analytics' scan over received data).
//!
//! Streams are deterministic given a seed, so interference experiments are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of byte addresses.
#[derive(Debug, Clone)]
pub enum AccessPattern {
    /// Uniform random accesses within a hot working set of `set_bytes`
    /// starting at `base`. Models reused state.
    Resident {
        /// Base byte address of the region.
        base: u64,
        /// Size of the hot set in bytes.
        set_bytes: u64,
    },
    /// Sequential line-stride sweep over `region_bytes` from `base`,
    /// wrapping around. Models pure streaming with no temporal reuse
    /// within a cache lifetime.
    Streaming {
        /// Base byte address of the region.
        base: u64,
        /// Region length in bytes (working set of the sweep).
        region_bytes: u64,
        /// Access stride in bytes (typically the cache-line size).
        stride: u64,
    },
    /// Probabilistic mix: with probability `resident_fraction` the next
    /// access comes from the first pattern, else from the second.
    Mix {
        /// Pattern chosen with probability `resident_fraction`.
        resident: Box<AccessPattern>,
        /// Pattern chosen otherwise.
        streaming: Box<AccessPattern>,
        /// Probability of drawing from `resident`.
        resident_fraction: f64,
    },
}

/// Stateful iterator over a pattern's addresses.
pub struct AddressStream {
    pattern: AccessPattern,
    rng: StdRng,
    cursor: u64,
}

impl AccessPattern {
    /// Instantiate the stream with a deterministic seed.
    pub fn stream(self, seed: u64) -> AddressStream {
        AddressStream { pattern: self, rng: StdRng::seed_from_u64(seed), cursor: 0 }
    }
}

impl AddressStream {
    /// Produce the next byte address.
    pub fn next_addr(&mut self) -> u64 {
        Self::generate(&self.pattern, &mut self.rng, &mut self.cursor)
    }

    fn generate(pattern: &AccessPattern, rng: &mut StdRng, cursor: &mut u64) -> u64 {
        match pattern {
            AccessPattern::Resident { base, set_bytes } => base + rng.gen_range(0..*set_bytes),
            AccessPattern::Streaming { base, region_bytes, stride } => {
                let addr = base + (*cursor % region_bytes);
                *cursor += stride;
                addr
            }
            AccessPattern::Mix { resident, streaming, resident_fraction } => {
                if rng.gen_bool(*resident_fraction) {
                    Self::generate(resident, rng, cursor)
                } else {
                    Self::generate(streaming, rng, cursor)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_stays_in_bounds() {
        let mut s = AccessPattern::Resident { base: 0x10_0000, set_bytes: 4096 }.stream(1);
        for _ in 0..1000 {
            let a = s.next_addr();
            assert!((0x10_0000..0x10_1000).contains(&a));
        }
    }

    #[test]
    fn streaming_strides_and_wraps() {
        let mut s = AccessPattern::Streaming { base: 0, region_bytes: 256, stride: 64 }.stream(1);
        let addrs: Vec<u64> = (0..6).map(|_| s.next_addr()).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || AccessPattern::Mix {
            resident: Box::new(AccessPattern::Resident { base: 0, set_bytes: 1 << 20 }),
            streaming: Box::new(AccessPattern::Streaming {
                base: 1 << 30,
                region_bytes: 1 << 24,
                stride: 64,
            }),
            resident_fraction: 0.7,
        };
        let a: Vec<u64> = {
            let mut s = make().stream(42);
            (0..100).map(|_| s.next_addr()).collect()
        };
        let b: Vec<u64> = {
            let mut s = make().stream(42);
            (0..100).map(|_| s.next_addr()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mix_draws_from_both() {
        let mut s = AccessPattern::Mix {
            resident: Box::new(AccessPattern::Resident { base: 0, set_bytes: 64 }),
            streaming: Box::new(AccessPattern::Streaming {
                base: 1 << 30,
                region_bytes: 1 << 20,
                stride: 64,
            }),
            resident_fraction: 0.5,
        }
        .stream(7);
        let (mut low, mut high) = (0, 0);
        for _ in 0..1000 {
            if s.next_addr() < (1 << 30) {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 300 && high > 300, "low={low} high={high}");
    }
}
