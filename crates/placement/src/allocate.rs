//! Resource allocation: how many processes the analytics gets (§III.B.2).
//!
//! * **Synchronous** movement: "the analytics are scaled to match the data
//!   generation rate of the simulation. [...] matching the analytics data
//!   consumption rate with simulation's data generation rate leads to
//!   minimal pipeline stalls."
//! * **Asynchronous** movement: "the resource allocation step must ensure
//!   that the sum of data movement time and analytics computation time is
//!   no larger than the simulation's I/O interval. Data movement time is
//!   estimated as total data size divided by point-to-point RDMA transport
//!   bandwidth" — deliberately conservative (sequential movement), which
//!   over-provisions a little, as the paper's Fig. 7 idle time shows.

/// Strong-scaling model of the analytics: time to process one I/O
/// interval's full output on `n` processes is `serial_s + parallel_s / n`
/// (Amdahl form; fitted from profiling in the paper's methodology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticsScaling {
    /// Non-parallelizable seconds per interval.
    pub serial_s: f64,
    /// Perfectly-parallel seconds per interval (1-process work minus
    /// serial part).
    pub parallel_s: f64,
}

impl AnalyticsScaling {
    /// Analytics time on `n` processes.
    pub fn time_on(&self, n: usize) -> f64 {
        assert!(n >= 1);
        self.serial_s + self.parallel_s / n as f64
    }
}

/// Smallest analytics process count whose per-interval processing time
/// fits within the simulation's I/O interval (synchronous pipeline
/// matching). Returns `None` if even `max_procs` cannot keep up (the
/// analytics' serial fraction exceeds the interval) — the caller then
/// switches the analytics offline, the paper's §II.B escape hatch.
pub fn allocate_sync(
    scaling: &AnalyticsScaling,
    interval_s: f64,
    max_procs: usize,
) -> Option<usize> {
    assert!(interval_s > 0.0 && max_procs >= 1);
    if scaling.serial_s >= interval_s {
        return None;
    }
    // serial + parallel/n <= interval  =>  n >= parallel / (interval - serial)
    let needed = (scaling.parallel_s / (interval_s - scaling.serial_s)).ceil().max(1.0) as usize;
    (needed <= max_procs).then_some(needed)
}

/// Asynchronous variant: movement time (conservatively `total_bytes /
/// p2p_bw`, sequential through the interconnect) plus analytics time must
/// fit in the interval.
pub fn allocate_async(
    scaling: &AnalyticsScaling,
    total_bytes: f64,
    p2p_bw: f64,
    interval_s: f64,
    max_procs: usize,
) -> Option<usize> {
    assert!(p2p_bw > 0.0);
    let movement_s = total_bytes / p2p_bw;
    let budget = interval_s - movement_s;
    if budget <= 0.0 {
        return None;
    }
    allocate_sync(scaling, budget, max_procs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALING: AnalyticsScaling = AnalyticsScaling { serial_s: 0.1, parallel_s: 10.0 };

    #[test]
    fn sync_allocation_matches_rate() {
        // interval 1.1s: need parallel 10/(1.1-0.1)=10 procs.
        assert_eq!(allocate_sync(&SCALING, 1.1, 1024), Some(10));
        // Larger interval needs fewer processes.
        assert_eq!(allocate_sync(&SCALING, 10.1, 1024), Some(1));
    }

    #[test]
    fn allocation_is_sufficient_and_minimal() {
        let n = allocate_sync(&SCALING, 0.6, 1024).unwrap();
        assert!(SCALING.time_on(n) <= 0.6 + 1e-12);
        assert!(SCALING.time_on(n - 1) > 0.6, "n-1 should not suffice");
    }

    #[test]
    fn impossible_interval_forces_offline() {
        // Serial fraction alone exceeds the interval.
        assert_eq!(allocate_sync(&SCALING, 0.05, 1 << 20), None);
        // Or the machine is too small.
        assert_eq!(allocate_sync(&SCALING, 0.11, 4), None);
    }

    #[test]
    fn async_accounts_for_movement() {
        // 5 GB over 5 GB/s = 1 s of movement; interval 2 s leaves 1 s.
        let n_async = allocate_async(&SCALING, 5e9, 5e9, 2.0, 1024).unwrap();
        let n_sync = allocate_sync(&SCALING, 2.0, 1024).unwrap();
        assert!(n_async > n_sync, "movement time must shrink the compute budget");
    }

    #[test]
    fn async_movement_exceeding_interval_is_impossible() {
        assert_eq!(allocate_async(&SCALING, 10e9, 1e9, 2.0, 1024), None);
    }
}
