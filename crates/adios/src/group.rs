//! Process Groups: one rank's variables for one I/O timestep.

use evpath::{FieldValue, Record};

use crate::var::VarValue;

/// "During each I/O timestep, the variables written from each simulation
/// process are conceptually packed into a group, called Process Group, and
/// the analytics specifies the process groups it wants to read by
/// simulation processes' MPI ranks." (§II.B)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcessGroup {
    /// Writing rank.
    pub rank: usize,
    /// I/O timestep index.
    pub step: u64,
    /// Variables in write order.
    pub vars: Vec<(String, VarValue)>,
}

impl ProcessGroup {
    /// New empty group for `(rank, step)`.
    pub fn new(rank: usize, step: u64) -> ProcessGroup {
        ProcessGroup { rank, step, vars: Vec::new() }
    }

    /// Append a variable.
    pub fn push(&mut self, name: &str, value: VarValue) {
        self.vars.push((name.to_string(), value));
    }

    /// Find a variable by name.
    pub fn get(&self, name: &str) -> Option<&VarValue> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Total payload bytes across variables.
    pub fn payload_bytes(&self) -> u64 {
        self.vars.iter().map(|(_, v)| v.payload_bytes()).sum()
    }

    /// Encode to the wire/disk representation.
    pub fn to_record(&self) -> Record {
        let mut r = Record::new()
            .with("rank", FieldValue::U64(self.rank as u64))
            .with("step", FieldValue::U64(self.step))
            .with("nvars", FieldValue::U64(self.vars.len() as u64));
        for (i, (name, value)) in self.vars.iter().enumerate() {
            r.set(&format!("name.{i}"), FieldValue::Str(name.clone()));
            r.set(&format!("var.{i}"), FieldValue::Record(value.to_record()));
        }
        r
    }

    /// Decode; `None` on malformed input.
    pub fn from_record(r: &Record) -> Option<ProcessGroup> {
        let rank = r.get_u64("rank")? as usize;
        let step = r.get_u64("step")?;
        let nvars = r.get_u64("nvars")? as usize;
        let mut vars = Vec::with_capacity(nvars);
        for i in 0..nvars {
            let name = r.get_str(&format!("name.{i}"))?.to_string();
            let value = VarValue::from_record(r.get_record(&format!("var.{i}"))?)?;
            vars.push((name, value));
        }
        Some(ProcessGroup { rank, step, vars })
    }

    /// Encode straight to bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_record().encode()
    }

    /// Decode straight from bytes.
    pub fn decode(bytes: &[u8]) -> Option<ProcessGroup> {
        ProcessGroup::from_record(&Record::decode(bytes).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::{ArrayData, LocalBlock, ScalarValue};

    fn sample() -> ProcessGroup {
        let mut g = ProcessGroup::new(3, 7);
        g.push("nparticles", VarValue::Scalar(ScalarValue::U64(4)));
        g.push(
            "zion",
            VarValue::Block(
                LocalBlock {
                    global_shape: vec![8, 2],
                    offset: vec![6, 0],
                    count: vec![2, 2],
                    data: ArrayData::F64(vec![1.0, 2.0, 3.0, 4.0]),
                }
                .validated(),
            ),
        );
        g
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let decoded = ProcessGroup::decode(&g.encode()).unwrap();
        assert_eq!(g, decoded);
    }

    #[test]
    fn lookup_and_sizes() {
        let g = sample();
        assert!(matches!(g.get("nparticles"), Some(VarValue::Scalar(_))));
        assert!(g.get("absent").is_none());
        assert_eq!(g.payload_bytes(), 8 + 32);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(ProcessGroup::decode(b"junk").is_none());
        // A record missing fields.
        let r = Record::new().with("rank", FieldValue::U64(1));
        assert!(ProcessGroup::from_record(&r).is_none());
    }
}
