//! **Fig. 6** — "GTS Performance Tuning on Smoky and Titan": Total
//! Execution Time of the coupled GTS simulation + analytics across
//! placements and scales (weak scaling).
//!
//! Run: `cargo run --release -p bench --bin fig6 [--machine titan]`

use dessim::{gts_outcome, GtsScale, Placement};
use placement::PolicyKind;

fn main() {
    let machine = bench::machine_arg();
    let scales: Vec<usize> = if machine.name == "titan" {
        vec![512, 1024, 2048, 4096]
    } else {
        vec![128, 256, 512, 1024]
    };
    let placements = [
        Placement::Inline,
        Placement::HelperCore(PolicyKind::DataAware),
        Placement::HelperCore(PolicyKind::Holistic),
        Placement::HelperCore(PolicyKind::TopologyAware),
        Placement::Staging(PolicyKind::TopologyAware),
        Placement::LowerBound,
    ];
    let columns: Vec<String> = scales.iter().map(|c| c.to_string()).collect();
    let rows: Vec<(String, Vec<f64>)> = placements
        .iter()
        .map(|&p| {
            let values = scales
                .iter()
                .map(|&cores| {
                    let scale = GtsScale { machine: machine.clone(), sim_cores: cores, steps: 20 };
                    gts_outcome(&scale, p).total_s
                })
                .collect();
            (p.label(), values)
        })
        .collect();
    bench::print_table(
        &format!("Fig. 6 — GTS Total Execution Time (s) on {} vs GTS cores", machine.name),
        &columns,
        &rows,
        0,
    );

    // Paper's headline check: best placement within ~8% of the lower bound.
    let lb = rows.last().expect("lower bound row");
    let best = &rows[3]; // topo-aware helper core
    let worst_gap = best.1.iter().zip(&lb.1).map(|(b, l)| b / l - 1.0).fold(0.0f64, f64::max);
    println!(
        "\nbest placement is at most {:.1}% above the lower bound (paper: 8.4% Smoky / 7.9% Titan)",
        worst_gap * 100.0
    );
}
