//! Concurrency coverage for the lock-striped [`ShardedDirectory`]: mixed
//! register/lookup/unregister traffic across shards, condvar wakeups
//! under cross-thread registration (no lost wakeups), the per-shard
//! contention counters, and the redesigned `FlexIo::with_directory` API
//! running a real coupling over the sharded backend.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use common::{reader_core, reader_roster, writer_core, writer_roster};
use flexio::link::LinkState;
use flexio::{DirectoryError, DirectoryService, FlexIo, ShardedDirectory, StreamHints};
use machine::laptop;

fn dummy_link() -> Arc<LinkState> {
    LinkState::for_tests()
}

#[test]
fn concurrent_register_lookup_unregister_stress() {
    // 8 writer threads churn register→unregister cycles on their own
    // names while 8 reader threads hammer lookups on the same names.
    // Names hash onto different stripes, so this is exactly the traffic
    // the striping exists for; the test asserts nothing is lost, nothing
    // double-counted, and the final registry state is exact.
    const THREADS: usize = 8;
    const NAMES_PER_THREAD: usize = 16;
    const CYCLES: usize = 50;

    let dir = Arc::new(ShardedDirectory::new(8));
    let hits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let wdir = Arc::clone(&dir);
        handles.push(thread::spawn(move || {
            for c in 0..CYCLES {
                for n in 0..NAMES_PER_THREAD {
                    let name = format!("t{t}/s{n}");
                    wdir.register(&name, dummy_link()).unwrap();
                    // Re-registration while live must be refused.
                    assert!(matches!(
                        wdir.register(&name, dummy_link()),
                        Err(DirectoryError::AlreadyRegistered(_))
                    ));
                    if c + 1 < CYCLES {
                        assert!(wdir.unregister(&name), "own registration must be live");
                    }
                }
            }
        }));
        let rdir = Arc::clone(&dir);
        let hits = Arc::clone(&hits);
        handles.push(thread::spawn(move || {
            for _ in 0..CYCLES {
                for n in 0..NAMES_PER_THREAD {
                    let name = format!("t{t}/s{n}");
                    if rdir.try_lookup(&name).is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Exact bookkeeping: every cycle registered once, all but the last
    // unregistered; lookup_count equals the successful try_lookups.
    let total = (THREADS * NAMES_PER_THREAD * CYCLES) as u64;
    assert_eq!(dir.registration_count(), total);
    let unregisters: u64 = dir.shard_snapshots().iter().map(|s| s.2).sum();
    assert_eq!(unregisters, total - (THREADS * NAMES_PER_THREAD) as u64);
    assert_eq!(dir.lookup_count(), hits.load(Ordering::Relaxed));
    // The survivors of the last cycle are all still resolvable.
    for t in 0..THREADS {
        for n in 0..NAMES_PER_THREAD {
            assert!(dir.try_lookup(&format!("t{t}/s{n}")).is_some());
        }
    }
}

#[test]
fn parked_lookups_wake_on_registrations_from_other_threads() {
    // One blocked lookup per name, names spread over every stripe, all
    // registrations issued from other threads after the waiters park.
    // Every waiter must resolve — a lost condvar wakeup would hang one
    // of them until its (generous) timeout and fail the assert.
    const WAITERS: usize = 24;
    let dir = Arc::new(ShardedDirectory::new(8));
    let mut waiters = Vec::new();
    for n in 0..WAITERS {
        let dir = Arc::clone(&dir);
        waiters
            .push(thread::spawn(move || dir.lookup(&format!("late/{n}"), Duration::from_secs(10))));
    }
    thread::sleep(Duration::from_millis(30));
    let registrars: Vec<_> = (0..4)
        .map(|r| {
            let dir = Arc::clone(&dir);
            thread::spawn(move || {
                for n in (r..WAITERS).step_by(4) {
                    dir.register(&format!("late/{n}"), dummy_link()).unwrap();
                }
            })
        })
        .collect();
    for r in registrars {
        r.join().unwrap();
    }
    for w in waiters {
        assert!(w.join().unwrap().is_ok(), "a parked lookup missed its wakeup");
    }
    assert_eq!(dir.lookup_count(), WAITERS as u64);
}

#[test]
fn single_stripe_contention_is_counted() {
    // All traffic forced onto one stripe: the contended counter must
    // eventually observe try_lock failures. Rounds are repeated until it
    // does so the test asserts the mechanism, not a timing coincidence.
    let dir = Arc::new(ShardedDirectory::new(1));
    for round in 0..50 {
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let dir = Arc::clone(&dir);
                thread::spawn(move || {
                    for i in 0..500 {
                        let name = format!("r{round}/t{t}/{i}");
                        dir.register(&name, dummy_link()).unwrap();
                        dir.try_lookup(&name);
                        dir.unregister(&name);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        if dir.shard_snapshots()[0].3 > 0 {
            return;
        }
    }
    panic!("8 threads on one stripe never contended its lock");
}

#[test]
fn flexio_coupling_runs_over_the_sharded_backend() {
    // The redesigned connection-management API end to end: FlexIo takes
    // any DirectoryService trait object, and a writer/reader coupling
    // discovers itself through the sharded backend exactly as it did
    // through the single-map one.
    let io = FlexIo::new(laptop(), 4).with_directory(Arc::new(ShardedDirectory::new(8)));
    let io_r = io.clone();
    let rt = thread::spawn(move || {
        let hints = StreamHints { recv_timeout: Duration::from_secs(2), ..StreamHints::default() };
        io_r.open_reader("sharded", 0, 1, reader_core(0), reader_roster(1), hints)
    });
    thread::sleep(Duration::from_millis(30));
    let _w = io
        .open_writer("sharded", 0, 1, writer_core(0), writer_roster(1), StreamHints::default())
        .expect("writer registers through the sharded backend");
    assert!(rt.join().unwrap().is_ok(), "reader lookup resolves through the sharded backend");
    assert_eq!(io.directory().registration_count(), 1);
    assert_eq!(io.directory().lookup_count(), 1);
}
