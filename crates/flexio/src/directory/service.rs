//! The replicated directory service: cluster assembly, the per-node
//! gossip/serve loop (a reactor task), and the failover-capable client
//! handle.
//!
//! The serve loop is deliberately a plain `Future`: a staging node spawns
//! one [`DirectoryCluster::serve_task`] per local directory node onto the
//! same single-threaded `flexio_reactor::Reactor` that already drives its
//! stream couplings, so the whole control plane shares one core. For
//! deployments without their own reactor, [`DirectoryCluster::spawn_driver`]
//! runs the loops on a private reactor thread that lives exactly as long
//! as the returned handle.

use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use evpath::{inproc_pair, FaultPlan};
use parking_lot::Mutex;

use crate::link::LinkState;

use super::gossip::{ContactTable, DirectoryNode};
use super::{DirectoryError, DirectoryService};

/// A set of gossip-replicated directory nodes wired into a full mesh.
/// Cheap to clone; all clones share the same nodes.
#[derive(Clone)]
pub struct DirectoryCluster {
    nodes: Vec<Arc<DirectoryNode>>,
    interval: Duration,
    shutdown: Arc<AtomicBool>,
}

impl DirectoryCluster {
    /// Build `node_count` nodes, each with a `shards`-striped store,
    /// gossiping every `interval`. With a fault plan installed, every
    /// inter-node channel `gossip:<from>-><to>` is wrapped (so frames
    /// can be dropped/delayed deterministically) and `dirnode:<id>`
    /// specs with `crash_sender_after = Some(r)` kill node `id` after
    /// `r` gossip rounds.
    pub fn new(
        node_count: usize,
        shards: usize,
        interval: Duration,
        faults: Option<Arc<FaultPlan>>,
    ) -> DirectoryCluster {
        let node_count = node_count.max(1);
        let contacts = Arc::new(ContactTable::default());
        let nodes: Vec<Arc<DirectoryNode>> = (0..node_count as u64)
            .map(|id| {
                Arc::new(DirectoryNode::new(id, shards, Arc::clone(&contacts), faults.clone()))
            })
            .collect();
        // Full mesh: one directed channel per ordered pair.
        for a in 0..node_count {
            for b in 0..node_count {
                if a == b {
                    continue;
                }
                let (tx, rx) = inproc_pair();
                let tx = match &faults {
                    Some(plan) => plan.wrap_sender(&format!("gossip:{a}->{b}"), tx),
                    None => tx,
                };
                // Senders and receivers are registered pairwise so node
                // `a` ships to `b` on the same channel `b` drains.
                nodes[a].add_peer_sender(tx);
                nodes[b].add_peer_receiver(rx);
            }
        }
        DirectoryCluster { nodes, interval, shutdown: Arc::new(AtomicBool::new(false)) }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct access to node `i` (tests, counters).
    pub fn node(&self, i: usize) -> &Arc<DirectoryNode> {
        &self.nodes[i]
    }

    /// A client handle bound to node `i`: that node serves the handle's
    /// traffic until it dies, then the handle fails over round-robin.
    pub fn handle(&self, i: usize) -> ReplicatedDirectory {
        assert!(i < self.nodes.len());
        ReplicatedDirectory {
            nodes: self.nodes.clone(),
            preferred: Arc::new(AtomicUsize::new(i)),
            _driver: None,
        }
    }

    /// Stop every serve loop (idempotent).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// The gossip/serve loop of node `i` as a reactor task. Spawn it on
    /// any `flexio_reactor::Reactor` — e.g. the one already driving a
    /// staging node's stream couplings — and the node gossips every
    /// cluster interval until it dies or the cluster shuts down.
    pub fn serve_task(&self, i: usize) -> impl Future<Output = ()> + Send + 'static {
        let node = Arc::clone(&self.nodes[i]);
        let interval = self.interval;
        let shutdown = Arc::clone(&self.shutdown);
        async move {
            while !shutdown.load(Ordering::Acquire) && node.gossip_round() {
                flexio_reactor::sleep(interval).await;
            }
        }
    }

    /// Run every node's serve loop on a private reactor thread and
    /// return a handle bound to node 0. The thread (and the gossip) stop
    /// when the last clone of the returned handle drops.
    pub fn spawn_driver(&self) -> ReplicatedDirectory {
        let tasks: Vec<_> = (0..self.nodes.len()).map(|i| self.serve_task(i)).collect();
        let thread = std::thread::Builder::new()
            .name("flexio-directory".into())
            .spawn(move || {
                let mut reactor = flexio_reactor::Reactor::new();
                for task in tasks {
                    reactor.spawn(task);
                }
                reactor.run();
            })
            .expect("spawn directory driver thread");
        let mut handle = self.handle(0);
        handle._driver =
            Some(Arc::new(DriverGuard { cluster: self.clone(), thread: Mutex::new(Some(thread)) }));
        handle
    }
}

/// Keeps the driver thread alive while any handle clone exists; shuts the
/// cluster down and joins the thread when the last one drops.
struct DriverGuard {
    cluster: DirectoryCluster,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for DriverGuard {
    fn drop(&mut self) {
        self.cluster.shutdown();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// How long one failover-aware wait slice lasts: long enough to ride a
/// condvar instead of spinning, short enough that a node dying mid-wait
/// is noticed promptly.
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// Client handle onto a [`DirectoryCluster`], implementing
/// [`DirectoryService`] with eventual consistency: writes go to the
/// handle's bound node and reach the others via gossip; lookups are
/// served entirely by the bound node's local store. When the bound node
/// dies the handle fails over to the next live node; with every node
/// dead, operations return [`DirectoryError::Unavailable`].
#[derive(Clone)]
pub struct ReplicatedDirectory {
    nodes: Vec<Arc<DirectoryNode>>,
    preferred: Arc<AtomicUsize>,
    /// Present on handles created by [`DirectoryCluster::spawn_driver`].
    _driver: Option<Arc<DriverGuard>>,
}

impl ReplicatedDirectory {
    /// The node currently serving this handle, failing over (and
    /// remembering the failover) if the preferred node is dead.
    fn pick(&self) -> Result<Arc<DirectoryNode>, DirectoryError> {
        let start = self.preferred.load(Ordering::Relaxed) % self.nodes.len();
        for off in 0..self.nodes.len() {
            let i = (start + off) % self.nodes.len();
            if self.nodes[i].is_alive() {
                if off != 0 {
                    self.preferred.store(i, Ordering::Relaxed);
                }
                return Ok(Arc::clone(&self.nodes[i]));
            }
        }
        Err(DirectoryError::Unavailable("every directory node is down".to_string()))
    }

    /// Index of the node currently serving this handle.
    pub fn bound_node(&self) -> usize {
        self.preferred.load(Ordering::Relaxed) % self.nodes.len()
    }
}

impl DirectoryService for ReplicatedDirectory {
    fn register(&self, name: &str, contact: Arc<LinkState>) -> Result<(), DirectoryError> {
        loop {
            let node = self.pick()?;
            match node.register(name, Arc::clone(&contact)) {
                // The node died between pick and register: fail over.
                Err(DirectoryError::Unavailable(_)) => continue,
                other => return other,
            }
        }
    }

    fn lookup(&self, name: &str, timeout: Duration) -> Result<Arc<LinkState>, DirectoryError> {
        let deadline = Instant::now() + timeout;
        loop {
            let node = self.pick()?;
            let now = Instant::now();
            if now >= deadline {
                return Err(DirectoryError::LookupTimeout(name.to_string()));
            }
            // Wait in slices so a node death mid-wait re-picks instead of
            // blocking on a condvar nothing will ever signal again.
            let slice = WAIT_SLICE.min(deadline - now);
            if let Some(contact) = node.store.wait_lookup(name, slice) {
                return Ok(contact);
            }
        }
    }

    fn try_lookup(&self, name: &str) -> Option<Arc<LinkState>> {
        self.pick().ok()?.store.try_lookup(name)
    }

    fn unregister(&self, name: &str) -> bool {
        loop {
            match self.pick() {
                Err(_) => return false,
                Ok(node) => match node.unregister(name) {
                    Err(DirectoryError::Unavailable(_)) => continue,
                    Err(_) | Ok(false) => return false,
                    Ok(true) => return true,
                },
            }
        }
    }

    fn registration_count(&self) -> u64 {
        // Merges don't bump store counters, so summing across nodes
        // counts each client registration exactly once (at its origin).
        self.nodes.iter().map(|n| n.store.registration_count()).sum()
    }

    fn lookup_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.store.lookup_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_link() -> Arc<LinkState> {
        crate::link::LinkState::for_tests()
    }

    fn driven_cluster(nodes: usize) -> (DirectoryCluster, ReplicatedDirectory) {
        let cluster = DirectoryCluster::new(nodes, 4, Duration::from_millis(1), None);
        let handle = cluster.spawn_driver();
        (cluster, handle)
    }

    #[test]
    fn same_handle_sees_its_own_writes_immediately() {
        let (_cluster, dir) = driven_cluster(3);
        let link = dummy_link();
        dir.register("mine", Arc::clone(&link)).unwrap();
        let found = dir.try_lookup("mine").expect("own write visible without waiting");
        assert!(Arc::ptr_eq(&link, &found));
    }

    #[test]
    fn gossip_replicates_to_every_node() {
        let (cluster, _driver) = driven_cluster(3);
        let link = dummy_link();
        cluster.handle(1).register("shared", Arc::clone(&link)).unwrap();
        for i in 0..3 {
            let found = cluster.handle(i).lookup("shared", Duration::from_secs(2)).unwrap();
            assert!(Arc::ptr_eq(&link, &found), "node {i} must serve the entry");
        }
        assert!(cluster.node(1).gossip_counters().snapshot().1 > 0, "digests were sent");
    }

    #[test]
    fn dead_cluster_reports_unavailable() {
        let cluster = DirectoryCluster::new(2, 2, Duration::from_millis(1), None);
        cluster.node(0).kill();
        cluster.node(1).kill();
        let dir = cluster.handle(0);
        let err = dir.register("x", dummy_link()).unwrap_err();
        assert!(matches!(err, DirectoryError::Unavailable(_)), "{err:?}");
        let err = dir.lookup("x", Duration::from_millis(5)).err().expect("must fail");
        assert!(matches!(err, DirectoryError::Unavailable(_)), "{err:?}");
        assert!(dir.try_lookup("x").is_none());
        assert!(!dir.unregister("x"));
    }

    #[test]
    fn handle_fails_over_to_a_live_node() {
        let (cluster, _driver) = driven_cluster(3);
        let dir = cluster.handle(0);
        dir.register("before", dummy_link()).unwrap();
        // Let gossip replicate "before" off node 0, then kill it.
        cluster.handle(1).lookup("before", Duration::from_secs(2)).unwrap();
        cluster.node(0).kill();
        dir.register("after", dummy_link()).unwrap();
        assert_ne!(dir.bound_node(), 0, "handle must have failed over");
        dir.lookup("before", Duration::from_secs(2)).unwrap();
        dir.lookup("after", Duration::from_secs(2)).unwrap();
    }
}
