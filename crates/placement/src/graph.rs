//! The weighted communication graph over coupled processes.

use std::collections::HashMap;

/// What a vertex is: a simulation process or an analytics process. The
/// data-aware policy uses only edges *between* the two kinds; holistic
/// placement also weighs edges *within* each program (paper §III.B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcKind {
    /// Simulation rank.
    Simulation(usize),
    /// Analytics rank.
    Analytics(usize),
}

impl ProcKind {
    /// True if this is a simulation process.
    pub fn is_simulation(&self) -> bool {
        matches!(self, ProcKind::Simulation(_))
    }
}

/// Undirected weighted communication graph. Edge weight = bytes moved per
/// I/O interval between the two processes (the "communication matrix" of
/// §III.B.1).
#[derive(Debug, Clone, Default)]
pub struct CommGraph {
    kinds: Vec<ProcKind>,
    /// Adjacency: for each vertex, (neighbor, weight) pairs.
    adj: Vec<HashMap<usize, f64>>,
}

impl CommGraph {
    /// Empty graph.
    pub fn new() -> CommGraph {
        CommGraph::default()
    }

    /// Add a vertex; returns its index.
    pub fn add_vertex(&mut self, kind: ProcKind) -> usize {
        self.kinds.push(kind);
        self.adj.push(HashMap::new());
        self.kinds.len() - 1
    }

    /// Add (accumulate) an undirected edge weight.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(u != v, "no self edges");
        assert!(weight >= 0.0);
        *self.adj[u].entry(v).or_insert(0.0) += weight;
        *self.adj[v].entry(u).or_insert(0.0) += weight;
    }

    /// Vertex count.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Vertex kind.
    pub fn kind(&self, v: usize) -> ProcKind {
        self.kinds[v]
    }

    /// Neighbors of `v` with weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[v].iter().map(|(&n, &w)| (n, w))
    }

    /// Weight of edge `(u, v)`, 0 if absent.
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        self.adj[u].get(&v).copied().unwrap_or(0.0)
    }

    /// Sum of all edge weights (each edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |(&v, _)| v > u))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Weight crossing a 2-way partition (`side[v]` ∈ {false,true}).
    pub fn cut_weight(&self, side: &[bool]) -> f64 {
        assert_eq!(side.len(), self.len());
        let mut cut = 0.0;
        for u in 0..self.len() {
            for (v, w) in self.neighbors(u) {
                if v > u && side[u] != side[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Indices of simulation vertices.
    pub fn simulation_vertices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&v| self.kinds[v].is_simulation()).collect()
    }

    /// Indices of analytics vertices.
    pub fn analytics_vertices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&v| !self.kinds[v].is_simulation()).collect()
    }

    /// Build the canonical coupled-workload graph used throughout the
    /// experiments: `nsim` simulation ranks in a `rows × cols` logical 2-D
    /// grid exchanging `halo_bytes` with grid neighbours, `nana` analytics
    /// ranks, each simulation rank sending `output_bytes` to analytics
    /// rank `sim_rank % nana` (the process-group pattern), and analytics
    /// ranks exchanging `ana_internal_bytes` in a ring.
    pub fn coupled(
        nsim: usize,
        grid_cols: usize,
        halo_bytes: f64,
        nana: usize,
        output_bytes: f64,
        ana_internal_bytes: f64,
    ) -> CommGraph {
        assert!(nsim >= 1 && nana >= 1);
        assert!(grid_cols >= 1);
        let mut g = CommGraph::new();
        let sim: Vec<usize> = (0..nsim).map(|r| g.add_vertex(ProcKind::Simulation(r))).collect();
        let ana: Vec<usize> = (0..nana).map(|r| g.add_vertex(ProcKind::Analytics(r))).collect();
        // Simulation 2-D halo exchange.
        for r in 0..nsim {
            let (row, col) = (r / grid_cols, r % grid_cols);
            if col + 1 < grid_cols && r + 1 < nsim {
                g.add_edge(sim[r], sim[r + 1], halo_bytes);
            }
            let below = (row + 1) * grid_cols + col;
            if below < nsim {
                g.add_edge(sim[r], sim[below], halo_bytes);
            }
        }
        // Inter-program output movement.
        for r in 0..nsim {
            g.add_edge(sim[r], ana[r % nana], output_bytes);
        }
        // Analytics internal exchange (e.g. histogram merge) as a ring.
        if nana > 1 && ana_internal_bytes > 0.0 {
            for r in 0..nana {
                let next = (r + 1) % nana;
                if next != r {
                    g.add_edge(ana[r], ana[next], ana_internal_bytes);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_accumulate_symmetrically() {
        let mut g = CommGraph::new();
        let a = g.add_vertex(ProcKind::Simulation(0));
        let b = g.add_vertex(ProcKind::Analytics(0));
        g.add_edge(a, b, 10.0);
        g.add_edge(b, a, 5.0);
        assert_eq!(g.weight(a, b), 15.0);
        assert_eq!(g.weight(b, a), 15.0);
        assert_eq!(g.total_weight(), 15.0);
    }

    #[test]
    fn cut_weight_counts_crossing_edges_once() {
        let mut g = CommGraph::new();
        let v: Vec<usize> = (0..4).map(|i| g.add_vertex(ProcKind::Simulation(i))).collect();
        g.add_edge(v[0], v[1], 1.0);
        g.add_edge(v[1], v[2], 2.0);
        g.add_edge(v[2], v[3], 4.0);
        let side = vec![false, false, true, true];
        assert_eq!(g.cut_weight(&side), 2.0);
    }

    #[test]
    fn coupled_graph_shape() {
        let g = CommGraph::coupled(4, 2, 100.0, 2, 1000.0, 10.0);
        assert_eq!(g.len(), 6);
        assert_eq!(g.simulation_vertices().len(), 4);
        assert_eq!(g.analytics_vertices().len(), 2);
        // Sim 0 talks to sim 1 (right) and sim 2 (below) and ana 0.
        assert_eq!(g.weight(0, 1), 100.0);
        assert_eq!(g.weight(0, 2), 100.0);
        assert_eq!(g.weight(0, 4), 1000.0);
        // Analytics ring of 2: single edge 4-5 (deduped by next!=r logic
        // accumulating both directions).
        assert!(g.weight(4, 5) > 0.0);
    }

    #[test]
    fn coupled_graph_single_analytics() {
        let g = CommGraph::coupled(3, 3, 1.0, 1, 10.0, 5.0);
        // No analytics ring with one rank, no self edge.
        assert_eq!(g.analytics_vertices().len(), 1);
        assert_eq!(g.weight(3, 3), 0.0);
    }
}
