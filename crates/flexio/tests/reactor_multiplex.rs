//! The reactor's reason to exist: ONE thread, ONE event loop, driving many
//! concurrent writer/reader couplings end to end. Every stream here runs
//! the full protocol — open, 4-step handshake, data transfer, sync acks,
//! EOS — as poll-driven state machines multiplexed on the test thread; no
//! helper thread is ever spawned. The blocking API would need 2×N threads
//! for the same work.

mod common;

use std::cell::Cell;
use std::rc::Rc;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::block_1d;
use flexio::{CachingLevel, FlexIo, Runtime, StreamHints, WriteMode};
use machine::laptop;

const COUPLINGS: usize = 64;
const STEPS: u64 = 3;
const ELEMS: u64 = 4;

#[test]
fn one_reactor_thread_drives_64_couplings_to_completion() {
    let io = FlexIo::single_node(laptop());
    let hints = StreamHints {
        // Sync mode bounds in-flight data per stream, so 64 streams'
        // traffic cannot overrun the bounded shm queues while their
        // consumers wait for their turn on the shared loop.
        write_mode: WriteMode::Sync,
        caching: CachingLevel::CachingAll,
        runtime: Runtime::Reactor,
        ..StreamHints::default()
    };

    let mut reactor = flexio_reactor::Reactor::new();
    let writers_done = Rc::new(Cell::new(0usize));
    let readers_done = Rc::new(Cell::new(0usize));
    let steps_read = Rc::new(Cell::new(0u64));

    for i in 0..COUPLINGS {
        let wcore = laptop().node.location_of(0);
        // Half the couplings run same-core (in-proc transport), half
        // cross-core (shared-memory transport): one loop, both fabrics.
        let rcore = if i % 2 == 0 { wcore } else { laptop().node.location_of(1) };
        let name = format!("mux{i}");

        let io_w = io.clone();
        let hints_w = hints.clone();
        let name_w = name.clone();
        let done = Rc::clone(&writers_done);
        reactor.spawn(async move {
            let mut w = io_w
                .open_writer_rt(&name_w, 0, 1, wcore, vec![wcore], hints_w)
                .await
                .expect("open writer");
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..ELEMS).map(|e| (i as u64 * 1000 + step * 10 + e) as f64).collect();
                w.write("u", block_1d(0, data, ELEMS));
                w.end_step_rt().await.expect("end_step");
            }
            w.close();
            done.set(done.get() + 1);
        });

        let io_r = io.clone();
        let hints_r = hints.clone();
        let done = Rc::clone(&readers_done);
        let steps = Rc::clone(&steps_read);
        reactor.spawn(async move {
            let mut r = io_r
                .open_reader_rt(&name, 0, 1, rcore, vec![rcore], hints_r)
                .await
                .expect("open reader");
            let whole = Selection::GlobalBox(BoxSel::whole(&[ELEMS]));
            r.subscribe("u", whole.clone());
            loop {
                match r.begin_step_rt().await.expect("begin_step") {
                    StepStatus::Step(step) => {
                        let v = r.read("u", &whole).expect("subscribed var present");
                        let VarValue::Block(b) = v else { panic!("block expected") };
                        for (e, &x) in b.data.as_f64().iter().enumerate() {
                            assert_eq!(
                                x,
                                (i as u64 * 1000 + step * 10 + e as u64) as f64,
                                "stream {i} step {step} elem {e}"
                            );
                        }
                        steps.set(steps.get() + 1);
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            r.close();
            done.set(done.get() + 1);
        });
    }

    assert_eq!(reactor.pending(), COUPLINGS * 2, "all tasks registered before run");
    reactor.run();

    assert_eq!(writers_done.get(), COUPLINGS, "every writer ran to completion");
    assert_eq!(readers_done.get(), COUPLINGS, "every reader ran to completion");
    assert_eq!(steps_read.get(), COUPLINGS as u64 * STEPS, "no step lost or duplicated");
    assert_eq!(reactor.pending(), 0, "the loop drained every task");
}
