//! Receiver-side RDMA Get scheduling (paper §II.E).
//!
//! "The receiver prepares a receive buffer, and issues RDMA Get to fetch
//! data according to some scheduling policy. [...] The scheduling technique
//! is leveraged from our previous work in data staging; its use can
//! effectively reduce network contention."
//!
//! The policy here is a concurrency window: at most `k` Gets may be in
//! flight per receiver at once; further Gets queue FIFO. `Unthrottled`
//! (the baseline) lets every Get proceed immediately, maximizing NIC
//! contention; `Windowed(k)` is the paper's server-directed approach.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// How a receiver schedules its outstanding Gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Issue every Get immediately (maximum contention).
    Unthrottled,
    /// At most this many concurrent Gets per receiver.
    Windowed(usize),
}

struct State {
    in_flight: usize,
    limit: Option<usize>,
}

/// Grants Get slots according to a [`SchedulingPolicy`]; cloneable so
/// multiple receiver threads on the same node can share one scheduler.
#[derive(Clone)]
pub struct GetScheduler {
    state: Arc<(Mutex<State>, Condvar)>,
}

/// RAII slot; the Get is "in flight" while this is alive.
pub struct GetSlot {
    state: Arc<(Mutex<State>, Condvar)>,
}

impl GetScheduler {
    /// Build a scheduler for the given policy.
    pub fn new(policy: SchedulingPolicy) -> GetScheduler {
        let limit = match policy {
            SchedulingPolicy::Unthrottled => None,
            SchedulingPolicy::Windowed(k) => {
                assert!(k >= 1, "window must allow at least one Get");
                Some(k)
            }
        };
        GetScheduler {
            state: Arc::new((Mutex::new(State { in_flight: 0, limit }), Condvar::new())),
        }
    }

    /// Block until a Get slot is available, then claim it.
    pub fn acquire(&self) -> GetSlot {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        while st.limit.is_some_and(|k| st.in_flight >= k) {
            cvar.wait(&mut st);
        }
        st.in_flight += 1;
        GetSlot { state: Arc::clone(&self.state) }
    }

    /// Gets currently in flight (for monitoring/tests).
    pub fn in_flight(&self) -> usize {
        self.state.0.lock().in_flight
    }

    /// The window limit, if any (`None` = unthrottled).
    pub fn limit(&self) -> Option<usize> {
        self.state.0.lock().limit
    }
}

impl Drop for GetSlot {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        st.in_flight -= 1;
        cvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn unthrottled_never_blocks() {
        let sched = GetScheduler::new(SchedulingPolicy::Unthrottled);
        let slots: Vec<_> = (0..100).map(|_| sched.acquire()).collect();
        assert_eq!(sched.in_flight(), 100);
        drop(slots);
        assert_eq!(sched.in_flight(), 0);
    }

    #[test]
    fn window_limits_concurrency() {
        let sched = GetScheduler::new(SchedulingPolicy::Windowed(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let sched = sched.clone();
            let peak = Arc::clone(&peak);
            let current = Arc::clone(&current);
            handles.push(thread::spawn(move || {
                let _slot = sched.acquire();
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(std::time::Duration::from_millis(2));
                current.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak={}", peak.load(Ordering::SeqCst));
    }
}
