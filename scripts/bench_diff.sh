#!/usr/bin/env bash
# Compare freshly-generated BENCH_*.json results against the committed
# baselines (git HEAD) and flag throughput regressions beyond a
# threshold (default 20%).
#
# Usage: scripts/bench_diff.sh [--threshold PCT] [BENCH_file.json ...]
#
# With no files, every BENCH_*.json present in the working tree that also
# exists in HEAD is compared. Rows are matched by their identity fields
# (everything except measured values); the compared metric is the row's
# rate field (steps_per_s / ops_per_s / msgs_per_s / gbps — whichever the
# row carries). Exits nonzero if any matched row regressed, so CI can
# gate on it. Rows only present on one side are reported but never fail
# the run (sweeps are allowed to grow).
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD=20
FILES=()
while [ $# -gt 0 ]; do
    case "$1" in
        --threshold) THRESHOLD="$2"; shift 2 ;;
        *) FILES+=("$1"); shift ;;
    esac
done
if [ ${#FILES[@]} -eq 0 ]; then
    for f in BENCH_*.json; do
        [ -e "$f" ] && FILES+=("$f")
    done
fi

fail=0
for f in "${FILES[@]}"; do
    if ! git cat-file -e "HEAD:$f" 2>/dev/null; then
        echo "bench_diff: $f has no committed baseline (new bench) — skipping"
        continue
    fi
    if ! out=$(git show "HEAD:$f" | python3 scripts/bench_diff.py "$f" "$THRESHOLD"); then
        fail=1
    fi
    echo "$out"
done

if [ "$fail" -ne 0 ]; then
    echo "bench_diff: REGRESSION over ${THRESHOLD}% detected"
    exit 1
fi
echo "bench_diff: all benches within ${THRESHOLD}% of committed baselines"
