//! The stream-mode write engine (paper §II.B–C, writer side).
//!
//! Per I/O timestep the writer side runs the 4-step protocol:
//!
//! 1. ranks send their variable *distributions* (metadata only) to the
//!    writer coordinator (skipped under `CACHING_LOCAL`/`CACHING_ALL`
//!    after the first step);
//! 2. the coordinator exchanges distributions/selections with the reader
//!    coordinator (skipped under `CACHING_ALL` after the first step);
//! 3. the coordinator broadcasts the computed transfer plan to its ranks
//!    (skipped when the cached plan is unchanged);
//! 4. every rank extracts and sends its overlapping chunks directly to
//!    the reader ranks, over transports chosen by placement.
//!
//! A tiny per-step "go"/step-header message keeps the two programs in
//! step and carries end-of-stream; it is deliberately outside the
//! handshake counters, which measure steps 1–3 only.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use adios::{ProcessGroup, VarValue, WriteEngine};
use evpath::{BoxedReceiver, BoxedSender, FieldValue, Record};

use crate::link::{
    recv_record, recv_record_rt, ChannelId, LinkState, Runtime, StreamError, StreamHints,
};
use crate::monitor::MonitorEvent;
use crate::plugins::{InstalledPlugin, PluginPlacement, PluginSpec};
use crate::protocol::{self, msg, CachingLevel, ProtocolCounters, WriteMode};
use crate::redistribute::{self, ChunkPlan, Subscription, VarMeta};

/// Control-channel receiver with a pending queue so out-of-band messages
/// (plug-in updates) can be drained without losing in-band ones.
pub(crate) struct CtrlIn {
    rx: BoxedReceiver,
    pending: VecDeque<Record>,
    counters: Arc<ProtocolCounters>,
}

impl CtrlIn {
    pub(crate) fn new(rx: BoxedReceiver, counters: Arc<ProtocolCounters>) -> CtrlIn {
        CtrlIn { rx, pending: VecDeque::new(), counters }
    }

    /// Blocking receive of the next message whose kind is in `expect`;
    /// any other message encountered on the way is parked in the pending
    /// queue (to be found by a later `recv_expect` or [`Self::drain_kind`]).
    pub(crate) fn recv_expect(
        &mut self,
        expect: &[&str],
        hints: &StreamHints,
    ) -> Result<Record, StreamError> {
        if let Some(idx) = self.pending.iter().position(|r| expect.contains(&protocol::kind_of(r)))
        {
            return Ok(self.pending.remove(idx).expect("index valid"));
        }
        loop {
            let record = recv_record(&mut self.rx, hints, &self.counters)?;
            if expect.contains(&protocol::kind_of(&record)) {
                return Ok(record);
            }
            self.pending.push_back(record);
        }
    }

    /// Poll-driven variant of [`Self::recv_expect`] for reactor tasks:
    /// identical parking/pending semantics, waits yield to the event loop.
    pub(crate) async fn recv_expect_rt(
        &mut self,
        expect: &[&str],
        hints: &StreamHints,
    ) -> Result<Record, StreamError> {
        if let Some(idx) = self.pending.iter().position(|r| expect.contains(&protocol::kind_of(r)))
        {
            return Ok(self.pending.remove(idx).expect("index valid"));
        }
        loop {
            let record = recv_record_rt(&mut self.rx, hints, &self.counters).await?;
            if expect.contains(&protocol::kind_of(&record)) {
                return Ok(record);
            }
            self.pending.push_back(record);
        }
    }

    /// Drain any immediately-available messages of `kind`.
    pub(crate) fn drain_kind(&mut self, kind: &str) -> Vec<Record> {
        let mut out = Vec::new();
        // Move channel contents into pending.
        while let Some(bytes) = self.rx.try_recv() {
            if let Ok(r) = Record::decode(&bytes) {
                self.pending.push_back(r);
            }
        }
        let mut keep = VecDeque::new();
        for r in self.pending.drain(..) {
            if protocol::kind_of(&r) == kind {
                out.push(r);
            } else {
                keep.push_back(r);
            }
        }
        self.pending = keep;
        out
    }
}

struct WriterCoord {
    from_ranks: Vec<Option<BoxedReceiver>>,
    to_ranks: Vec<Option<BoxedSender>>,
    /// Control channels are claimed lazily: their transport depends on the
    /// reader coordinator's placement, unknown until the reader attaches.
    ctrl_tx: Option<BoxedSender>,
    ctrl_in: Option<CtrlIn>,
    /// Last gathered per-rank distributions.
    cached_dists: Vec<Vec<VarMeta>>,
    /// Last received reader selections.
    cached_sels: Option<Vec<Vec<Subscription>>>,
    /// Writer-side plug-in specs currently active.
    writer_plugins: Vec<PluginSpec>,
    /// Eviction set the current plan was computed against; when the link
    /// records further evictions the plan is dirty and must be redrawn.
    planned_evictions: HashSet<usize>,
}

/// Stream-mode [`WriteEngine`]: one per writer rank.
pub struct StreamWriter {
    link: Arc<LinkState>,
    rank: usize,
    nranks: usize,
    name: String,
    hints: StreamHints,
    steps_written: u64,
    current: Option<ProcessGroup>,
    data_tx: HashMap<usize, BoxedSender>,
    ack_rx: HashMap<usize, BoxedReceiver>,
    side_up: Option<BoxedSender>,
    side_down: Option<BoxedReceiver>,
    coord: Option<WriterCoord>,
    /// This rank's row of the transfer plan: chunks per reader rank.
    cached_plan_row: Vec<Vec<ChunkPlan>>,
    reader_count: usize,
    installed: HashMap<String, InstalledPlugin>,
    closed: bool,
    /// When the previous step sealed — the gap between seals is the live
    /// estimate of the simulation's I/O interval (`StepSeal` nanos).
    last_seal: Option<Instant>,
    /// Optional monitoring relay: when attached, each sealed step ships
    /// its wire volume, plug-in cost and seal interval to the analytics
    /// side, closing the §II.G loop for the elastic controller.
    relay: Option<crate::relay::MonitorRelay>,
}

impl StreamWriter {
    pub(crate) fn new(
        link: Arc<LinkState>,
        rank: usize,
        nranks: usize,
        name: String,
        hints: StreamHints,
    ) -> StreamWriter {
        let (side_up, side_down, coord) = if rank == 0 {
            let coord = WriterCoord {
                from_ranks: (0..nranks).map(|_| None).collect(),
                to_ranks: (0..nranks).map(|_| None).collect(),
                ctrl_tx: None,
                ctrl_in: None,
                cached_dists: vec![Vec::new(); nranks],
                cached_sels: None,
                writer_plugins: Vec::new(),
                planned_evictions: HashSet::new(),
            };
            (None, None, Some(coord))
        } else {
            (
                Some(link.claim_sender(ChannelId::WriterSide { rank, up: true })),
                Some(link.claim_receiver(ChannelId::WriterSide { rank, up: false })),
                None,
            )
        };
        StreamWriter {
            link,
            rank,
            nranks,
            name,
            hints,
            steps_written: 0,
            current: None,
            data_tx: HashMap::new(),
            ack_rx: HashMap::new(),
            side_up,
            side_down,
            coord,
            cached_plan_row: Vec::new(),
            reader_count: 0,
            installed: HashMap::new(),
            closed: false,
            last_seal: None,
            relay: None,
        }
    }

    /// Attach a monitoring relay: from now on every sealed step publishes
    /// its per-step wire volume ([`MonitorEvent::DataSend`]), plug-in
    /// execution time ([`MonitorEvent::PluginExec`]) and seal-to-seal
    /// interval ([`MonitorEvent::StepSeal`]) to the analytics side, where
    /// an elastic controller's [`crate::relay::MonitorSink`] replica
    /// drives allocation and placement decisions.
    pub fn attach_relay(&mut self, relay: crate::relay::MonitorRelay) {
        self.relay = Some(relay);
    }

    /// Step-seal measurement point: record the seal (and the gap since
    /// the previous one) locally, and ship this step's monitor deltas
    /// through the attached relay, if any.
    fn seal_step(&mut self, step: u64) {
        let gap = self.last_seal.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        self.last_seal = Some(Instant::now());
        let monitor = self.link.monitor.clone();
        let wire = monitor
            .bytes_per_step(MonitorEvent::DataSend, self.rank)
            .iter()
            .rev()
            .find(|&&(s, _)| s == step)
            .map(|&(_, b)| b)
            .unwrap_or(0);
        monitor.record(MonitorEvent::StepSeal, step, self.rank, wire, gap);
        if let Some(relay) = &mut self.relay {
            relay.publish(MonitorEvent::DataSend, step, self.rank, wire, 0);
            let plugin_ns = monitor
                .nanos_per_step(MonitorEvent::PluginExec, self.rank)
                .iter()
                .rev()
                .find(|&&(s, _)| s == step)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            if plugin_ns > 0 {
                relay.publish(MonitorEvent::PluginExec, step, self.rank, 0, plugin_ns);
            }
            relay.publish(MonitorEvent::StepSeal, step, self.rank, wire, gap);
        }
    }

    /// Stream name.
    pub fn stream_name(&self) -> &str {
        &self.name
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Shared link (counters, monitor) for inspection.
    pub fn link(&self) -> &Arc<LinkState> {
        &self.link
    }

    fn metas(group: &ProcessGroup) -> Vec<VarMeta> {
        group.vars.iter().map(|(n, v)| VarMeta::of(n, v)).collect()
    }

    fn encode_metas(metas: &[VarMeta]) -> Record {
        let mut r = Record::new().with("n", FieldValue::U64(metas.len() as u64));
        for (i, m) in metas.iter().enumerate() {
            r.set(&format!("m.{i}"), FieldValue::Record(m.to_record()));
        }
        r
    }

    fn decode_metas(r: &Record) -> Option<Vec<VarMeta>> {
        let n = r.get_u64("n")? as usize;
        (0..n).map(|i| VarMeta::from_record(r.get_record(&format!("m.{i}"))?)).collect()
    }

    fn encode_plan_row(row: &[Vec<ChunkPlan>]) -> Record {
        let mut r = Record::new().with("readers", FieldValue::U64(row.len() as u64));
        for (ri, chunks) in row.iter().enumerate() {
            r.set(&format!("count.{ri}"), FieldValue::U64(chunks.len() as u64));
            for (ci, c) in chunks.iter().enumerate() {
                let mut cr = Record::new().with("var", FieldValue::Str(c.var.clone()));
                if let Some(region) = &c.region {
                    cr.set("offset", FieldValue::U64Array(region.offset.clone()));
                    cr.set("count", FieldValue::U64Array(region.count.clone()));
                }
                r.set(&format!("chunk.{ri}.{ci}"), FieldValue::Record(cr));
            }
        }
        r
    }

    fn decode_plan_row(r: &Record) -> Option<Vec<Vec<ChunkPlan>>> {
        let readers = r.get_u64("readers")? as usize;
        let mut row = Vec::with_capacity(readers);
        for ri in 0..readers {
            let count = r.get_u64(&format!("count.{ri}"))? as usize;
            let mut chunks = Vec::with_capacity(count);
            for ci in 0..count {
                let cr = r.get_record(&format!("chunk.{ri}.{ci}"))?;
                let var = cr.get_str("var")?.to_string();
                let region = match (cr.get_u64_array("offset"), cr.get_u64_array("count")) {
                    (Some(o), Some(c)) => Some(adios::BoxSel::new(o.to_vec(), c.to_vec())),
                    _ => None,
                };
                chunks.push(ChunkPlan { var, region });
            }
            row.push(chunks);
        }
        Some(row)
    }

    fn install_plugins(&mut self, specs: &[PluginSpec]) {
        self.installed.clear();
        for spec in specs {
            if spec.placement == PluginPlacement::WriterSide {
                match InstalledPlugin::install(spec.clone()) {
                    Ok(p) => {
                        self.installed.insert(spec.var.clone(), p);
                    }
                    Err(e) => {
                        // A bad plug-in must not take down the simulation;
                        // it is skipped (and would be reported through
                        // monitoring in a production system).
                        eprintln!("flexio: dropping writer-side plug-in for `{}`: {e}", spec.var);
                    }
                }
            }
        }
    }

    /// The coordinator's per-step protocol; returns this rank's plan row
    /// and whether it changed.
    fn coordinate(&mut self, my_metas: Vec<VarMeta>, step: u64) -> Result<(), StreamError> {
        let first = self.steps_written == 0;
        let need_gather = first || self.hints.caching == CachingLevel::NoCaching;
        let need_exchange = first || self.hints.caching != CachingLevel::CachingAll;
        let counters = Arc::clone(&self.link.counters);
        let nranks = self.nranks;
        let hints = self.hints.clone();
        let link = Arc::clone(&self.link);

        if self.rank != 0 {
            // Step 1: ship distributions up.
            if need_gather {
                let tx = self.side_up.as_mut().expect("non-coordinator has side_up");
                tx.send(
                    &protocol::message("dists")
                        .with("metas", FieldValue::Record(Self::encode_metas(&my_metas)))
                        .encode(),
                );
                counters.bump(&counters.gather_msgs);
            }
            // Step 3: receive the go (plan/plugins when changed).
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let go = recv_record(rx, &hints, &counters)?;
            if protocol::kind_of(&go) != "go" {
                return Err(StreamError::Protocol(format!(
                    "expected go, got {}",
                    protocol::kind_of(&go)
                )));
            }
            if let Some(plan) = go.get_record("plan") {
                self.cached_plan_row = Self::decode_plan_row(plan)
                    .ok_or_else(|| StreamError::Corrupt("bad plan row".to_string()))?;
                self.reader_count = self.cached_plan_row.len();
            }
            if let Some(pl) = go.get_record("plugins") {
                let specs = decode_plugin_specs(pl)
                    .ok_or_else(|| StreamError::Corrupt("bad plugin specs".to_string()))?;
                self.install_plugins(&specs);
            }
            return Ok(());
        }

        // ---- coordinator path ----
        // Make sure the reader side is attached before the first step.
        if first {
            link.wait_reader_info(hints.recv_timeout).ok_or(StreamError::Timeout)?;
        }
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        if coord.ctrl_tx.is_none() {
            coord.ctrl_tx = Some(link.claim_sender(ChannelId::ControlToReader));
            coord.ctrl_in = Some(CtrlIn::new(
                link.claim_receiver(ChannelId::ControlToWriter),
                Arc::clone(&link.counters),
            ));
        }

        // Drain dynamically-deployed plug-in updates (separate logical
        // channel from data movement, §II.F).
        let mut plugin_dirty = false;
        for update in coord.ctrl_in.as_mut().expect("ctrl claimed").drain_kind(msg::PLUGIN_UPDATE) {
            if let Some(specs) = update.get_record("plugins").and_then(decode_plugin_specs) {
                coord.writer_plugins = specs;
                plugin_dirty = true;
                counters.bump(&counters.plugin_msgs);
            }
        }

        // Step 1: gather distributions.
        if need_gather {
            coord.cached_dists[0] = my_metas;
            for r in 1..nranks {
                let rx = coord.from_ranks[r].get_or_insert_with(|| {
                    link.claim_receiver(ChannelId::WriterSide { rank: r, up: true })
                });
                let m = recv_record(rx, &hints, &counters)?;
                let metas = m
                    .get_record("metas")
                    .and_then(Self::decode_metas)
                    .ok_or_else(|| StreamError::Corrupt("bad dists".to_string()))?;
                coord.cached_dists[r] = metas;
            }
        }

        // Step header (+ step 2 exchange).
        coord.ctrl_tx.as_mut().expect("ctrl claimed").send(
            &protocol::message(msg::STEP)
                .with("step", FieldValue::U64(step))
                .with("exchange", FieldValue::U64(u64::from(need_exchange)))
                .encode(),
        );
        counters.bump(&counters.step_msgs);

        let mut plan_dirty = false;
        if need_exchange {
            let mut info =
                protocol::message(msg::WRITER_INFO).with("nranks", FieldValue::U64(nranks as u64));
            for (w, metas) in coord.cached_dists.iter().enumerate() {
                info.set(&format!("dists.{w}"), FieldValue::Record(Self::encode_metas(metas)));
            }
            coord.ctrl_tx.as_mut().expect("ctrl claimed").send(&info.encode());
            counters.bump(&counters.exchange_msgs);

            let reply = coord
                .ctrl_in
                .as_mut()
                .expect("ctrl claimed")
                .recv_expect(&[msg::READER_INFO], &hints)?;
            let nreaders = reply
                .get_u64("nranks")
                .ok_or_else(|| StreamError::Corrupt("reader_info missing nranks".into()))?
                as usize;
            let mut sels = Vec::with_capacity(nreaders);
            for r in 0..nreaders {
                let sr = reply
                    .get_record(&format!("sels.{r}"))
                    .ok_or_else(|| StreamError::Corrupt("reader_info missing sels".into()))?;
                sels.push(
                    decode_subscriptions(sr)
                        .ok_or_else(|| StreamError::Corrupt("bad subscriptions".into()))?,
                );
            }
            if let Some(pl) = reply.get_record("plugins") {
                coord.writer_plugins = decode_plugin_specs(pl)
                    .ok_or_else(|| StreamError::Corrupt("bad plugin specs".into()))?;
                plugin_dirty = true;
            }
            coord.cached_sels = Some(sels);
            plan_dirty = true;
        }

        // Steps degrade around evicted readers: their selections are
        // cleared so the plan routes nothing at a corpse, and the plan is
        // recomputed whenever the eviction set has grown since it was
        // last drawn up. Surviving readers' columns are untouched.
        let evicted = link.evicted_readers();
        if evicted != coord.planned_evictions {
            coord.planned_evictions = evicted.clone();
            plan_dirty = true;
        }

        // Step 3: compute + broadcast the plan when it changed.
        let cached = coord.cached_sels.as_ref().expect("selections known after first exchange");
        let sels: Vec<Vec<Subscription>> = cached
            .iter()
            .enumerate()
            .map(|(r, s)| if evicted.contains(&r) { Vec::new() } else { s.clone() })
            .collect();
        let full_plan = redistribute::plan(&coord.cached_dists, &sels);
        self.reader_count = sels.len();

        let plugin_record = plugin_dirty.then(|| encode_plugin_specs(&coord.writer_plugins));
        for r in 1..nranks {
            let tx = coord.to_ranks[r].get_or_insert_with(|| {
                link.claim_sender(ChannelId::WriterSide { rank: r, up: false })
            });
            let mut go = protocol::message("go").with("step", FieldValue::U64(step));
            if plan_dirty {
                go.set("plan", FieldValue::Record(Self::encode_plan_row(&full_plan[r])));
            }
            if let Some(pl) = &plugin_record {
                go.set("plugins", FieldValue::Record(pl.clone()));
            }
            tx.send(&go.encode());
            if plan_dirty {
                counters.bump(&counters.bcast_msgs);
            } else {
                counters.bump(&counters.step_msgs);
            }
        }
        if plan_dirty {
            self.cached_plan_row = full_plan[0].clone();
        }
        if plugin_dirty {
            let specs = coord.writer_plugins.clone();
            self.install_plugins(&specs);
        }
        Ok(())
    }

    /// Step 4: extract, condition and send this rank's chunks.
    fn send_chunks(&mut self, group: &ProcessGroup, step: u64) -> Result<(), StreamError> {
        let counters = Arc::clone(&self.link.counters);
        let monitor = self.link.monitor.clone();
        let plan_row = self.cached_plan_row.clone();
        for (r, chunks) in plan_row.iter().enumerate() {
            // An eviction recorded mid-step (by another writer rank) is
            // honoured immediately — no point feeding a corpse's queue
            // until the coordinator re-plans.
            if chunks.is_empty() || self.link.is_evicted(r) {
                continue;
            }
            let mut encoded_chunks = Vec::with_capacity(chunks.len());
            for cp in chunks {
                let Some(value) = group.get(&cp.var) else {
                    return Err(StreamError::Protocol(format!(
                        "planned variable `{}` was not written this step",
                        cp.var
                    )));
                };
                // Whole-value chunks borrow the written value — the only
                // payload copy before the transport is the marshal layer's
                // bulk append; region chunks own their packed strides and
                // are moved (not re-cloned) into the record.
                let mut payload = redistribute::extract_chunk(value, cp);
                let mut extras: Vec<(String, VarValue)> = Vec::new();
                if cp.region.is_none() {
                    if let Some(plugin) = self.installed.get(&cp.var) {
                        let applied = monitor.timed(
                            MonitorEvent::PluginExec,
                            step,
                            self.rank,
                            payload.payload_bytes(),
                            || plugin.apply(&payload),
                        );
                        match applied {
                            Ok((v, e)) => {
                                payload = Cow::Owned(v);
                                extras = e;
                            }
                            Err(crate::plugins::PluginError::UnsupportedChunk(_)) => {}
                            Err(e) => {
                                return Err(StreamError::Protocol(format!(
                                    "writer-side plug-in failed: {e}"
                                )))
                            }
                        }
                    }
                }
                let body = match payload {
                    Cow::Owned(v) => v.into_record(),
                    Cow::Borrowed(v) => v.to_record(),
                };
                let mut cr = protocol::message(msg::CHUNK)
                    .with("step", FieldValue::U64(step))
                    .with("w", FieldValue::U64(self.rank as u64))
                    .with("var", FieldValue::Str(cp.var.clone()))
                    .with("body", FieldValue::Record(body));
                if !extras.is_empty() {
                    let mut er = Record::new().with("n", FieldValue::U64(extras.len() as u64));
                    for (i, (name, v)) in extras.iter().enumerate() {
                        er.set(&format!("name.{i}"), FieldValue::Str(name.clone()));
                        er.set(&format!("val.{i}"), FieldValue::Record(v.to_record()));
                    }
                    cr.set("extras", FieldValue::Record(er));
                }
                encoded_chunks.push(cr);
            }
            let tx = {
                let link = &self.link;
                let rank = self.rank;
                self.data_tx
                    .entry(r)
                    .or_insert_with(|| link.claim_sender(ChannelId::Data { w: rank, r }))
            };
            if self.hints.batching {
                let mut batch = protocol::message(msg::BATCH)
                    .with("step", FieldValue::U64(step))
                    .with("w", FieldValue::U64(self.rank as u64))
                    .with("n", FieldValue::U64(encoded_chunks.len() as u64));
                for (i, c) in encoded_chunks.into_iter().enumerate() {
                    // Chunk records are moved into the batch, so batching no
                    // longer deep-clones every payload.
                    batch.set(&format!("c.{i}"), FieldValue::Record(c));
                }
                if self.hints.packed_marshal {
                    let enc = batch.encode_segments();
                    monitor.record(
                        MonitorEvent::DataSend,
                        step,
                        self.rank,
                        enc.total_len() as u64,
                        0,
                    );
                    tx.send_vectored(&enc.as_slices());
                } else {
                    let flat = batch.encode_legacy();
                    monitor.record(MonitorEvent::DataSend, step, self.rank, flat.len() as u64, 0);
                    tx.send(&flat);
                }
                counters.bump(&counters.data_msgs);
            } else {
                for c in &encoded_chunks {
                    if self.hints.packed_marshal {
                        let enc = c.encode_segments();
                        monitor.record(
                            MonitorEvent::DataSend,
                            step,
                            self.rank,
                            enc.total_len() as u64,
                            0,
                        );
                        tx.send_vectored(&enc.as_slices());
                    } else {
                        let flat = c.encode_legacy();
                        monitor.record(
                            MonitorEvent::DataSend,
                            step,
                            self.rank,
                            flat.len() as u64,
                            0,
                        );
                        tx.send(&flat);
                    }
                    counters.bump(&counters.data_msgs);
                }
            }
        }
        // Synchronous mode: wait for per-reader acknowledgements. A reader
        // that exhausts the timeout-and-retry budget is *evicted* rather
        // than failing the stream (§II.H): the step completes degraded,
        // survivors keep their data, and the coordinator re-plans around
        // the corpse at the next step.
        if self.hints.write_mode == WriteMode::Sync {
            let readers_with_data: Vec<usize> = plan_row
                .iter()
                .enumerate()
                .filter(|(r, c)| !c.is_empty() && !self.link.is_evicted(*r))
                .map(|(r, _)| r)
                .collect();
            let monitor = self.link.monitor.clone();
            let start = std::time::Instant::now();
            let mut degraded = false;
            for r in readers_with_data {
                let rx = {
                    let link = &self.link;
                    let rank = self.rank;
                    self.ack_rx
                        .entry(r)
                        .or_insert_with(|| link.claim_receiver(ChannelId::Ack { w: rank, r }))
                };
                match recv_record(rx, &self.hints, &counters) {
                    Ok(ack) => {
                        if protocol::kind_of(&ack) != msg::ACK {
                            return Err(StreamError::Protocol("expected ack".to_string()));
                        }
                    }
                    Err(StreamError::Timeout) => {
                        degraded = true;
                        if self.link.evict_reader(r) {
                            counters.bump(&counters.evictions);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            if degraded {
                counters.bump(&counters.degraded_steps);
            }
            monitor.record(
                MonitorEvent::SyncWait,
                step,
                self.rank,
                0,
                start.elapsed().as_nanos() as u64,
            );
        }
        Ok(())
    }

    /// Fallible version of [`WriteEngine::end_step`]. A failure leaves the
    /// multi-rank handshake in an indeterminate state, so the stream is
    /// poisoned: further steps are refused rather than risking a
    /// desynchronized retry against peers that will not replay their
    /// half of the protocol.
    pub fn try_end_step(&mut self) -> Result<(), StreamError> {
        if self.hints.runtime == Runtime::Reactor {
            // Reactor backend through the blocking API: the caller's
            // thread becomes a single-task event loop for this step.
            return flexio_reactor::block_on(self.end_step_rt());
        }
        assert!(!self.closed, "stream closed or poisoned by an earlier failure");
        let group = self.current.take().expect("end_step without begin_step");
        let step = group.step;
        let metas = Self::metas(&group);
        let result =
            self.coordinate(metas, step).and_then(|()| self.send_chunks(&group, step)).and_then(
                |()| {
                    if self.hints.transactional {
                        self.commit_step_2pc(step)
                    } else {
                        Ok(())
                    }
                },
            );
        match result {
            Ok(()) => {
                self.steps_written += 1;
                self.seal_step(step);
                Ok(())
            }
            Err(e) => {
                self.closed = true;
                Err(e)
            }
        }
    }

    /// The 2-phase-commit step transaction (paper §II.H's planned
    /// distributed transaction protocol \[26\], writer = coordinator):
    /// every writer rank reports its sends complete; the coordinator sends
    /// PREPARE to the reader side, collects its vote, and broadcasts the
    /// COMMIT decision to both programs. A step is only "done" once every
    /// reader rank took delivery.
    fn commit_step_2pc(&mut self, step: u64) -> Result<(), StreamError> {
        let hints = self.hints.clone();
        if self.rank != 0 {
            // Report sends complete; wait for the global commit.
            self.side_up
                .as_mut()
                .expect("non-coordinator has side_up")
                .send(&protocol::message("txn_sent").with("step", FieldValue::U64(step)).encode());
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let decision = recv_record(rx, &hints, &self.link.counters)?;
            if protocol::kind_of(&decision) != msg::TXN_COMMIT {
                return Err(StreamError::Protocol("expected txn_commit".to_string()));
            }
            return Ok(());
        }
        let link = Arc::clone(&self.link);
        let nranks = self.nranks;
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        // Phase 0: all writer ranks finished sending.
        for r in 1..nranks {
            let rx = coord.from_ranks[r].get_or_insert_with(|| {
                link.claim_receiver(ChannelId::WriterSide { rank: r, up: true })
            });
            let sent = recv_record(rx, &hints, &link.counters)?;
            if protocol::kind_of(&sent) != "txn_sent" {
                return Err(StreamError::Protocol("expected txn_sent".to_string()));
            }
        }
        // Phase 1: PREPARE → reader coordinator votes.
        coord.ctrl_tx.as_mut().expect("ctrl claimed").send(
            &protocol::message(msg::TXN_PREPARE).with("step", FieldValue::U64(step)).encode(),
        );
        link.counters.bump(&link.counters.step_msgs);
        let vote =
            coord.ctrl_in.as_mut().expect("ctrl claimed").recv_expect(&[msg::TXN_VOTE], &hints)?;
        let ok = vote.get_u64("ok") == Some(1);
        // Phase 2: decision to the reader side and our own ranks.
        coord.ctrl_tx.as_mut().expect("ctrl claimed").send(
            &protocol::message(msg::TXN_COMMIT)
                .with("step", FieldValue::U64(step))
                .with("ok", FieldValue::U64(u64::from(ok)))
                .encode(),
        );
        link.counters.bump(&link.counters.step_msgs);
        for r in 1..nranks {
            let tx = coord.to_ranks[r].get_or_insert_with(|| {
                link.claim_sender(ChannelId::WriterSide { rank: r, up: false })
            });
            tx.send(
                &protocol::message(msg::TXN_COMMIT).with("step", FieldValue::U64(step)).encode(),
            );
        }
        if !ok {
            return Err(StreamError::Protocol(format!("reader voted abort for step {step}")));
        }
        Ok(())
    }

    // ------------------------------------------------ reactor state machine
    //
    // The poll-driven transcription of the engine above: identical
    // protocol steps, counter accounting and failure mapping, but every
    // receive wait is an `.await` that yields to the enclosing
    // `flexio-reactor` event loop — one core can drive many writers.

    /// Poll-driven variant of [`Self::try_end_step`] for reactor tasks
    /// (the blocking API reaches it through `block_on` when the stream's
    /// `runtime` hint selects the reactor backend).
    pub async fn end_step_rt(&mut self) -> Result<(), StreamError> {
        assert!(!self.closed, "stream closed or poisoned by an earlier failure");
        let group = self.current.take().expect("end_step without begin_step");
        let step = group.step;
        let metas = Self::metas(&group);
        let result = match self.coordinate_rt(metas, step).await {
            Ok(()) => match self.send_chunks_rt(&group, step).await {
                Ok(()) if self.hints.transactional => self.commit_step_2pc_rt(step).await,
                other => other,
            },
            Err(e) => Err(e),
        };
        match result {
            Ok(()) => {
                self.steps_written += 1;
                self.seal_step(step);
                // Feed the fleet's per-shard steps/s counter (no-op
                // outside a reactor).
                flexio_reactor::note_step();
                Ok(())
            }
            Err(e) => {
                self.closed = true;
                Err(e)
            }
        }
    }

    /// [`Self::coordinate`] as a poll-driven step.
    async fn coordinate_rt(
        &mut self,
        my_metas: Vec<VarMeta>,
        step: u64,
    ) -> Result<(), StreamError> {
        let first = self.steps_written == 0;
        let need_gather = first || self.hints.caching == CachingLevel::NoCaching;
        let need_exchange = first || self.hints.caching != CachingLevel::CachingAll;
        let counters = Arc::clone(&self.link.counters);
        let nranks = self.nranks;
        let hints = self.hints.clone();
        let link = Arc::clone(&self.link);

        if self.rank != 0 {
            // Step 1: ship distributions up.
            if need_gather {
                let tx = self.side_up.as_mut().expect("non-coordinator has side_up");
                tx.send(
                    &protocol::message("dists")
                        .with("metas", FieldValue::Record(Self::encode_metas(&my_metas)))
                        .encode(),
                );
                counters.bump(&counters.gather_msgs);
            }
            // Step 3: receive the go (plan/plugins when changed).
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let go = recv_record_rt(rx, &hints, &counters).await?;
            if protocol::kind_of(&go) != "go" {
                return Err(StreamError::Protocol(format!(
                    "expected go, got {}",
                    protocol::kind_of(&go)
                )));
            }
            if let Some(plan) = go.get_record("plan") {
                self.cached_plan_row = Self::decode_plan_row(plan)
                    .ok_or_else(|| StreamError::Corrupt("bad plan row".to_string()))?;
                self.reader_count = self.cached_plan_row.len();
            }
            if let Some(pl) = go.get_record("plugins") {
                let specs = decode_plugin_specs(pl)
                    .ok_or_else(|| StreamError::Corrupt("bad plugin specs".to_string()))?;
                self.install_plugins(&specs);
            }
            return Ok(());
        }

        // ---- coordinator path ----
        // Make sure the reader side is attached before the first step
        // (the blocking condvar wait becomes an event-loop poll).
        if first {
            let deadline = std::time::Instant::now() + hints.recv_timeout;
            let mut pacing = flexio_reactor::Pacing::new();
            while link.try_reader_info().is_none() {
                if std::time::Instant::now() >= deadline {
                    return Err(StreamError::Timeout);
                }
                pacing.pause(Some(deadline)).await;
            }
        }
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        if coord.ctrl_tx.is_none() {
            coord.ctrl_tx = Some(link.claim_sender(ChannelId::ControlToReader));
            coord.ctrl_in = Some(CtrlIn::new(
                link.claim_receiver(ChannelId::ControlToWriter),
                Arc::clone(&link.counters),
            ));
        }

        // Drain dynamically-deployed plug-in updates.
        let mut plugin_dirty = false;
        for update in coord.ctrl_in.as_mut().expect("ctrl claimed").drain_kind(msg::PLUGIN_UPDATE) {
            if let Some(specs) = update.get_record("plugins").and_then(decode_plugin_specs) {
                coord.writer_plugins = specs;
                plugin_dirty = true;
                counters.bump(&counters.plugin_msgs);
            }
        }

        // Step 1: gather distributions.
        if need_gather {
            coord.cached_dists[0] = my_metas;
            for r in 1..nranks {
                let rx = coord.from_ranks[r].get_or_insert_with(|| {
                    link.claim_receiver(ChannelId::WriterSide { rank: r, up: true })
                });
                let m = recv_record_rt(rx, &hints, &counters).await?;
                let metas = m
                    .get_record("metas")
                    .and_then(Self::decode_metas)
                    .ok_or_else(|| StreamError::Corrupt("bad dists".to_string()))?;
                coord.cached_dists[r] = metas;
            }
        }

        // Step header (+ step 2 exchange).
        coord.ctrl_tx.as_mut().expect("ctrl claimed").send(
            &protocol::message(msg::STEP)
                .with("step", FieldValue::U64(step))
                .with("exchange", FieldValue::U64(u64::from(need_exchange)))
                .encode(),
        );
        counters.bump(&counters.step_msgs);

        let mut plan_dirty = false;
        if need_exchange {
            let mut info =
                protocol::message(msg::WRITER_INFO).with("nranks", FieldValue::U64(nranks as u64));
            for (w, metas) in coord.cached_dists.iter().enumerate() {
                info.set(&format!("dists.{w}"), FieldValue::Record(Self::encode_metas(metas)));
            }
            coord.ctrl_tx.as_mut().expect("ctrl claimed").send(&info.encode());
            counters.bump(&counters.exchange_msgs);

            let reply = coord
                .ctrl_in
                .as_mut()
                .expect("ctrl claimed")
                .recv_expect_rt(&[msg::READER_INFO], &hints)
                .await?;
            let nreaders = reply
                .get_u64("nranks")
                .ok_or_else(|| StreamError::Corrupt("reader_info missing nranks".into()))?
                as usize;
            let mut sels = Vec::with_capacity(nreaders);
            for r in 0..nreaders {
                let sr = reply
                    .get_record(&format!("sels.{r}"))
                    .ok_or_else(|| StreamError::Corrupt("reader_info missing sels".into()))?;
                sels.push(
                    decode_subscriptions(sr)
                        .ok_or_else(|| StreamError::Corrupt("bad subscriptions".into()))?,
                );
            }
            if let Some(pl) = reply.get_record("plugins") {
                coord.writer_plugins = decode_plugin_specs(pl)
                    .ok_or_else(|| StreamError::Corrupt("bad plugin specs".into()))?;
                plugin_dirty = true;
            }
            coord.cached_sels = Some(sels);
            plan_dirty = true;
        }

        // Honour evictions recorded since the plan was last drawn.
        let evicted = link.evicted_readers();
        if evicted != coord.planned_evictions {
            coord.planned_evictions = evicted.clone();
            plan_dirty = true;
        }

        // Step 3: compute + broadcast the plan when it changed.
        let cached = coord.cached_sels.as_ref().expect("selections known after first exchange");
        let sels: Vec<Vec<Subscription>> = cached
            .iter()
            .enumerate()
            .map(|(r, s)| if evicted.contains(&r) { Vec::new() } else { s.clone() })
            .collect();
        let full_plan = redistribute::plan(&coord.cached_dists, &sels);
        self.reader_count = sels.len();

        let plugin_record = plugin_dirty.then(|| encode_plugin_specs(&coord.writer_plugins));
        for r in 1..nranks {
            let tx = coord.to_ranks[r].get_or_insert_with(|| {
                link.claim_sender(ChannelId::WriterSide { rank: r, up: false })
            });
            let mut go = protocol::message("go").with("step", FieldValue::U64(step));
            if plan_dirty {
                go.set("plan", FieldValue::Record(Self::encode_plan_row(&full_plan[r])));
            }
            if let Some(pl) = &plugin_record {
                go.set("plugins", FieldValue::Record(pl.clone()));
            }
            tx.send(&go.encode());
            if plan_dirty {
                counters.bump(&counters.bcast_msgs);
            } else {
                counters.bump(&counters.step_msgs);
            }
        }
        if plan_dirty {
            self.cached_plan_row = full_plan[0].clone();
        }
        if plugin_dirty {
            let specs = coord.writer_plugins.clone();
            self.install_plugins(&specs);
        }
        Ok(())
    }

    /// [`Self::send_chunks`] as a poll-driven step: sends stay
    /// synchronous (transport handoff is non-blocking unless a queue is
    /// full), with a yield after each reader's traffic so co-scheduled
    /// reader tasks get to drain; the sync-mode ack waits yield.
    async fn send_chunks_rt(&mut self, group: &ProcessGroup, step: u64) -> Result<(), StreamError> {
        let counters = Arc::clone(&self.link.counters);
        let monitor = self.link.monitor.clone();
        let plan_row = self.cached_plan_row.clone();
        for (r, chunks) in plan_row.iter().enumerate() {
            if chunks.is_empty() || self.link.is_evicted(r) {
                continue;
            }
            let mut encoded_chunks = Vec::with_capacity(chunks.len());
            for cp in chunks {
                let Some(value) = group.get(&cp.var) else {
                    return Err(StreamError::Protocol(format!(
                        "planned variable `{}` was not written this step",
                        cp.var
                    )));
                };
                let mut payload = redistribute::extract_chunk(value, cp);
                let mut extras: Vec<(String, VarValue)> = Vec::new();
                if cp.region.is_none() {
                    if let Some(plugin) = self.installed.get(&cp.var) {
                        let applied = monitor.timed(
                            MonitorEvent::PluginExec,
                            step,
                            self.rank,
                            payload.payload_bytes(),
                            || plugin.apply(&payload),
                        );
                        match applied {
                            Ok((v, e)) => {
                                payload = Cow::Owned(v);
                                extras = e;
                            }
                            Err(crate::plugins::PluginError::UnsupportedChunk(_)) => {}
                            Err(e) => {
                                return Err(StreamError::Protocol(format!(
                                    "writer-side plug-in failed: {e}"
                                )))
                            }
                        }
                    }
                }
                let body = match payload {
                    Cow::Owned(v) => v.into_record(),
                    Cow::Borrowed(v) => v.to_record(),
                };
                let mut cr = protocol::message(msg::CHUNK)
                    .with("step", FieldValue::U64(step))
                    .with("w", FieldValue::U64(self.rank as u64))
                    .with("var", FieldValue::Str(cp.var.clone()))
                    .with("body", FieldValue::Record(body));
                if !extras.is_empty() {
                    let mut er = Record::new().with("n", FieldValue::U64(extras.len() as u64));
                    for (i, (name, v)) in extras.iter().enumerate() {
                        er.set(&format!("name.{i}"), FieldValue::Str(name.clone()));
                        er.set(&format!("val.{i}"), FieldValue::Record(v.to_record()));
                    }
                    cr.set("extras", FieldValue::Record(er));
                }
                encoded_chunks.push(cr);
            }
            let tx = {
                let link = &self.link;
                let rank = self.rank;
                self.data_tx
                    .entry(r)
                    .or_insert_with(|| link.claim_sender(ChannelId::Data { w: rank, r }))
            };
            if self.hints.batching {
                let mut batch = protocol::message(msg::BATCH)
                    .with("step", FieldValue::U64(step))
                    .with("w", FieldValue::U64(self.rank as u64))
                    .with("n", FieldValue::U64(encoded_chunks.len() as u64));
                for (i, c) in encoded_chunks.into_iter().enumerate() {
                    batch.set(&format!("c.{i}"), FieldValue::Record(c));
                }
                if self.hints.packed_marshal {
                    let enc = batch.encode_segments();
                    monitor.record(
                        MonitorEvent::DataSend,
                        step,
                        self.rank,
                        enc.total_len() as u64,
                        0,
                    );
                    tx.send_vectored(&enc.as_slices());
                } else {
                    let flat = batch.encode_legacy();
                    monitor.record(MonitorEvent::DataSend, step, self.rank, flat.len() as u64, 0);
                    tx.send(&flat);
                }
                counters.bump(&counters.data_msgs);
            } else {
                for c in &encoded_chunks {
                    if self.hints.packed_marshal {
                        let enc = c.encode_segments();
                        monitor.record(
                            MonitorEvent::DataSend,
                            step,
                            self.rank,
                            enc.total_len() as u64,
                            0,
                        );
                        tx.send_vectored(&enc.as_slices());
                    } else {
                        let flat = c.encode_legacy();
                        monitor.record(
                            MonitorEvent::DataSend,
                            step,
                            self.rank,
                            flat.len() as u64,
                            0,
                        );
                        tx.send(&flat);
                    }
                    counters.bump(&counters.data_msgs);
                }
            }
            // One queue's worth of traffic is down the pipe: let the
            // reader tasks sharing this reactor drain before the next
            // reader's chunks (keeps bounded shm queues from filling
            // while their consumer is starved of poll rounds).
            flexio_reactor::yield_now().await;
        }
        if self.hints.write_mode == WriteMode::Sync {
            let readers_with_data: Vec<usize> = plan_row
                .iter()
                .enumerate()
                .filter(|(r, c)| !c.is_empty() && !self.link.is_evicted(*r))
                .map(|(r, _)| r)
                .collect();
            let monitor = self.link.monitor.clone();
            let start = std::time::Instant::now();
            let mut degraded = false;
            for r in readers_with_data {
                let rx = {
                    let link = &self.link;
                    let rank = self.rank;
                    self.ack_rx
                        .entry(r)
                        .or_insert_with(|| link.claim_receiver(ChannelId::Ack { w: rank, r }))
                };
                match recv_record_rt(rx, &self.hints, &counters).await {
                    Ok(ack) => {
                        if protocol::kind_of(&ack) != msg::ACK {
                            return Err(StreamError::Protocol("expected ack".to_string()));
                        }
                    }
                    Err(StreamError::Timeout) => {
                        degraded = true;
                        if self.link.evict_reader(r) {
                            counters.bump(&counters.evictions);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            if degraded {
                counters.bump(&counters.degraded_steps);
            }
            monitor.record(
                MonitorEvent::SyncWait,
                step,
                self.rank,
                0,
                start.elapsed().as_nanos() as u64,
            );
        }
        Ok(())
    }

    /// [`Self::commit_step_2pc`] as a poll-driven step.
    async fn commit_step_2pc_rt(&mut self, step: u64) -> Result<(), StreamError> {
        let hints = self.hints.clone();
        if self.rank != 0 {
            self.side_up
                .as_mut()
                .expect("non-coordinator has side_up")
                .send(&protocol::message("txn_sent").with("step", FieldValue::U64(step)).encode());
            let rx = self.side_down.as_mut().expect("non-coordinator has side_down");
            let decision = recv_record_rt(rx, &hints, &self.link.counters).await?;
            if protocol::kind_of(&decision) != msg::TXN_COMMIT {
                return Err(StreamError::Protocol("expected txn_commit".to_string()));
            }
            return Ok(());
        }
        let link = Arc::clone(&self.link);
        let nranks = self.nranks;
        let coord = self.coord.as_mut().expect("rank 0 is coordinator");
        for r in 1..nranks {
            let rx = coord.from_ranks[r].get_or_insert_with(|| {
                link.claim_receiver(ChannelId::WriterSide { rank: r, up: true })
            });
            let sent = recv_record_rt(rx, &hints, &link.counters).await?;
            if protocol::kind_of(&sent) != "txn_sent" {
                return Err(StreamError::Protocol("expected txn_sent".to_string()));
            }
        }
        coord.ctrl_tx.as_mut().expect("ctrl claimed").send(
            &protocol::message(msg::TXN_PREPARE).with("step", FieldValue::U64(step)).encode(),
        );
        link.counters.bump(&link.counters.step_msgs);
        let vote = coord
            .ctrl_in
            .as_mut()
            .expect("ctrl claimed")
            .recv_expect_rt(&[msg::TXN_VOTE], &hints)
            .await?;
        let ok = vote.get_u64("ok") == Some(1);
        coord.ctrl_tx.as_mut().expect("ctrl claimed").send(
            &protocol::message(msg::TXN_COMMIT)
                .with("step", FieldValue::U64(step))
                .with("ok", FieldValue::U64(u64::from(ok)))
                .encode(),
        );
        link.counters.bump(&link.counters.step_msgs);
        for r in 1..nranks {
            let tx = coord.to_ranks[r].get_or_insert_with(|| {
                link.claim_sender(ChannelId::WriterSide { rank: r, up: false })
            });
            tx.send(
                &protocol::message(msg::TXN_COMMIT).with("step", FieldValue::U64(step)).encode(),
            );
        }
        if !ok {
            return Err(StreamError::Protocol(format!("reader voted abort for step {step}")));
        }
        Ok(())
    }
}

impl WriteEngine for StreamWriter {
    fn begin_step(&mut self, step: u64) {
        assert!(!self.closed, "stream already closed");
        assert!(self.current.is_none(), "begin_step without end_step");
        self.current = Some(ProcessGroup::new(self.rank, step));
    }

    fn write(&mut self, name: &str, value: VarValue) {
        self.current.as_mut().expect("write outside begin_step/end_step").push(name, value);
    }

    fn end_step(&mut self) {
        self.try_end_step().expect("stream end_step failed");
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.close_notify();
    }
}

impl StreamWriter {
    /// Kill this writer without the end-of-stream courtesy message —
    /// exactly what an abrupt process death looks like to the reader
    /// side. Readers coupled with `eos_on_silence` drain whatever steps
    /// already arrived and then see a synthesized EOS; others surface
    /// [`StreamError::Timeout`]. Test/chaos API.
    pub fn abandon(mut self) {
        self.closed = true; // Drop::close() becomes a no-op
    }

    fn close_notify(&mut self) {
        if self.rank == 0 {
            if let Some(coord) = self.coord.as_mut() {
                // A reader may never have attached (stream never used);
                // only then is there no one to notify.
                if coord.ctrl_tx.is_none()
                    && self.link.wait_reader_info(std::time::Duration::from_millis(0)).is_some()
                {
                    coord.ctrl_tx = Some(self.link.claim_sender(ChannelId::ControlToReader));
                }
                if let Some(tx) = coord.ctrl_tx.as_mut() {
                    tx.send(&protocol::message(msg::EOS).encode());
                    self.link.counters.bump(&self.link.counters.step_msgs);
                }
            }
        }
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        // Ensure readers observe end-of-stream even on early drop.
        self.close();
    }
}

// ------------------------------------------------------- shared encoders

pub(crate) fn encode_subscriptions(subs: &[Subscription]) -> Record {
    let mut r = Record::new().with("n", FieldValue::U64(subs.len() as u64));
    for (i, s) in subs.iter().enumerate() {
        r.set(&format!("s.{i}"), FieldValue::Record(s.to_record()));
    }
    r
}

pub(crate) fn decode_subscriptions(r: &Record) -> Option<Vec<Subscription>> {
    let n = r.get_u64("n")? as usize;
    (0..n).map(|i| Subscription::from_record(r.get_record(&format!("s.{i}"))?)).collect()
}

pub(crate) fn encode_plugin_specs(specs: &[PluginSpec]) -> Record {
    let mut r = Record::new().with("n", FieldValue::U64(specs.len() as u64));
    for (i, s) in specs.iter().enumerate() {
        r.set(&format!("p.{i}"), FieldValue::Record(s.to_record()));
    }
    r
}

pub(crate) fn decode_plugin_specs(r: &Record) -> Option<Vec<PluginSpec>> {
    let n = r.get_u64("n")? as usize;
    (0..n).map(|i| PluginSpec::from_record(r.get_record(&format!("p.{i}"))?)).collect()
}
