//! Protocol vocabulary: caching levels, write modes, message schemas and
//! the instrumentation counters that make handshake behaviour observable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evpath::{FieldValue, Record};

/// Handshake caching options (paper §II.C.2):
///
/// "i) NO_CACHING: perform the full handshaking protocol; ii)
/// CACHING_LOCAL: re-use local side distribution information (skip Steps
/// 1), but still exchange distribution information with peer side (perform
/// Step 2 to 4); iii) CACHING_ALL: re-use both local and peer sides'
/// distribution data, so that handshaking is completely avoided."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachingLevel {
    /// Full handshake every step.
    #[default]
    NoCaching,
    /// Skip the local gather (Step 1) after the first step.
    CachingLocal,
    /// Skip the whole handshake after the first step.
    CachingAll,
}

impl CachingLevel {
    /// Parse the hint string used in the XML config.
    pub fn from_hint(s: &str) -> Option<CachingLevel> {
        Some(match s {
            "NO_CACHING" => CachingLevel::NoCaching,
            "CACHING_LOCAL" => CachingLevel::CachingLocal,
            "CACHING_ALL" => CachingLevel::CachingAll,
            _ => return None,
        })
    }
}

/// Write-side call semantics (§II.C.2, first optimization): synchronous
/// writes wait until every receiver has taken delivery (acked);
/// asynchronous writes return once the data is handed to the transport,
/// overlapping movement with the simulation's computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Wait for per-reader acknowledgements at each step.
    Sync,
    /// Fire and forget (the transports buffer).
    #[default]
    Async,
}

/// Counters for every protocol message class; shared between both sides
/// of a stream so tests and the monitoring layer can verify claims like
/// "CACHING_ALL avoids the handshake entirely".
#[derive(Debug, Default)]
pub struct ProtocolCounters {
    /// Step-1 messages: rank → coordinator distribution gathers.
    pub gather_msgs: AtomicU64,
    /// Step-2 messages: coordinator ↔ coordinator exchanges.
    pub exchange_msgs: AtomicU64,
    /// Step-3 messages: coordinator → rank broadcasts.
    pub bcast_msgs: AtomicU64,
    /// Step-4 messages: actual data chunks/batches.
    pub data_msgs: AtomicU64,
    /// Per-step step-header control messages (stream liveness/EOS channel;
    /// not part of the 4-step variable handshake).
    pub step_msgs: AtomicU64,
    /// Synchronous-mode acknowledgements.
    pub ack_msgs: AtomicU64,
    /// Plug-in deployment/migration messages.
    pub plugin_msgs: AtomicU64,
    // -- resiliency counters (not part of `snapshot()`, which existing
    //    tests index positionally; see `resilience_snapshot()`) --
    /// Control-channel receive attempts that timed out and were retried.
    pub retries: AtomicU64,
    /// Duplicate sequence numbers discarded by the dedup layer.
    pub dup_msgs: AtomicU64,
    /// Out-of-order messages healed by reassembly buffering.
    pub reorder_healed: AtomicU64,
    /// Sequence gaps given up on (messages written off as lost).
    pub drops_observed: AtomicU64,
    /// End-of-stream markers synthesized after writer silence.
    pub eos_synthesized: AtomicU64,
    /// Readers evicted from the stream after repeated ack timeouts.
    pub evictions: AtomicU64,
    /// Steps completed in degraded form (some reader evicted/skipped).
    pub degraded_steps: AtomicU64,
    // -- transport-readiness counters (fed by the `poll_recv` contract;
    //    queried directly, not part of either positional snapshot) --
    /// Frames the transport consumed but could not validate (shm corrupt
    /// control frames). Previously indistinguishable from silence.
    pub corrupt_frames: AtomicU64,
    /// Receive waits cut short because the peer endpoint was observed
    /// closed (queue drained + sending half dropped).
    pub closed_channels: AtomicU64,
}

impl ProtocolCounters {
    /// Fresh shared counter block.
    pub fn new_shared() -> Arc<ProtocolCounters> {
        Arc::new(ProtocolCounters::default())
    }

    /// Bump a counter.
    pub fn bump(&self, which: &AtomicU64) {
        which.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as plain numbers `(gather, exchange, bcast, data, step,
    /// ack, plugin)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.gather_msgs.load(Ordering::Relaxed),
            self.exchange_msgs.load(Ordering::Relaxed),
            self.bcast_msgs.load(Ordering::Relaxed),
            self.data_msgs.load(Ordering::Relaxed),
            self.step_msgs.load(Ordering::Relaxed),
            self.ack_msgs.load(Ordering::Relaxed),
            self.plugin_msgs.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the resiliency counters as plain numbers `(retries,
    /// dup_msgs, reorder_healed, drops_observed, eos_synthesized,
    /// evictions, degraded_steps)`.
    pub fn resilience_snapshot(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.retries.load(Ordering::Relaxed),
            self.dup_msgs.load(Ordering::Relaxed),
            self.reorder_healed.load(Ordering::Relaxed),
            self.drops_observed.load(Ordering::Relaxed),
            self.eos_synthesized.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.degraded_steps.load(Ordering::Relaxed),
        )
    }

    /// Handshake messages only (steps 1–3).
    pub fn handshake_total(&self) -> u64 {
        self.gather_msgs.load(Ordering::Relaxed)
            + self.exchange_msgs.load(Ordering::Relaxed)
            + self.bcast_msgs.load(Ordering::Relaxed)
    }
}

/// Per-shard instrumentation of the directory service (one block per
/// lock stripe): how much registration/lookup traffic the shard served
/// and how often its lock was contended. The whole point of sharding the
/// registry is to spread this traffic — tests and the directory bench
/// read these to verify the spread actually happened.
#[derive(Debug, Default)]
pub struct DirectoryCounters {
    /// Successful registrations handled by this shard.
    pub registrations: AtomicU64,
    /// Successful lookups (blocking or `try_lookup` hits) served.
    pub lookups: AtomicU64,
    /// Unregisters (tombstones written) handled.
    pub unregisters: AtomicU64,
    /// Lock acquisitions that found the shard mutex already held and had
    /// to wait — the contention a single-map directory suffers on every
    /// concurrent caller, and striping is meant to eliminate.
    pub contended: AtomicU64,
}

impl DirectoryCounters {
    /// Snapshot as plain numbers `(registrations, lookups, unregisters,
    /// contended)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.registrations.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
            self.unregisters.load(Ordering::Relaxed),
            self.contended.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------- wire

/// Message type tags on the control and data channels.
pub mod msg {
    /// Step header: writer coordinator → reader coordinator.
    pub const STEP: &str = "step";
    /// End of stream.
    pub const EOS: &str = "eos";
    /// Writer-side distribution metadata (exchange leg 1).
    pub const WRITER_INFO: &str = "writer_info";
    /// Reader-side selections (+ plugin specs) (exchange leg 2).
    pub const READER_INFO: &str = "reader_info";
    /// A data chunk (one variable region).
    pub const CHUNK: &str = "chunk";
    /// A batched set of chunks.
    pub const BATCH: &str = "batch";
    /// Synchronous-mode acknowledgement.
    pub const ACK: &str = "ack";
    /// Plug-in installation/migration update.
    pub const PLUGIN_UPDATE: &str = "plugin_update";
    /// 2PC: prepare a step.
    pub const TXN_PREPARE: &str = "txn_prepare";
    /// 2PC: participant vote.
    pub const TXN_VOTE: &str = "txn_vote";
    /// 2PC: commit decision.
    pub const TXN_COMMIT: &str = "txn_commit";
}

/// Build a typed message skeleton.
pub fn message(kind: &str) -> Record {
    Record::new().with("type", FieldValue::Str(kind.to_string()))
}

/// Read the message type tag.
pub fn kind_of(r: &Record) -> &str {
    r.get_str("type").unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_hint_parsing() {
        assert_eq!(CachingLevel::from_hint("NO_CACHING"), Some(CachingLevel::NoCaching));
        assert_eq!(CachingLevel::from_hint("CACHING_LOCAL"), Some(CachingLevel::CachingLocal));
        assert_eq!(CachingLevel::from_hint("CACHING_ALL"), Some(CachingLevel::CachingAll));
        assert_eq!(CachingLevel::from_hint("bogus"), None);
    }

    #[test]
    fn counters_accumulate() {
        let c = ProtocolCounters::new_shared();
        c.bump(&c.gather_msgs);
        c.bump(&c.gather_msgs);
        c.bump(&c.data_msgs);
        let (g, e, b, d, ..) = c.snapshot();
        assert_eq!((g, e, b, d), (2, 0, 0, 1));
        assert_eq!(c.handshake_total(), 2);
    }

    #[test]
    fn message_tagging() {
        let m = message(msg::STEP).with("step", FieldValue::U64(4));
        assert_eq!(kind_of(&m), "step");
        let round = Record::decode(&m.encode()).unwrap();
        assert_eq!(kind_of(&round), "step");
        assert_eq!(round.get_u64("step"), Some(4));
    }
}
