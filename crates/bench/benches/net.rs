//! **Socket transport** — raw channel throughput of the three byte
//! transports a coupling can ride: the lock-free shared-memory queue,
//! loopback TCP, and Unix-domain sockets, swept over payload size.
//!
//! Each configuration pushes `msgs` frames of `payload_bytes` from a
//! sender thread while the main thread drains the receiving half through
//! the `poll_recv` readiness contract — the same nonblocking path the
//! reactor runtime drives in production. The numbers answer the placement
//! question the socket transport raises: what does crossing a real
//! process boundary (TCP/UDS framing + kernel copies) cost relative to
//! the intra-node shm path?
//!
//! Results land in `BENCH_net.json` at the repo root; the summary JSON is
//! printed to stdout (one line, machine-parsable). Run with
//! `cargo bench --bench net`; set `NET_QUICK=1` for a smoke-sized sweep.

use std::thread;
use std::time::Instant;

use evpath::socket::socket_pair;
use evpath::{RecvPoll, ShmTransport, SocketKind};

const KIB: usize = 1 << 10;
const MIB: usize = 1 << 20;

struct RunResult {
    payload_bytes: usize,
    transport: &'static str,
    msgs: u64,
    elapsed_s: f64,
}

impl RunResult {
    fn gbps(&self) -> f64 {
        (self.msgs as f64 * self.payload_bytes as f64) / self.elapsed_s / 1e9
    }

    fn msgs_per_s(&self) -> f64 {
        self.msgs as f64 / self.elapsed_s
    }
}

/// Untimed frames pushed through each channel before the clock starts, so
/// thread spawn, first-touch page faults, and queue setup don't bill the
/// first measured frame (at quick-mode counts they dominate otherwise).
const WARMUP_MSGS: u64 = 8;

/// Push `msgs` frames of `payload_bytes` through one channel; the drain
/// runs on the caller's thread via the readiness poll. The clock starts
/// after `WARMUP_MSGS` untimed frames have made the round trip and stops
/// at the last measured frame received.
fn run_channel(transport: &'static str, payload_bytes: usize, msgs: u64) -> f64 {
    let (mut tx, mut rx) = match transport {
        "shm" => ShmTransport::pair(64, 64 * KIB),
        "tcp" => socket_pair(SocketKind::Tcp),
        "uds" => socket_pair(SocketKind::Uds),
        other => panic!("unknown transport {other}"),
    };
    let payload = vec![0xA5u8; payload_bytes];
    let sender = thread::spawn(move || {
        for _ in 0..WARMUP_MSGS + msgs {
            tx.send(&payload);
        }
        tx // keep the half alive until the drain is done
    });
    let mut warmed = 0u64;
    while warmed < WARMUP_MSGS {
        match rx.poll_recv() {
            RecvPoll::Msg(_) => warmed += 1,
            RecvPoll::Empty => std::hint::spin_loop(),
            RecvPoll::Closed => panic!("{transport} channel closed during warmup"),
            RecvPoll::Corrupt(why) => panic!("{transport} corrupt warmup frame: {why}"),
        }
    }
    let start = Instant::now();
    let mut received = 0u64;
    while received < msgs {
        match rx.poll_recv() {
            RecvPoll::Msg(m) => {
                assert_eq!(m.len(), payload_bytes, "frame arrived whole");
                received += 1;
            }
            RecvPoll::Empty => std::hint::spin_loop(),
            RecvPoll::Closed => panic!("{transport} channel closed mid-bench"),
            RecvPoll::Corrupt(why) => panic!("{transport} corrupt frame: {why}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(sender.join().expect("sender thread"));
    elapsed
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        println!("net: skipped under test harness");
        return;
    }
    let quick = std::env::var("NET_QUICK").is_ok();
    // (payload bytes, messages) — counts scale down with size so every
    // configuration moves a comparable total volume.
    let sizes: Vec<(usize, u64)> = vec![
        (4 * KIB, if quick { 10_000 } else { 40_000 }),
        (64 * KIB, if quick { 2_000 } else { 8_000 }),
        (MIB, if quick { 250 } else { 1_000 }),
        (8 * MIB, if quick { 40 } else { 120 }),
    ];
    // Short quick-mode runs sit inside the window where loopback TCP
    // throughput is bimodal (slow-start / delayed-ACK interplay), so the
    // regression gate takes the best of two passes there.
    let passes = if quick { 2 } else { 1 };

    let mut results: Vec<RunResult> = Vec::new();
    for &(payload_bytes, msgs) in &sizes {
        for transport in ["shm", "tcp", "uds"] {
            let elapsed_s = (0..passes)
                .map(|_| run_channel(transport, payload_bytes, msgs))
                .fold(f64::INFINITY, f64::min);
            let r = RunResult { payload_bytes, transport, msgs, elapsed_s };
            eprintln!(
                "net: {:>9} B  {:4}  {:10.0} msgs/s  {:7.3} GB/s",
                r.payload_bytes,
                r.transport,
                r.msgs_per_s(),
                r.gbps()
            );
            results.push(r);
        }
    }

    let best_of = |t: &str| {
        results
            .iter()
            .filter(|r| r.transport == t && r.payload_bytes == 8 * MIB)
            .map(RunResult::gbps)
            .fold(0.0f64, f64::max)
    };
    let (shm_8m, tcp_8m, uds_8m) = (best_of("shm"), best_of("tcp"), best_of("uds"));

    let mut rep = bench::report::Report::new("net").obj(
        "gbps_8mib",
        bench::report::Obj::new().f64("shm", shm_8m, 4).f64("tcp", tcp_8m, 4).f64("uds", uds_8m, 4),
    );
    for r in &results {
        rep.push(
            bench::report::Obj::new()
                .u64("payload_bytes", r.payload_bytes as u64)
                .str("transport", r.transport)
                .u64("msgs", r.msgs)
                .f64("elapsed_s", r.elapsed_s, 6)
                .f64("msgs_per_s", r.msgs_per_s(), 3)
                .f64("gbps", r.gbps(), 4),
        );
    }
    rep.write();
    eprintln!("net: 8 MiB frames: shm {shm_8m:.2} / tcp {tcp_8m:.2} / uds {uds_8m:.2} GB/s");
}
