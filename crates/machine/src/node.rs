//! Compute-node architecture description.

use crate::cache::CacheParams;

/// Location of one core inside the machine, used as the unit of placement
/// (paper §III maps each process/thread to one core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreLocation {
    /// Compute-node index.
    pub node: usize,
    /// NUMA domain index within the node.
    pub numa: usize,
    /// Core index within the NUMA domain.
    pub core: usize,
}

impl CoreLocation {
    /// True if both cores are on the same compute node.
    pub fn same_node(&self, other: &CoreLocation) -> bool {
        self.node == other.node
    }

    /// True if both cores share a NUMA domain (and hence, on the modelled
    /// machines, the same L3 cache).
    pub fn same_numa(&self, other: &CoreLocation) -> bool {
        self.node == other.node && self.numa == other.numa
    }
}

/// Per-node architecture parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeParams {
    /// Number of NUMA domains per node.
    pub numa_domains: usize,
    /// Cores per NUMA domain.
    pub cores_per_numa: usize,
    /// Core clock in GHz (drives instruction-time conversion in `dessim`).
    pub clock_ghz: f64,
    /// Shared last-level cache per NUMA domain.
    pub l3: CacheParams,
    /// Total DRAM per node, bytes.
    pub dram_bytes: u64,
    /// Sustained memory copy bandwidth within a NUMA domain, bytes/sec.
    /// This bounds the shared-memory transport (paper §II.D: two copies).
    pub local_copy_bw: f64,
    /// Sustained memory copy bandwidth across NUMA domains, bytes/sec
    /// (lower than local; drives the NUMA buffer-pinning policy §III.B.3).
    pub remote_copy_bw: f64,
    /// Latency of a small shared-memory queue transfer, nanoseconds.
    pub shm_latency_ns: f64,
}

impl NodeParams {
    /// Total cores in the node.
    pub fn cores_per_node(&self) -> usize {
        self.numa_domains * self.cores_per_numa
    }

    /// Enumerate all core locations of node `node`.
    pub fn cores_of_node(&self, node: usize) -> Vec<CoreLocation> {
        let mut out = Vec::with_capacity(self.cores_per_node());
        for numa in 0..self.numa_domains {
            for core in 0..self.cores_per_numa {
                out.push(CoreLocation { node, numa, core });
            }
        }
        out
    }

    /// Flatten a core location to a machine-wide linear index.
    pub fn linear_index(&self, loc: CoreLocation) -> usize {
        loc.node * self.cores_per_node() + loc.numa * self.cores_per_numa + loc.core
    }

    /// Inverse of [`NodeParams::linear_index`].
    pub fn location_of(&self, linear: usize) -> CoreLocation {
        let per_node = self.cores_per_node();
        let node = linear / per_node;
        let within = linear % per_node;
        CoreLocation {
            node,
            numa: within / self.cores_per_numa,
            core: within % self.cores_per_numa,
        }
    }

    /// NUMA domain of a machine-wide linear core index (node-relative:
    /// the domain index within that core's own node). The fleet's
    /// shard→core→domain assignment is built from this.
    pub fn numa_of_linear(&self, linear: usize) -> usize {
        self.location_of(linear).numa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeParams {
        NodeParams {
            numa_domains: 4,
            cores_per_numa: 4,
            clock_ghz: 2.0,
            l3: CacheParams::barcelona_l3(),
            dram_bytes: 32 << 30,
            local_copy_bw: 4e9,
            remote_copy_bw: 2e9,
            shm_latency_ns: 200.0,
        }
    }

    #[test]
    fn linear_index_roundtrip() {
        let n = sample();
        for i in 0..64 {
            assert_eq!(n.linear_index(n.location_of(i)), i);
        }
    }

    #[test]
    fn cores_of_node_enumerates_all() {
        let n = sample();
        let cores = n.cores_of_node(3);
        assert_eq!(cores.len(), 16);
        assert!(cores.iter().all(|c| c.node == 3));
        assert_eq!(cores[5], CoreLocation { node: 3, numa: 1, core: 1 });
    }

    #[test]
    fn numa_sharing_predicates() {
        let a = CoreLocation { node: 0, numa: 1, core: 0 };
        let b = CoreLocation { node: 0, numa: 1, core: 3 };
        let c = CoreLocation { node: 0, numa: 2, core: 0 };
        let d = CoreLocation { node: 1, numa: 1, core: 0 };
        assert!(a.same_numa(&b));
        assert!(a.same_node(&c) && !a.same_numa(&c));
        assert!(!a.same_node(&d));
    }
}
