//! **Fig. 9** — "S3D_Box Performance Tuning": Total Execution Time of
//! S3D_Box + parallel volume rendering across placements and scales.
//!
//! Run: `cargo run --release -p bench --bin fig9 [--machine titan]`

use dessim::{s3d_outcome, Placement, S3dScale};
use placement::PolicyKind;

fn main() {
    let machine = bench::machine_arg();
    let scales: Vec<usize> = if machine.name == "titan" {
        vec![512, 1024, 2048, 4096]
    } else {
        vec![128, 256, 512, 1024]
    };
    let placements = [
        Placement::Inline,
        Placement::Hybrid,
        Placement::Staging(PolicyKind::Holistic),
        Placement::Staging(PolicyKind::TopologyAware),
        Placement::LowerBound,
    ];
    let columns: Vec<String> = scales.iter().map(|c| c.to_string()).collect();
    let rows: Vec<(String, Vec<f64>)> = placements
        .iter()
        .map(|&p| {
            let values = scales
                .iter()
                .map(|&cores| {
                    let scale = S3dScale { machine: machine.clone(), sim_cores: cores, steps: 20 };
                    s3d_outcome(&scale, p).total_s
                })
                .collect();
            (p.label(), values)
        })
        .collect();
    bench::print_table(
        &format!("Fig. 9 — S3D_Box Total Execution Time (s) on {} vs cores", machine.name),
        &columns,
        &rows,
        0,
    );

    let inline = &rows[0].1;
    let staging = &rows[3].1;
    let lb = &rows[4].1;
    let improvement = 1.0 - staging.last().unwrap() / inline.last().unwrap();
    let gap = staging.last().unwrap() / lb.last().unwrap() - 1.0;
    println!(
        "\nat {} cores: staging beats inline by {:.1}% (paper: up to 19% Smoky / 30% Titan)\n\
         and sits {:.1}% above the lower bound (paper: 5.1% Smoky / 3.6% Titan)",
        scales.last().unwrap(),
        improvement * 100.0,
        gap * 100.0
    );
}
