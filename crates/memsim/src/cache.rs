//! Set-associative LRU cache simulator.

use machine::CacheParams;

/// Hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheSimStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (including cold misses).
    pub misses: u64,
}

impl CacheSimStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One cache set: ways ordered most- to least-recently used.
/// Tags are full line addresses (address / line size), so aliasing across
/// sets is impossible.
struct Set {
    ways: Vec<u64>,
}

/// A set-associative LRU cache fed by byte addresses.
pub struct CacheSim {
    params: CacheParams,
    sets: Vec<Set>,
    set_mask: u64,
    line_shift: u32,
    stats: CacheSimStats,
}

impl CacheSim {
    /// Build a cache from parameters. The set count must be a power of two
    /// (true for all real caches modelled here).
    pub fn new(params: CacheParams) -> CacheSim {
        let sets = params.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        assert!(params.line_bytes.is_power_of_two());
        CacheSim {
            params,
            sets: (0..sets)
                .map(|_| Set { ways: Vec::with_capacity(params.associativity as usize) })
                .collect(),
            set_mask: sets - 1,
            line_shift: params.line_bytes.trailing_zeros(),
            stats: CacheSimStats::default(),
        }
    }

    /// Parameters this cache was built from.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Access one byte address; returns `true` on hit. LRU replacement.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.ways.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = set.ways.remove(pos);
            set.ways.insert(0, tag);
            self.stats.hits += 1;
            true
        } else {
            if set.ways.len() == self.params.associativity as usize {
                set.ways.pop(); // evict LRU
            }
            set.ways.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheSimStats {
        self.stats
    }

    /// Reset counters (keeps cache contents — useful to skip warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheSimStats::default();
    }

    /// Lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.ways.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheSim {
        // 8 KiB, 4-way, 64 B lines => 32 sets.
        CacheSim::new(CacheParams {
            size_bytes: 8 * 1024,
            associativity: 4,
            line_bytes: 64,
            hit_latency_ns: 1.0,
            miss_penalty_ns: 10.0,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x1000)); // cold miss
        assert!(c.access(0x1000));
        assert!(c.access(0x1010)); // same line
        assert_eq!(c.stats(), CacheSimStats { hits: 2, misses: 1 });
    }

    #[test]
    fn working_set_fitting_in_cache_hits_after_warmup() {
        let mut c = small_cache();
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect(); // 4 KiB
        for &a in &lines {
            c.access(a);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_exceeding_cache_thrashes() {
        let mut c = small_cache();
        // 16 KiB round-robin over an 8 KiB cache: with LRU, every access
        // misses once warmed (classic cyclic-thrash behaviour).
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect();
        for _ in 0..2 {
            for &a in &lines {
                c.access(a);
            }
        }
        c.reset_stats();
        for &a in &lines {
            c.access(a);
        }
        assert_eq!(c.stats().miss_ratio(), 1.0);
    }

    #[test]
    fn associativity_conflicts() {
        let mut c = small_cache(); // 32 sets, 4 ways
                                   // 5 lines mapping to the same set (stride = sets * line = 2048).
        let conflicting: Vec<u64> = (0..5).map(|i| i * 2048).collect();
        for _ in 0..3 {
            for &a in &conflicting {
                c.access(a);
            }
        }
        // 5 lines into 4 ways with cyclic access: all miss after warmup.
        c.reset_stats();
        for &a in &conflicting {
            assert!(!c.access(a));
        }
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = small_cache();
        let hot = 0u64;
        let cold: Vec<u64> = (1..4).map(|i| i * 2048).collect(); // same set as hot
        c.access(hot);
        for _ in 0..10 {
            // Touch hot between cold accesses: must stay resident.
            for &a in &cold {
                c.access(a);
                assert!(c.access(hot), "hot line was evicted");
            }
        }
    }

    #[test]
    fn resident_lines_bounded_by_capacity() {
        let mut c = small_cache();
        for i in 0..10_000 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() as u64 <= c.params().lines());
    }
}
