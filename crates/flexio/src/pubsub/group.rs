//! The consumer side: a [`ReaderGroup`] is an [`adios::ReadEngine`]
//! whose steps come off a [`StreamLog`] cursor (same process) or a
//! [`SpillTail`] (another process, through the durable spill files),
//! with memory → spill → live-tail transitions invisible to the caller.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adios::hyperslab::{copy_region, BoxSel};
use adios::{ArrayData, LocalBlock, ProcessGroup, ReadEngine, Selection, StepStatus, VarValue};
use parking_lot::Mutex;

use super::log::{Fetch, SealedStep, StreamLog};
use super::spill::SpillTail;
use super::{GroupCounters, Qos};
use crate::directory::DirectoryService;
use crate::link::{StreamError, StreamHints};

enum Source {
    /// Cursor into an in-process [`StreamLog`].
    Local(Arc<StreamLog>),
    /// Cross-process tail over the spill directory.
    Tail(Box<SpillTail>),
}

/// One named reader group: an independent cursor over a pub/sub stream
/// with its own QoS and counters. Implements [`ReadEngine`], so any
/// analytics loop written against the ADIOS step API consumes a fan-out
/// stream unchanged.
pub struct ReaderGroup {
    source: Source,
    group: String,
    recv_timeout: Duration,
    retries: u32,
    eos_on_silence: bool,
    current: Option<Arc<SealedStep>>,
    counters: Arc<GroupCounters>,
    registration: Option<(Arc<dyn DirectoryService>, String)>,
    closed: bool,
}

impl ReaderGroup {
    /// Attach `group` to an in-process log, registering (or resuming)
    /// its cursor.
    pub fn attach(
        log: Arc<StreamLog>,
        group: &str,
        qos: Option<Qos>,
        hints: &StreamHints,
    ) -> Result<ReaderGroup, StreamError> {
        let (counters, _cursor) = log.register_group(group, qos);
        Ok(ReaderGroup {
            source: Source::Local(log),
            group: group.to_string(),
            recv_timeout: hints.recv_timeout,
            retries: hints.retries,
            eos_on_silence: hints.eos_on_silence,
            current: None,
            counters,
            registration: None,
            closed: false,
        })
    }

    /// Attach `group` to the spill directory of `stream` under `root` —
    /// the cross-process path a late joiner or a restarted (`kill -9`)
    /// group takes; it resumes from its durable cursor.
    pub fn tail(
        root: &std::path::Path,
        stream: &str,
        group: &str,
        qos: Qos,
        hints: &StreamHints,
    ) -> Result<ReaderGroup, StreamError> {
        let tail = SpillTail::attach(root, stream, group, qos, hints)?;
        let counters = tail.counters();
        Ok(ReaderGroup {
            source: Source::Tail(Box::new(tail)),
            group: group.to_string(),
            recv_timeout: hints.recv_timeout,
            retries: hints.retries,
            eos_on_silence: hints.eos_on_silence,
            current: None,
            counters,
            registration: None,
            closed: false,
        })
    }

    /// This group's shared delivery counters.
    pub fn counters(&self) -> Arc<GroupCounters> {
        Arc::clone(&self.counters)
    }

    /// Group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Remember a directory registration to drop at close.
    pub(crate) fn with_registration(
        mut self,
        dir: Arc<dyn DirectoryService>,
        key: String,
    ) -> ReaderGroup {
        self.registration = Some((dir, key));
        self
    }

    /// One non-blocking poll of the cursor.
    fn poll(&mut self) -> Result<Fetch, StreamError> {
        match &mut self.source {
            Source::Local(log) => log.try_fetch(&self.group),
            Source::Tail(tail) => tail.try_fetch(),
        }
    }

    fn take_step(&mut self, fetch: Fetch) -> Option<StepStatus> {
        let sealed = match fetch {
            Fetch::Step(s) | Fetch::Spilled(s) | Fetch::Skipped { step: s, .. } => s,
            Fetch::Eos { .. } => return Some(StepStatus::EndOfStream),
            Fetch::Pending => return None,
        };
        let step = sealed.step;
        self.current = Some(sealed);
        Some(StepStatus::Step(step))
    }

    fn synthesize_eos(&mut self) -> StepStatus {
        self.counters.eos_synthesized.fetch_add(1, Ordering::Relaxed);
        if let Source::Tail(tail) = &mut self.source {
            tail.note_synthesized_eos();
        }
        StepStatus::EndOfStream
    }

    /// Advance to the next step with the timeout-and-retry discipline of
    /// [`crate::StreamReader`]: attempt `i` waits `recv_timeout << min(i,
    /// 3)`, and exhausted budgets either synthesize end-of-stream
    /// (`eos_on_silence`, the crashed-writer posture) or surface
    /// [`StreamError::Timeout`].
    pub fn try_begin_step(&mut self) -> Result<StepStatus, StreamError> {
        assert!(self.current.is_none(), "begin_step without end_step");
        let mut backoff = flexio_reactor::Backoff::new();
        for attempt in 0..=self.retries {
            let deadline = Instant::now() + self.recv_timeout * (1u32 << attempt.min(3));
            loop {
                let fetch = self.poll()?;
                if let Some(status) = self.take_step(fetch) {
                    return Ok(status);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                backoff.snooze_capped(deadline - now);
            }
        }
        if self.eos_on_silence {
            return Ok(self.synthesize_eos());
        }
        Err(StreamError::Timeout)
    }

    /// Async mirror of [`Self::try_begin_step`] for reactor/fleet tasks.
    pub async fn try_begin_step_rt(&mut self) -> Result<StepStatus, StreamError> {
        assert!(self.current.is_none(), "begin_step without end_step");
        for attempt in 0..=self.retries {
            let deadline = Instant::now() + self.recv_timeout * (1u32 << attempt.min(3));
            let mut pacing = flexio_reactor::Pacing::new();
            loop {
                let fetch = self.poll()?;
                if let Some(status) = self.take_step(fetch) {
                    return Ok(status);
                }
                if Instant::now() >= deadline {
                    break;
                }
                pacing.pause(Some(deadline)).await;
            }
        }
        if self.eos_on_silence {
            return Ok(self.synthesize_eos());
        }
        Err(StreamError::Timeout)
    }

    /// Digest of the step currently open (None outside a step). The
    /// fan-out equivalence tests compare these across groups, backends
    /// and replay sources.
    pub fn current_step_digest(&self) -> Option<u64> {
        self.current.as_ref().map(|s| s.digest())
    }

    /// The raw process groups of the step currently open.
    pub fn current_groups(&self) -> Option<&Arc<Vec<ProcessGroup>>> {
        self.current.as_ref().map(|s| &s.groups)
    }

    fn commit(&mut self, next: u64) {
        match &mut self.source {
            Source::Local(log) => log.commit(&self.group, next),
            Source::Tail(tail) => tail.commit(next),
        }
    }

    /// Convert into a delivery task: a `Send` future that drains the
    /// stream to end-of-stream (committing after every step) plus a
    /// handle exposing the per-step digests, completion flag and any
    /// error — the unit [`crate::FleetRuntime::spawn_reader_group`]
    /// places near the consuming analytics.
    pub fn into_task(mut self) -> (GroupTaskHandle, impl std::future::Future<Output = ()> + Send) {
        let state = Arc::new(TaskState {
            steps: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
            error: Mutex::new(None),
            counters: Arc::clone(&self.counters),
        });
        let shared = Arc::clone(&state);
        let task = async move {
            loop {
                match self.try_begin_step_rt().await {
                    Ok(StepStatus::Step(step)) => {
                        let digest = self.current_step_digest().expect("open step has a digest");
                        shared.steps.lock().push((step, digest));
                        self.end_step();
                    }
                    Ok(StepStatus::EndOfStream) => break,
                    Err(e) => {
                        *shared.error.lock() = Some(e);
                        break;
                    }
                }
            }
            self.close();
            shared.done.store(true, Ordering::Release);
        };
        (GroupTaskHandle { state }, task)
    }
}

impl ReadEngine for ReaderGroup {
    fn begin_step(&mut self) -> StepStatus {
        self.try_begin_step().expect("pub/sub step fetch failed")
    }

    fn read(&mut self, name: &str, sel: &Selection) -> Option<VarValue> {
        let sealed = self.current.as_ref().expect("read outside begin_step/end_step");
        assemble(&sealed.groups, name, sel)
    }

    fn end_step(&mut self) {
        let sealed = self.current.take().expect("end_step without begin_step");
        self.commit(sealed.seq + 1);
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.current = None;
        if let Some((dir, key)) = self.registration.take() {
            dir.unregister(&key);
        }
    }
}

/// Assemble one variable of a sealed step under a selection, mirroring
/// [`adios::FileReadEngine`] semantics (and [`adios::bp::BpFile::read_box`]
/// for the global-box path).
fn assemble(groups: &[ProcessGroup], name: &str, sel: &Selection) -> Option<VarValue> {
    match sel {
        Selection::ProcessGroup(rank) => {
            groups.iter().find(|g| g.rank == *rank)?.get(name).cloned()
        }
        Selection::Scalar => groups.iter().find_map(|g| match g.get(name) {
            Some(v @ VarValue::Scalar(_)) => Some(v.clone()),
            _ => None,
        }),
        Selection::GlobalBox(sel) => {
            let mut out: Option<LocalBlock> = None;
            for g in groups {
                let Some(VarValue::Block(block)) = g.get(name) else { continue };
                let out = out.get_or_insert_with(|| LocalBlock {
                    global_shape: block.global_shape.clone(),
                    offset: sel.offset.clone(),
                    count: sel.count.clone(),
                    data: ArrayData::zeros(block.data.data_type(), sel.num_elements() as usize),
                });
                assert_eq!(
                    out.global_shape, block.global_shape,
                    "inconsistent global shape for `{name}`"
                );
                let block_box = BoxSel::new(block.offset.clone(), block.count.clone());
                if let Some(region) = block_box.intersect(sel) {
                    copy_region(block, out, &region);
                }
            }
            out.map(VarValue::Block)
        }
    }
}

struct TaskState {
    steps: Mutex<Vec<(u64, u64)>>,
    done: AtomicBool,
    error: Mutex<Option<StreamError>>,
    counters: Arc<GroupCounters>,
}

/// Observer handle for a reader group running as a reactor/fleet task.
#[derive(Clone)]
pub struct GroupTaskHandle {
    state: Arc<TaskState>,
}

impl GroupTaskHandle {
    /// `(step, digest)` pairs delivered so far, in delivery order.
    pub fn steps(&self) -> Vec<(u64, u64)> {
        self.state.steps.lock().clone()
    }

    /// The task drained to end-of-stream (or failed) and closed.
    pub fn is_done(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    /// The error that stopped delivery, if any.
    pub fn error(&self) -> Option<StreamError> {
        self.state.error.lock().clone()
    }

    /// The group's shared counters.
    pub fn counters(&self) -> Arc<GroupCounters> {
        Arc::clone(&self.state.counters)
    }
}
