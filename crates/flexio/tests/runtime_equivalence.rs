//! Backend equivalence: the reactor runtime must be protocol-invisible.
//! The same coupled program, the same fault seed, the same data — run once
//! on the blocking thread-per-stream backend and once on the poll-driven
//! reactor backend — must land on byte-identical protocol counters, fault
//! schedules and application data. The runtime hint may only change *how*
//! the engines wait, never *what* they say on the wire.

mod common;

use std::sync::Arc;

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::{block_1d, couple};
use evpath::{FaultPlan, FaultSpec};
use flexio::{CachingLevel, Runtime, StreamHints};

/// Everything about a run that must be backend-independent. `retries` is
/// timing dependent (how often a wait loop wakes before the message lands
/// differs between a parked thread and a paced poll) and is deliberately
/// excluded; every protocol message, fault decision and healing action is
/// not.
#[derive(Debug, PartialEq)]
struct RunSignature {
    protocol: (u64, u64, u64, u64, u64, u64, u64),
    dup_msgs: u64,
    reorder_healed: u64,
    drops_observed: u64,
    eos_synthesized: u64,
    evictions: u64,
    faults: (u64, u64, u64, u64, u64, u64, u64),
    data: Vec<Vec<f64>>,
}

fn run_once(seed: u64, runtime: Runtime) -> RunSignature {
    const STEPS: u64 = 3;
    let mut plan = FaultPlan::new(seed);
    plan.set(
        "data",
        FaultSpec { dup_per_mille: 500, reorder_per_mille: 500, ..Default::default() },
    );
    let plan = Arc::new(plan);
    let hints = StreamHints {
        caching: CachingLevel::CachingAll,
        faults: Some(Arc::clone(&plan)),
        runtime,
        ..StreamHints::default()
    };
    let (links, reads) = couple(
        3,
        2,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 12));
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        },
        move |mut r, rank| {
            let my_box = BoxSel::new(vec![rank as u64 * 6], vec![6]);
            r.subscribe("field", Selection::GlobalBox(my_box.clone()));
            let mut seen: Vec<f64> = Vec::new();
            loop {
                match r.begin_step() {
                    StepStatus::Step(_) => {
                        let v = r.read("field", &Selection::GlobalBox(my_box.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        seen.extend_from_slice(b.data.as_f64());
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            seen
        },
    );
    let (_retries, dup_msgs, reorder_healed, drops_observed, eos_synthesized, evictions, _) =
        links[0].counters.resilience_snapshot();
    RunSignature {
        protocol: links[0].counters.snapshot(),
        dup_msgs,
        reorder_healed,
        drops_observed,
        eos_synthesized,
        evictions,
        faults: plan.counters().snapshot(),
        data: reads,
    }
}

#[test]
fn reactor_backend_matches_blocking_backend_byte_for_byte() {
    let seed =
        std::env::var("FLEXIO_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBACCE4D);
    let blocking = run_once(seed, Runtime::Blocking);
    let reactor = run_once(seed, Runtime::Reactor);
    assert_eq!(
        blocking, reactor,
        "seed {seed}: the runtime hint changed observable protocol behavior"
    );
    // Non-vacuous: the equivalence must hold *through* an active fault
    // schedule, not on a quiet channel.
    let (_, duplicated, reordered, ..) = blocking.faults;
    assert!(duplicated + reordered > 0, "seed {seed} injected nothing");
}

#[test]
fn runtime_hint_parses_and_defaults_sanely() {
    assert_eq!(Runtime::from_hint("reactor"), Some(Runtime::Reactor));
    assert_eq!(Runtime::from_hint("blocking"), Some(Runtime::Blocking));
    assert_eq!(Runtime::from_hint("thread"), Some(Runtime::Blocking));
    assert_eq!(Runtime::from_hint("fibers"), None);
}
