//! **Fig. 8** — "Last Level Cache Miss Rates of GTS on Smoky": L3 misses
//! per thousand instructions for GTS solo vs GTS sharing its L3 with
//! helper-core analytics, reproduced on the `memsim` set-associative
//! cache simulator.
//!
//! Run: `cargo run --release -p bench --bin fig8 [--machine titan]`

use dessim::gts_corun_mpki;

fn main() {
    let machine = bench::machine_arg();
    let result = gts_corun_mpki(&machine, 1_500_000);
    println!(
        "Fig. 8 — GTS L3 misses per 1K instructions on {} ({} MiB shared L3)",
        machine.name,
        machine.node.l3.size_bytes >> 20
    );
    println!("{:<56} {:>10}", "configuration", "L3 MPKI");
    println!("{:<56} {:>10.3}", "GTS (3 OpenMP threads) solo", result.solo_mpki);
    println!(
        "{:<56} {:>10.3}",
        "GTS (3 OpenMP threads) with analytics on helper core", result.corun_mpki
    );
    println!("{:<56} {:>10.3}", "  (the analytics' own streaming MPKI)", result.analytics_mpki);
    println!(
        "\nGTS suffers {:.0}% more L3 misses when co-running (paper: 47%).",
        result.inflation() * 100.0
    );
}
