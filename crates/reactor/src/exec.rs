//! The cooperative executor.
//!
//! One [`Reactor`] owns N per-stream state machines (plain `Future`s —
//! the async transcription of the writer/reader engine protocol) and
//! drives them all from the calling thread. Each loop iteration:
//!
//! 1. sweep the [`TimerWheel`] so expired sleeps become runnable;
//! 2. poll every live task once (cooperative round-robin — there are
//!    no wakers wired to the poll-only transports, so polling *is* the
//!    readiness check);
//! 3. if nothing progressed, park: until the wheel's next deadline when
//!    one exists, else by [`Backoff`] escalation.
//!
//! Futures communicate with the enclosing reactor through a
//! thread-local context: [`sleep_until`] registers its deadline in the
//! wheel, [`note_progress`] keeps the loop hot after useful work, and
//! [`yield_now`] marks the task runnable-again-immediately.
//! Everything also works *outside* a reactor ([`block_on`]-free use
//! from a plain thread would be a bug, but the sleep/yield futures
//! degrade to time checks), which keeps the engine code runtime-agnostic.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use crate::backoff::Backoff;
use crate::wheel::{TimerId, TimerWheel};

struct Cx {
    wheel: TimerWheel,
    /// Set by futures when they did useful work (received a message,
    /// finished a protocol phase) or want an immediate re-poll.
    progressed: bool,
    /// Application-level units of work (protocol steps) completed since
    /// the executor last harvested the counter — the fleet's per-shard
    /// steps/s signal.
    steps: u64,
}

thread_local! {
    static CX: RefCell<Option<Cx>> = const { RefCell::new(None) };
}

/// True while the calling thread is inside a [`Reactor::run`] or
/// [`block_on`] loop — i.e. the timer wheel is available.
pub fn in_reactor() -> bool {
    CX.with(|cx| cx.borrow().is_some())
}

/// Tell the executor this round did useful work, so it keeps polling
/// hot instead of parking. Call after a successful non-blocking receive
/// or any other externally-visible progress.
pub fn note_progress() {
    CX.with(|cx| {
        if let Some(cx) = cx.borrow_mut().as_mut() {
            cx.progressed = true;
        }
    });
}

/// Tell the executor one application-level unit of work (a protocol
/// step) completed. The engines call this when a step commits; a
/// [`crate::ReactorFleet`] harvests the count per poll round into its
/// per-shard steps/s counter, which is what the rebalancer weighs.
/// Implies [`note_progress`]. A no-op outside a reactor.
pub fn note_step() {
    CX.with(|cx| {
        if let Some(cx) = cx.borrow_mut().as_mut() {
            cx.steps += 1;
            cx.progressed = true;
        }
    });
}

/// Take-and-clear the step counter accumulated by [`note_step`] since
/// the last harvest. Fleet-internal.
pub(crate) fn take_steps() -> u64 {
    CX.with(|cx| {
        cx.borrow_mut().as_mut().map_or(0, |cx| {
            let n = cx.steps;
            cx.steps = 0;
            n
        })
    })
}

/// The wheel's next deadline, if any — how long a worker may park.
/// Fleet-internal.
pub(crate) fn next_wheel_deadline() -> Option<Instant> {
    CX.with(|cx| cx.borrow().as_ref().and_then(|cx| cx.wheel.next_deadline()))
}

fn with_wheel<R>(f: impl FnOnce(&mut TimerWheel) -> R) -> Option<R> {
    CX.with(|cx| cx.borrow_mut().as_mut().map(|cx| f(&mut cx.wheel)))
}

/// Clears the thread-local context on scope exit (including panics), so
/// a poisoned reactor doesn't wedge the thread for the next one.
pub(crate) struct CxGuard;

impl CxGuard {
    pub(crate) fn enter() -> CxGuard {
        CX.with(|cx| {
            let mut cx = cx.borrow_mut();
            assert!(
                cx.is_none(),
                "nested reactor: block_on/run called from inside a reactor task \
                 (use the *_rt async variants instead of the blocking wrappers)"
            );
            *cx = Some(Cx { wheel: TimerWheel::default(), progressed: false, steps: 0 });
        });
        CxGuard
    }
}

impl Drop for CxGuard {
    fn drop(&mut self) {
        CX.with(|cx| *cx.borrow_mut() = None);
    }
}

/// Sweep the wheel, take-and-clear the progress flag.
pub(crate) fn idle_round() -> bool {
    CX.with(|cx| {
        let mut cx = cx.borrow_mut();
        let cx = cx.as_mut().expect("reactor context");
        let fired = cx.wheel.advance(Instant::now());
        let progressed = cx.progressed || fired > 0;
        cx.progressed = false;
        !progressed
    })
}

/// Park until the next wheel deadline, or escalate `backoff` when the
/// wheel is empty (tasks are polling something that isn't a timer).
fn park(backoff: &mut Backoff) {
    let deadline = CX.with(|cx| cx.borrow().as_ref().and_then(|cx| cx.wheel.next_deadline()));
    match deadline {
        Some(d) => {
            let nap = d.saturating_duration_since(Instant::now());
            if nap.is_zero() {
                return; // already due — re-poll immediately
            }
            backoff.snooze_capped(nap);
        }
        None => backoff.snooze(),
    }
}

/// A single-threaded cooperative executor. See the module docs.
#[derive(Default)]
pub struct Reactor {
    tasks: Vec<Option<Pin<Box<dyn Future<Output = ()>>>>>,
}

impl Reactor {
    /// An executor with no tasks.
    pub fn new() -> Self {
        Reactor { tasks: Vec::new() }
    }

    /// Queue a task. Tasks only make progress inside [`run`](Self::run).
    /// `'static` but deliberately *not* `Send`: every task stays on the
    /// reactor's one thread, so captures may be `Rc`/`RefCell`.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        self.tasks.push(Some(Box::pin(fut)));
    }

    /// Number of tasks not yet run to completion.
    pub fn pending(&self) -> usize {
        self.tasks.iter().filter(|t| t.is_some()).count()
    }

    /// Drive every spawned task to completion on the calling thread.
    pub fn run(&mut self) {
        let _guard = CxGuard::enter();
        let waker = Waker::noop();
        let mut ctx = Context::from_waker(waker);
        let mut backoff = Backoff::new();
        loop {
            let mut live = 0usize;
            let mut finished = false;
            for slot in &mut self.tasks {
                if let Some(task) = slot {
                    match task.as_mut().poll(&mut ctx) {
                        Poll::Ready(()) => {
                            *slot = None;
                            finished = true;
                        }
                        Poll::Pending => live += 1,
                    }
                }
            }
            if live == 0 {
                self.tasks.clear();
                return;
            }
            if finished || !idle_round() {
                backoff.reset();
            } else {
                park(&mut backoff);
            }
        }
    }
}

/// Drive one future to completion on the calling thread, with a private
/// timer wheel. This is how the blocking `StreamWriter`/`StreamReader`
/// API runs on the reactor backend: each protocol call becomes a
/// short-lived single-task event loop, so the caller's thread *is* the
/// reactor for the duration of the call.
///
/// Panics if called from inside a running reactor (tasks must use the
/// async engine variants directly instead of the blocking wrappers).
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let _guard = CxGuard::enter();
    let waker = Waker::noop();
    let mut ctx = Context::from_waker(waker);
    let mut fut = std::pin::pin!(fut);
    let mut backoff = Backoff::new();
    loop {
        if let Poll::Ready(out) = fut.as_mut().poll(&mut ctx) {
            return out;
        }
        if idle_round() {
            park(&mut backoff);
        } else {
            backoff.reset();
        }
    }
}

/// Sleep until `deadline`. Registers a wheel entry so the executor
/// knows how long it may park; completion is checked against the clock
/// on each poll (there are no wakers).
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline, timer: None }
}

/// Sleep for `dur`. See [`sleep_until`].
pub fn sleep(dur: Duration) -> Sleep {
    sleep_until(Instant::now() + dur)
}

/// Future returned by [`sleep`] / [`sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    timer: Option<TimerId>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _ctx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            if let Some(id) = self.timer.take() {
                with_wheel(|w| w.cancel(id));
            }
            return Poll::Ready(());
        }
        if self.timer.is_none() {
            let deadline = self.deadline;
            self.timer = with_wheel(|w| w.insert(deadline));
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // Cancelled sleeps (future dropped early) must not keep waking
        // the executor.
        if let Some(id) = self.timer.take() {
            with_wheel(|w| w.cancel(id));
        }
    }
}

/// Yield to the other tasks on this reactor once, staying runnable.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _ctx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // A yielded task is still runnable: keep the loop hot.
            note_progress();
            Poll::Pending
        }
    }
}

/// The async analogue of [`Backoff`]: paces a poll loop by yielding to
/// the reactor's other tasks first (a round-robin sweep is itself a
/// wait), then by short wheel sleeps that double up to a cap — so an
/// idle stream's receive loop converges to ~1 kHz wheel entries instead
/// of monopolising the executor.
#[derive(Debug)]
pub struct Pacing {
    rounds: u32,
}

/// Poll rounds served by bare yields before sleeping between polls.
const PACING_YIELDS: u32 = 8;
/// First inter-poll sleep; doubles per round up to [`PACING_MAX`].
const PACING_MIN: Duration = Duration::from_micros(50);
/// Longest inter-poll sleep.
const PACING_MAX: Duration = Duration::from_millis(1);

impl Pacing {
    /// A fresh pacing strategy, starting in the yield regime.
    pub fn new() -> Self {
        Pacing { rounds: 0 }
    }

    /// Forget accumulated idleness — call on every received message.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }

    /// Wait once, escalating yield → short sleep across calls. Never
    /// sleeps past `cap` when one is given (e.g. a retry deadline).
    pub async fn pause(&mut self, cap: Option<Instant>) {
        let round = self.rounds;
        self.rounds = self.rounds.saturating_add(1);
        if round < PACING_YIELDS {
            yield_now().await;
            return;
        }
        let exp = (round - PACING_YIELDS).min(6);
        let mut nap = (PACING_MIN * 2u32.pow(exp)).min(PACING_MAX);
        if let Some(cap) = cap {
            nap = nap.min(cap.saturating_duration_since(Instant::now()));
        }
        if nap.is_zero() {
            yield_now().await;
        } else {
            sleep(nap).await;
        }
    }
}

impl Default for Pacing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
        assert!(!in_reactor(), "context must be torn down");
    }

    #[test]
    fn sleeps_complete_and_wheel_parks() {
        let t0 = Instant::now();
        block_on(async {
            sleep(Duration::from_millis(5)).await;
        });
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn many_tasks_interleave_on_one_thread() {
        // Two tasks ping-pong through a shared cell: neither can finish
        // without the other being polled in between, proving the
        // round-robin actually interleaves.
        let turn = Rc::new(Cell::new(0u32));
        let mut r = Reactor::new();
        for me in 0..2u32 {
            let turn = Rc::clone(&turn);
            r.spawn(async move {
                for _ in 0..100 {
                    while turn.get() % 2 != me {
                        yield_now().await;
                    }
                    turn.set(turn.get() + 1);
                }
            });
        }
        r.run();
        assert_eq!(turn.get(), 200);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut r = Reactor::new();
        for (label, ms) in [("slow", 12u64), ("fast", 2), ("mid", 6)] {
            let order = Rc::clone(&order);
            r.spawn(async move {
                sleep(Duration::from_millis(ms)).await;
                order.borrow_mut().push(label);
            });
        }
        r.run();
        assert_eq!(*order.borrow(), vec!["fast", "mid", "slow"]);
    }

    #[test]
    #[should_panic(expected = "nested reactor")]
    fn nested_block_on_panics() {
        block_on(async {
            block_on(async {});
        });
    }
}
