//! Multi-node directory coverage: a 3-node gossip-replicated cluster
//! converging under a seeded fault plan that drops inter-node frames,
//! tombstone propagation, re-registration after a tombstone, failover
//! when the fault schedule kills a node, the serve loops running as
//! tasks on one explicit reactor, and the trait-object API spanning all
//! three backends.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use evpath::{FaultPlan, FaultSpec};
use flexio::link::LinkState;
use flexio::plugins::PluginPlacement;
use flexio::{
    DirectoryCluster, DirectoryError, DirectoryService, InProcDirectory, MonitorEvent,
    PlacementManager, ShardedDirectory,
};

fn dummy_link() -> Arc<LinkState> {
    LinkState::for_tests()
}

/// Poll `cond` until it holds or `budget` elapses.
fn eventually(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn three_nodes_converge_while_dropping_gossip_frames() {
    // The acceptance scenario: a seeded fault plan drops >10% of every
    // gossip channel's frames, yet each node ends up serving lookups for
    // names registered at every other node — anti-entropy just re-sends
    // the digest next round.
    let mut plan = FaultPlan::new(42);
    plan.set("gossip", FaultSpec { drop_per_mille: 150, ..Default::default() });
    let plan = Arc::new(plan);
    let cluster = DirectoryCluster::new(3, 8, Duration::from_millis(1), Some(Arc::clone(&plan)));
    let _driver = cluster.spawn_driver();

    let links: Vec<Arc<LinkState>> = (0..3).map(|_| dummy_link()).collect();
    for (i, link) in links.iter().enumerate() {
        cluster.handle(i).register(&format!("stream/{i}"), Arc::clone(link)).unwrap();
    }
    for served_by in 0..3 {
        let handle = cluster.handle(served_by);
        for (registered_at, link) in links.iter().enumerate() {
            let found = handle
                .lookup(&format!("stream/{registered_at}"), Duration::from_secs(5))
                .unwrap_or_else(|e| {
                    panic!("node {served_by} must serve stream/{registered_at}: {e:?}")
                });
            assert!(Arc::ptr_eq(link, &found), "the replicated contact is the original");
        }
    }
    // The plan really was lossy: frames vanished, and more digests were
    // shipped than delivered.
    let dropped = plan.counters().snapshot().0;
    assert!(dropped > 0, "the seeded plan must have dropped gossip frames");
    let sent: u64 = (0..3).map(|i| cluster.node(i).gossip_counters().snapshot().1).sum();
    let received: u64 = (0..3).map(|i| cluster.node(i).gossip_counters().snapshot().2).sum();
    assert!(received < sent, "drops must be visible in the traffic counters");
    assert!(received > 0, "and yet digests got through");
    // Each registration was counted once cluster-wide despite replication.
    assert_eq!(cluster.handle(0).registration_count(), 3);
}

#[test]
fn tombstones_propagate_and_reregistration_overrides_them() {
    let cluster = DirectoryCluster::new(3, 4, Duration::from_millis(1), None);
    let _driver = cluster.spawn_driver();

    cluster.handle(0).register("s", dummy_link()).unwrap();
    cluster.handle(2).lookup("s", Duration::from_secs(2)).unwrap();

    // Unregister at a *different* node than the registrar: the tombstone
    // must beat the replicated live entry everywhere.
    assert!(cluster.handle(2).unregister("s"));
    assert!(
        eventually(Duration::from_secs(2), || (0..3)
            .all(|i| cluster.handle(i).try_lookup("s").is_none())),
        "the tombstone must reach every node"
    );

    // Re-registration at a third node bumps past the tombstone version
    // and wins everywhere, with the new contact.
    let second = dummy_link();
    cluster.handle(1).register("s", Arc::clone(&second)).unwrap();
    for i in 0..3 {
        let found = cluster.handle(i).lookup("s", Duration::from_secs(2)).unwrap();
        assert!(Arc::ptr_eq(&second, &found), "node {i} must serve the re-registered contact");
    }
}

#[test]
fn fault_schedule_kills_a_node_and_handles_fail_over() {
    // dirnode:0 dies after 5 gossip rounds — purely from the seeded
    // schedule, nobody calls kill(). A handle bound to it keeps working
    // by failing over, and entries registered before the death survive
    // on the remaining nodes.
    let mut plan = FaultPlan::new(7);
    plan.set("dirnode:0", FaultSpec { crash_sender_after: Some(5), ..Default::default() });
    let plan = Arc::new(plan);
    let cluster = DirectoryCluster::new(3, 4, Duration::from_millis(1), Some(plan));
    let _driver = cluster.spawn_driver();

    let dir = cluster.handle(0);
    dir.register("early", dummy_link()).unwrap();
    cluster.handle(1).lookup("early", Duration::from_secs(2)).unwrap();
    assert!(
        eventually(Duration::from_secs(2), || !cluster.node(0).is_alive()),
        "the fault schedule must kill node 0"
    );

    dir.register("late", dummy_link()).unwrap();
    assert_ne!(dir.bound_node(), 0, "the handle must have failed over off the dead node");
    dir.lookup("early", Duration::from_secs(2)).unwrap();
    dir.lookup("late", Duration::from_secs(2)).unwrap();
    // The survivors replicate to each other but never to the corpse.
    cluster.handle(2).lookup("late", Duration::from_secs(2)).unwrap();
    assert!(cluster.node(0).store().try_lookup("late").is_none());
}

#[test]
fn serve_loops_run_as_tasks_on_one_explicit_reactor() {
    // No spawn_driver: the test owns the reactor, spawning every node's
    // serve loop onto it the way a staging node would alongside its
    // stream couplings — three gossiping nodes, one OS thread.
    let cluster = DirectoryCluster::new(3, 4, Duration::from_millis(1), None);
    let tasks: Vec<_> = (0..3).map(|i| cluster.serve_task(i)).collect();
    let reactor_thread = thread::spawn(move || {
        let mut reactor = flexio_reactor::Reactor::new();
        for task in tasks {
            reactor.spawn(task);
        }
        reactor.run();
    });

    cluster.handle(1).register("on-reactor", dummy_link()).unwrap();
    for i in 0..3 {
        cluster.handle(i).lookup("on-reactor", Duration::from_secs(2)).unwrap();
    }
    cluster.shutdown();
    reactor_thread.join().unwrap();
    assert!(cluster.node(0).gossip_counters().snapshot().0 > 0, "node 0 gossiped on the reactor");
}

#[test]
fn trait_object_api_spans_every_backend() {
    // The redesigned API's core promise: callers hold Arc<dyn
    // DirectoryService> and never know which backend serves them. The
    // placement manager's decide_stream runs unchanged against all three.
    let cluster = DirectoryCluster::new(2, 4, Duration::from_millis(1), None);
    let backends: Vec<(&str, Arc<dyn DirectoryService>)> = vec![
        ("in-proc", Arc::new(InProcDirectory::new())),
        ("sharded", Arc::new(ShardedDirectory::new(8))),
        ("replicated", Arc::new(cluster.spawn_driver())),
    ];
    for (kind, dir) in backends {
        let link = dummy_link();
        link.monitor.record(MonitorEvent::DataSend, 0, 0, 64 << 20, 0);
        dir.register("managed", Arc::clone(&link)).unwrap();
        assert!(Arc::ptr_eq(&link, &dir.lookup("managed", Duration::from_secs(1)).unwrap()));

        let mut mgr = PlacementManager::builder()
            .initial_placement(PluginPlacement::ReaderSide)
            .build_manager();
        let rec = mgr.decide_stream(dir.as_ref(), "managed", 0).unwrap();
        assert_eq!(rec.placement, PluginPlacement::WriterSide, "{kind}: heavy wire ⇒ writer side");
        assert!(matches!(
            mgr.decide_stream(dir.as_ref(), "missing", 0),
            Err(DirectoryError::LookupTimeout(_))
        ));

        assert!(dir.unregister("managed"), "{kind}");
        assert!(dir.try_lookup("managed").is_none(), "{kind}");
        assert_eq!(dir.registration_count(), 1, "{kind}");
    }
}
