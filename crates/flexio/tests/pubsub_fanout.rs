//! Fan-out equivalence: one writer, four reader groups, three delivery
//! backends — blocking threads, a single-threaded [`Reactor`], and a
//! [`FleetRuntime`] — must hand every group the byte-identical step
//! sequence (probed by [`flexio::step_digest`]), both on a clean run and
//! under a seeded fault plan that crashes the writer mid-stream.
//!
//! [`Reactor`]: flexio_reactor::Reactor

use std::sync::Arc;
use std::time::Duration;

use adios::{ArrayData, LocalBlock, ScalarValue, StepStatus, VarValue, WriteEngine};
use evpath::{FaultPlan, FaultSpec};
use flexio::{FleetRuntime, FlexIo, PubSubConfig, ReaderGroup, StreamHints};
use machine::laptop;

const GROUPS: usize = 4;
const STEPS: u64 = 9;
const CRASH_AFTER: u64 = 6;
const ELEMS: u64 = 8;

fn seed() -> u64 {
    std::env::var("FLEXIO_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBACCE4D)
}

fn crash_plan(seed: u64) -> Arc<FaultPlan> {
    let mut plan = FaultPlan::new(seed);
    plan.set(
        "pubsub:pub",
        FaultSpec { crash_sender_after: Some(CRASH_AFTER), ..Default::default() },
    );
    Arc::new(plan)
}

fn hints(plan: Option<&Arc<FaultPlan>>) -> StreamHints {
    StreamHints {
        recv_timeout: Duration::from_millis(400),
        retries: 1,
        faults: plan.map(Arc::clone),
        ..StreamHints::default()
    }
}

fn group_names() -> Vec<String> {
    (0..GROUPS).map(|g| format!("g{g}")).collect()
}

/// Publish `STEPS` steps (a block plus a scalar each; the fault plan may
/// cut this short) and close.
fn publish(mut w: flexio::StepPublisher) {
    for step in 0..STEPS {
        w.begin_step(step);
        let data: Vec<f64> = (0..ELEMS).map(|e| (step * 100 + e) as f64).collect();
        w.write(
            "u",
            VarValue::Block(
                LocalBlock {
                    global_shape: vec![ELEMS],
                    offset: vec![0],
                    count: vec![ELEMS],
                    data: ArrayData::F64(data),
                }
                .validated(),
            ),
        );
        w.write("t", VarValue::Scalar(ScalarValue::F64(step as f64 * 0.5)));
        w.end_step();
    }
    w.close();
}

/// Drain one group synchronously into its `(step, digest)` trace.
fn drain_sync(mut r: ReaderGroup) -> Vec<(u64, u64)> {
    let mut trace = Vec::new();
    loop {
        match r.try_begin_step().expect("begin_step") {
            StepStatus::Step(step) => {
                let digest = r.current_step_digest().expect("open step has a digest");
                trace.push((step, digest));
                adios::ReadEngine::end_step(&mut r);
            }
            StepStatus::EndOfStream => break,
        }
    }
    adios::ReadEngine::close(&mut r);
    trace
}

/// Blocking backend: writer thread + one consumer thread per group.
fn run_blocking(stream: &str, plan: Option<&Arc<FaultPlan>>) -> Vec<Vec<(u64, u64)>> {
    let io = FlexIo::single_node(laptop());
    publishers_first(&io, stream, plan, |groups| {
        let handles: Vec<_> =
            groups.into_iter().map(|r| std::thread::spawn(move || drain_sync(r))).collect();
        handles.into_iter().map(|h| h.join().expect("group thread")).collect()
    })
}

/// Reactor backend: all four groups are futures multiplexed on one
/// single-threaded reactor; the writer runs on a plain thread.
fn run_reactor(stream: &str, plan: Option<&Arc<FaultPlan>>) -> Vec<Vec<(u64, u64)>> {
    let io = FlexIo::single_node(laptop());
    publishers_first(&io, stream, plan, |groups| {
        let mut reactor = flexio_reactor::Reactor::new();
        let handles: Vec<_> = groups
            .into_iter()
            .map(|r| {
                let (handle, task) = r.into_task();
                reactor.spawn(task);
                handle
            })
            .collect();
        reactor.run();
        handles
            .into_iter()
            .map(|h| {
                assert!(h.is_done(), "reactor drained the task");
                assert_eq!(h.error(), None, "no delivery error");
                h.steps()
            })
            .collect()
    })
}

/// Fleet backend: each group is spawned near a distinct core of a
/// four-worker [`FleetRuntime`].
fn run_fleet(stream: &str, plan: Option<&Arc<FaultPlan>>) -> Vec<Vec<(u64, u64)>> {
    let io = FlexIo::single_node(laptop());
    publishers_first(&io, stream, plan, |groups| {
        let fleet = FleetRuntime::new(&laptop(), 4);
        let handles: Vec<_> = groups
            .into_iter()
            .enumerate()
            .map(|(g, r)| {
                let core = laptop().node.location_of(g % laptop().node.cores_per_node());
                fleet.spawn_reader_group(r, &[core])
            })
            .collect();
        fleet.join();
        handles
            .into_iter()
            .map(|h| {
                assert!(h.is_done(), "fleet drained the task");
                assert_eq!(h.error(), None, "no delivery error");
                h.steps()
            })
            .collect()
    })
}

/// Shared harness: attach every group before the first step is
/// published, run the writer to completion (or its scheduled crash), and
/// hand the attached groups to the backend-specific drain.
fn publishers_first<F>(
    io: &FlexIo,
    stream: &str,
    plan: Option<&Arc<FaultPlan>>,
    drain: F,
) -> Vec<Vec<(u64, u64)>>
where
    F: FnOnce(Vec<ReaderGroup>) -> Vec<Vec<(u64, u64)>>,
{
    // The publisher must exist before groups can look the stream up;
    // groups attach before the first step so nothing is evicted unseen
    // (the default 64-step ring retains all 9 steps anyway).
    let cfg = PubSubConfig { groups: GROUPS, ..PubSubConfig::default() };
    let setup = hints(plan);
    let w = io.open_publisher(stream, 0, 1, &cfg, setup.clone()).expect("open publisher");
    let groups: Vec<ReaderGroup> = group_names()
        .iter()
        .map(|g| io.open_reader_group(stream, g, None, setup.clone()).expect("open group"))
        .collect();

    let writer = std::thread::spawn(move || publish(w));
    let traces = drain(groups);
    writer.join().expect("writer thread");
    traces
}

#[test]
fn four_groups_share_one_byte_identical_stream_on_every_backend() {
    let blocking = run_blocking("fan-clean-b", None);
    let reactor = run_reactor("fan-clean-r", None);
    let fleet = run_fleet("fan-clean-f", None);

    let reference = &blocking[0];
    assert_eq!(reference.len() as u64, STEPS, "every published step delivered");
    assert_eq!(
        reference.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        (0..STEPS).collect::<Vec<_>>(),
        "in publication order"
    );
    for (backend, traces) in [("blocking", &blocking), ("reactor", &reactor), ("fleet", &fleet)] {
        assert_eq!(traces.len(), GROUPS);
        for (g, trace) in traces.iter().enumerate() {
            assert_eq!(trace, reference, "{backend} group {g} diverged from the reference");
        }
    }
}

#[test]
fn crashed_writer_drains_identically_across_backends() {
    let seed = seed();
    let backends = [
        ("blocking", run_blocking("fan-crash-b", Some(&crash_plan(seed)))),
        ("reactor", run_reactor("fan-crash-r", Some(&crash_plan(seed)))),
        ("fleet", run_fleet("fan-crash-f", Some(&crash_plan(seed)))),
    ];
    let reference = &backends[0].1[0];
    assert_eq!(
        reference.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        (0..CRASH_AFTER).collect::<Vec<_>>(),
        "exactly the steps sealed before the crash are delivered"
    );
    for (backend, traces) in &backends {
        for (g, trace) in traces.iter().enumerate() {
            assert_eq!(trace, reference, "{backend} group {g} diverged after writer crash");
        }
    }
}

#[test]
fn crash_fault_is_accounted_once_per_run() {
    let plan = crash_plan(seed());
    let _ = run_blocking("fan-acct", Some(&plan));
    assert_eq!(
        plan.counters().crashed_sends.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the scheduled writer crash fires exactly once"
    );
}
