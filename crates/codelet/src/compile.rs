//! AST → bytecode compiler.
//!
//! The compiled [`Program`] is the artifact FlexIO "installs" into a
//! process. Variables resolve to numbered slots at compile time; builtin
//! calls resolve to table indices; `&&`/`||` compile to short-circuit
//! jumps (plug-ins routinely guard indexing with `i < len(v) && v[i] > t`).

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::parser::{parse, ParseError};
use crate::vm::builtin_index;

/// Literal constants referenced by the bytecode.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push constant-pool entry.
    PushConst(u16),
    /// Push a variable slot's value.
    LoadVar(u16),
    /// Pop into a variable slot.
    StoreVar(u16),
    /// Binary arithmetic/comparison ops pop two, push one.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical not.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `array[index]` — pops index then array, pushes element.
    Index,
    /// `array[index] = value` — pops value, index, array.
    IndexStore,
    /// Call builtin `id` with `argc` stack arguments.
    Call {
        /// Builtin table index.
        id: u16,
        /// Argument count.
        argc: u8,
    },
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a bool; jump if false.
    JumpIfFalse(u32),
    /// Pop a bool; jump if true.
    JumpIfTrue(u32),
    /// Duplicate top of stack.
    Dup,
    /// Discard top of stack.
    Pop,
    /// Stop execution.
    Halt,
}

/// A compiled codelet program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Bytecode.
    pub instructions: Vec<Instr>,
    /// Constant pool.
    pub constants: Vec<Const>,
    /// Number of variable slots to allocate.
    pub num_slots: usize,
}

/// Compilation error.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Reference to a variable never `let`-bound.
    UndefinedVariable(String),
    /// Call to a function not in the builtin table.
    UnknownFunction(String),
    /// More than 65k constants/variables (plug-ins are "lightweight").
    TooLarge(&'static str),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::UndefinedVariable(n) => write!(f, "undefined variable `{n}`"),
            CompileError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            CompileError::TooLarge(what) => write!(f, "codelet too large: too many {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Compile source to a [`Program`].
pub fn compile(source: &str) -> Result<Program, CompileError> {
    let stmts = parse(source)?;
    let mut c = Compiler::default();
    c.block(&stmts)?;
    c.emit(Instr::Halt);
    Ok(Program {
        instructions: c.instructions,
        constants: c.constants,
        num_slots: c.slots.len() + c.hidden_slots,
    })
}

#[derive(Default)]
struct Compiler {
    instructions: Vec<Instr>,
    constants: Vec<Const>,
    slots: HashMap<String, u16>,
    hidden_slots: usize,
}

impl Compiler {
    fn emit(&mut self, i: Instr) -> usize {
        self.instructions.push(i);
        self.instructions.len() - 1
    }

    fn here(&self) -> u32 {
        self.instructions.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.instructions[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn constant(&mut self, c: Const) -> Result<u16, CompileError> {
        if let Some(idx) = self.constants.iter().position(|k| k == &c) {
            return Ok(idx as u16);
        }
        if self.constants.len() >= u16::MAX as usize {
            return Err(CompileError::TooLarge("constants"));
        }
        self.constants.push(c);
        Ok((self.constants.len() - 1) as u16)
    }

    fn slot(&mut self, name: &str, define: bool) -> Result<u16, CompileError> {
        if let Some(&s) = self.slots.get(name) {
            return Ok(s);
        }
        if !define {
            return Err(CompileError::UndefinedVariable(name.to_string()));
        }
        if self.slots.len() + self.hidden_slots >= u16::MAX as usize {
            return Err(CompileError::TooLarge("variables"));
        }
        let s = (self.slots.len() + self.hidden_slots) as u16;
        self.slots.insert(name.to_string(), s);
        Ok(s)
    }

    fn hidden_slot(&mut self) -> Result<u16, CompileError> {
        if self.slots.len() + self.hidden_slots >= u16::MAX as usize {
            return Err(CompileError::TooLarge("variables"));
        }
        let s = (self.slots.len() + self.hidden_slots) as u16;
        self.hidden_slots += 1;
        Ok(s)
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.statement(s)?;
        }
        Ok(())
    }

    fn statement(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let { name, value } => {
                self.expr(value)?;
                let slot = self.slot(name, true)?;
                self.emit(Instr::StoreVar(slot));
            }
            Stmt::Assign { name, value } => {
                self.expr(value)?;
                let slot = self.slot(name, false)?;
                self.emit(Instr::StoreVar(slot));
            }
            Stmt::IndexAssign { array, index, value } => {
                let slot = self.slot(array, false)?;
                self.emit(Instr::LoadVar(slot));
                self.expr(index)?;
                self.expr(value)?;
                self.emit(Instr::IndexStore);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.emit(Instr::Pop);
            }
            Stmt::If { cond, then_block, else_block } => {
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.block(then_block)?;
                if else_block.is_empty() {
                    let end = self.here();
                    self.patch(jf, end);
                } else {
                    let jend = self.emit(Instr::Jump(0));
                    let else_start = self.here();
                    self.patch(jf, else_start);
                    self.block(else_block)?;
                    let end = self.here();
                    self.patch(jend, end);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.here();
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.block(body)?;
                self.emit(Instr::Jump(top));
                let end = self.here();
                self.patch(jf, end);
            }
            Stmt::For { var, start, end, body } => {
                // i = start; END = end; while i < END { body; i = i + 1; }
                self.expr(start)?;
                let i_slot = self.slot(var, true)?;
                self.emit(Instr::StoreVar(i_slot));
                self.expr(end)?;
                let end_slot = self.hidden_slot()?;
                self.emit(Instr::StoreVar(end_slot));
                let top = self.here();
                self.emit(Instr::LoadVar(i_slot));
                self.emit(Instr::LoadVar(end_slot));
                self.emit(Instr::Lt);
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.block(body)?;
                self.emit(Instr::LoadVar(i_slot));
                let one = self.constant(Const::Int(1))?;
                self.emit(Instr::PushConst(one));
                self.emit(Instr::Add);
                self.emit(Instr::StoreVar(i_slot));
                self.emit(Instr::Jump(top));
                let endp = self.here();
                self.patch(jf, endp);
            }
            Stmt::Return => {
                self.emit(Instr::Halt);
            }
        }
        Ok(())
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Int(v) => {
                let c = self.constant(Const::Int(*v))?;
                self.emit(Instr::PushConst(c));
            }
            Expr::Float(v) => {
                let c = self.constant(Const::Float(*v))?;
                self.emit(Instr::PushConst(c));
            }
            Expr::Bool(v) => {
                let c = self.constant(Const::Bool(*v))?;
                self.emit(Instr::PushConst(c));
            }
            Expr::Str(s) => {
                let c = self.constant(Const::Str(s.clone()))?;
                self.emit(Instr::PushConst(c));
            }
            Expr::Var(name) => {
                let slot = self.slot(name, false)?;
                self.emit(Instr::LoadVar(slot));
            }
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                // lhs; Dup; JumpIfFalse end; Pop; rhs; end:
                self.expr(lhs)?;
                self.emit(Instr::Dup);
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.emit(Instr::Pop);
                self.expr(rhs)?;
                let end = self.here();
                self.patch(jf, end);
            }
            Expr::Binary { op: BinOp::Or, lhs, rhs } => {
                self.expr(lhs)?;
                self.emit(Instr::Dup);
                let jt = self.emit(Instr::JumpIfTrue(0));
                self.emit(Instr::Pop);
                self.expr(rhs)?;
                let end = self.here();
                self.patch(jt, end);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.emit(match op {
                    BinOp::Add => Instr::Add,
                    BinOp::Sub => Instr::Sub,
                    BinOp::Mul => Instr::Mul,
                    BinOp::Div => Instr::Div,
                    BinOp::Rem => Instr::Rem,
                    BinOp::Eq => Instr::Eq,
                    BinOp::Ne => Instr::Ne,
                    BinOp::Lt => Instr::Lt,
                    BinOp::Le => Instr::Le,
                    BinOp::Gt => Instr::Gt,
                    BinOp::Ge => Instr::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
            Expr::Unary { op, expr } => {
                self.expr(expr)?;
                self.emit(match op {
                    UnOp::Neg => Instr::Neg,
                    UnOp::Not => Instr::Not,
                });
            }
            Expr::Index { array, index } => {
                self.expr(array)?;
                self.expr(index)?;
                self.emit(Instr::Index);
            }
            Expr::Call { name, args } => {
                let id = builtin_index(name)
                    .ok_or_else(|| CompileError::UnknownFunction(name.clone()))?;
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Instr::Call { id, argc: args.len() as u8 });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_straight_line_code() {
        let p = compile("let x = 1 + 2.5;").unwrap();
        assert!(p.instructions.len() >= 4);
        assert!(matches!(p.instructions.last(), Some(Instr::Halt)));
        assert_eq!(p.num_slots, 1);
    }

    #[test]
    fn undefined_variable_rejected() {
        assert_eq!(compile("x = 3;"), Err(CompileError::UndefinedVariable("x".to_string())));
        assert!(matches!(compile("let y = z;"), Err(CompileError::UndefinedVariable(_))));
    }

    #[test]
    fn unknown_function_rejected() {
        assert_eq!(
            compile("let x = frobnicate(1);"),
            Err(CompileError::UnknownFunction("frobnicate".to_string()))
        );
    }

    #[test]
    fn constants_are_deduplicated() {
        let p = compile("let a = 1; let b = 1; let c = 1;").unwrap();
        let ints = p.constants.iter().filter(|c| matches!(c, Const::Int(1))).count();
        assert_eq!(ints, 1);
    }

    #[test]
    fn for_loop_allocates_hidden_slot() {
        let p = compile("let s = 0; for i in 0..10 { s = s + i; }").unwrap();
        // s, i, hidden end-bound.
        assert_eq!(p.num_slots, 3);
    }

    #[test]
    fn jumps_are_patched_in_bounds() {
        let p =
            compile("let x = 0; if x < 5 { x = 1; } else { x = 2; } while x > 0 { x = x - 1; }")
                .unwrap();
        for (idx, i) in p.instructions.iter().enumerate() {
            if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = i {
                assert!((*t as usize) <= p.instructions.len(), "instr {idx} jumps to {t}");
            }
        }
    }
}
