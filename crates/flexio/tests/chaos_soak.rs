//! Time-boxed chaos soak: `FLEXIO_SOAK_SECS=<n>` turns this no-op test
//! into an n-second loop of faulted couplings, sweeping a fresh fault seed
//! every iteration and alternating the blocking and reactor backends. Each
//! iteration is a *multi-stream* round: two couplings run concurrently, one
//! on the shared-memory transport and one on real TCP sockets (which
//! stream gets which backend alternates too, so every runtime × transport
//! pair is soaked). Any seed that loses data, wedges a handshake or panics
//! an engine fails the run — this is the long-tail search the fixed
//! 20-seed sweep in `scripts/verify.sh` cannot afford on every invocation.
//! Unset, the test returns immediately so the default suite stays fast.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use adios::{BoxSel, ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use common::{block_1d, couple};
use evpath::{FaultPlan, FaultSpec};
use flexio::{CachingLevel, Runtime, StreamHints, Transport};

/// One faulted coupling: 2 writers × 1 reader × 2 steps under 50%
/// duplicate + 50% reorder on the data channels; the reader asserts every
/// element it assembles.
fn soak_once(seed: u64, runtime: Runtime, transport: Transport) {
    const STEPS: u64 = 2;
    let mut plan = FaultPlan::new(seed);
    plan.set(
        "data",
        FaultSpec { dup_per_mille: 500, reorder_per_mille: 500, ..Default::default() },
    );
    let hints = StreamHints {
        caching: CachingLevel::CachingAll,
        faults: Some(Arc::new(plan)),
        runtime,
        transport,
        ..StreamHints::default()
    };
    let (_, steps) = couple(
        2,
        1,
        hints,
        |mut w, rank| {
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> =
                    (0..4).map(|i| (step * 100 + rank as u64 * 4 + i) as f64).collect();
                w.write("field", block_1d(rank as u64 * 4, data, 8));
                w.end_step();
            }
            w.close();
        },
        move |mut r, _| {
            let whole = BoxSel::whole(&[8]);
            r.subscribe("field", Selection::GlobalBox(whole.clone()));
            let mut seen = 0;
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("field", &Selection::GlobalBox(whole.clone())).unwrap();
                        let VarValue::Block(b) = v else { panic!() };
                        for (g, &x) in b.data.as_f64().iter().enumerate() {
                            assert_eq!(
                                x,
                                (step * 100 + g as u64) as f64,
                                "seed {seed} {runtime:?} {transport:?} step {step} idx {g}"
                            );
                        }
                        seen += 1;
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            seen
        },
    );
    assert_eq!(steps, vec![STEPS as usize], "seed {seed} {runtime:?} {transport:?} lost steps");
}

#[test]
fn chaos_soak() {
    let Some(secs) = std::env::var("FLEXIO_SOAK_SECS").ok().and_then(|s| s.parse::<u64>().ok())
    else {
        eprintln!("chaos_soak: FLEXIO_SOAK_SECS unset, skipping");
        return;
    };
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut iterations = 0u64;
    while Instant::now() < deadline {
        let seed = 0x50A4 ^ iterations.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let runtime =
            if iterations.is_multiple_of(2) { Runtime::Blocking } else { Runtime::Reactor };
        // Two streams in flight at once, one per backend; which stream
        // rides which transport swaps every other iteration.
        let (ta, tb) = if iterations.is_multiple_of(4) || iterations % 4 == 1 {
            (Transport::Shm, Transport::Tcp)
        } else {
            (Transport::Tcp, Transport::Shm)
        };
        let a = std::thread::spawn(move || soak_once(seed, runtime, ta));
        let b = std::thread::spawn(move || soak_once(seed ^ 0x5EED, runtime, tb));
        a.join().expect("shm-or-tcp stream A survived");
        b.join().expect("shm-or-tcp stream B survived");
        iterations += 1;
    }
    assert!(iterations > 0, "soak budget too small to run even one coupling");
    eprintln!("chaos_soak: {iterations} multi-stream faulted rounds survived in {secs}s");
}
