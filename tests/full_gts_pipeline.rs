//! Cross-crate integration: the GTS coupled pipeline (paper §IV.A) from
//! simulation push to merged histograms, over the real stream protocol.

use std::thread;

use adios::{ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use apps::gts::{Gts, GtsConfig, ATTRS};
use apps::{distribution_function, range_query, RangeQuery};
use flexio::{CachingLevel, FlexIo, StreamHints};
use machine::{laptop, CoreLocation};

const SIM_RANKS: usize = 4;
const ANA_RANKS: usize = 2;

fn roster_sim() -> Vec<CoreLocation> {
    (0..SIM_RANKS).map(|r| laptop().node.location_of(r)).collect()
}

fn roster_ana() -> Vec<CoreLocation> {
    (0..ANA_RANKS).map(|r| laptop().node.location_of(15 - r)).collect()
}

#[test]
fn gts_particles_survive_the_stream_bit_exactly() {
    let io = FlexIo::single_node(laptop());
    // Particle counts could vary per step in GTS, so production runs use
    // per-step handshakes; CACHING_LOCAL matches that while skipping the
    // local gather.
    let hints = StreamHints { caching: CachingLevel::CachingLocal, ..StreamHints::default() };

    let io_w = io.clone();
    let hints_w = hints.clone();
    let sim = thread::spawn(move || {
        rankrt::launch(SIM_RANKS, move |comm| {
            let rank = comm.rank();
            let roster = roster_sim();
            let mut w = io_w
                .open_writer("gts", rank, SIM_RANKS, roster[rank], roster, hints_w.clone())
                .unwrap();
            let mut gts =
                Gts::new(rank, GtsConfig { particles_per_rank: 800, ..Default::default() });
            let mut checksums = Vec::new();
            for _ in 0..6 {
                gts.step();
                if gts.should_output() {
                    w.begin_step(gts.cycle());
                    for (name, value) in gts.output_vars() {
                        w.write(&name, value);
                    }
                    w.end_step();
                    checksums.push(gts.zion().data.iter().sum::<f64>());
                }
            }
            w.close();
            checksums
        })
    });

    let io_r = io.clone();
    let ana = thread::spawn(move || {
        rankrt::launch(ANA_RANKS, move |comm| {
            let rank = comm.rank();
            let roster = roster_ana();
            let mut r = io_r
                .open_reader("gts", rank, ANA_RANKS, roster[rank], roster, hints.clone())
                .unwrap();
            let my_writers = [rank, rank + ANA_RANKS];
            for w in my_writers {
                r.subscribe("zion", Selection::ProcessGroup(w));
                r.subscribe("electrons", Selection::ProcessGroup(w));
            }
            // checksum per (writer, step) of the zion array.
            let mut sums: Vec<(usize, f64)> = Vec::new();
            loop {
                match r.begin_step() {
                    StepStatus::Step(_) => {
                        for w in my_writers {
                            let v = r.read("zion", &Selection::ProcessGroup(w)).unwrap();
                            let VarValue::Block(b) = v else { panic!() };
                            assert_eq!(b.count[1], ATTRS as u64, "7 attributes preserved");
                            sums.push((w, b.data.as_f64().iter().sum::<f64>()));
                            // electrons also arrive.
                            assert!(r.read("electrons", &Selection::ProcessGroup(w)).is_some());
                        }
                        r.end_step();
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            sums
        })
    });

    let writer_sums = sim.join().unwrap();
    let reader_sums = ana.join().unwrap();
    // Each reader saw each of its writers' checksums per step, matching
    // the writer-side values bit-exactly.
    for (reader_rank, sums) in reader_sums.iter().enumerate() {
        assert_eq!(sums.len(), 2 * 3, "2 writers × 3 steps");
        for (step_idx, chunk) in sums.chunks(2).enumerate() {
            for &(w, sum) in chunk {
                assert_eq!(
                    sum, writer_sums[w][step_idx],
                    "reader {reader_rank} step {step_idx} writer {w}"
                );
            }
        }
    }
}

#[test]
fn full_analytics_chain_preserves_population_statistics() {
    // Run the complete analytics offline-equivalent on what crossed the
    // stream: distribution function → range query → selectivity. The
    // streamed-and-reassembled data must give the same answer as local.
    let io = FlexIo::single_node(laptop());
    let hints = StreamHints::default();

    let io_w = io.clone();
    let hints_w = hints.clone();
    let sim = thread::spawn(move || {
        rankrt::launch(2, move |comm| {
            let rank = comm.rank();
            let roster: Vec<CoreLocation> = (0..2).map(|r| laptop().node.location_of(r)).collect();
            let mut w =
                io_w.open_writer("gts2", rank, 2, roster[rank], roster, hints_w.clone()).unwrap();
            let gts = Gts::new(rank, GtsConfig { particles_per_rank: 2000, ..Default::default() });
            w.begin_step(0);
            for (name, value) in gts.output_vars() {
                w.write(&name, value);
            }
            w.end_step();
            w.close();
            // Local ground truth.
            let d = distribution_function(&gts.zion().data, 128, (-2.0, 2.0));
            let q = RangeQuery::twenty_percent_core(&d);
            range_query(&gts.zion().data, &q).len() / ATTRS
        })
    });

    let io_r = io.clone();
    let ana = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = laptop().node.location_of(15);
            let mut r = io_r.open_reader("gts2", 0, 1, core, vec![core], hints.clone()).unwrap();
            r.subscribe("zion", Selection::ProcessGroup(0));
            r.subscribe("zion", Selection::ProcessGroup(1));
            assert_eq!(r.begin_step(), StepStatus::Step(0));
            let mut per_writer = Vec::new();
            for w in 0..2 {
                let v = r.read("zion", &Selection::ProcessGroup(w)).unwrap();
                let VarValue::Block(b) = v else { panic!() };
                let particles = b.data.as_f64().to_vec();
                let d = distribution_function(&particles, 128, (-2.0, 2.0));
                let q = RangeQuery::twenty_percent_core(&d);
                per_writer.push(range_query(&particles, &q).len() / ATTRS);
            }
            r.end_step();
            per_writer
        })
    });

    let local = sim.join().unwrap();
    let streamed = ana.join().unwrap().pop().unwrap();
    assert_eq!(streamed, local, "analytics agree on streamed vs local data");
    // And selectivity is in the ~20% band.
    for &count in &streamed {
        let frac = count as f64 / 2000.0;
        assert!((0.12..0.30).contains(&frac), "selectivity {frac}");
    }
}
