//! **Fig. 4** — "Cost of Dynamic Buffer Allocation and Registration in
//! RDMA Get on Cray XK6 with Gemini Interconnect."
//!
//! Point-to-point Get bandwidth over message size, with buffers either
//! allocated+registered per transfer (dynamic) or reused from the
//! registration cache (static). Two measurements per point: the
//! closed-form interconnect model and the executable `netsim` protocol
//! (registration cache, RTS/Get rendezvous) — they should agree.
//!
//! Run: `cargo run --release -p bench --bin fig4 [--machine titan]`

use netsim::{NetSim, Registration};

fn measured_bandwidth(net: &NetSim, len: usize, registration: Registration) -> f64 {
    let mut a = net.open_port(0);
    let mut b = net.open_port(1);
    let payload = vec![0u8; len];
    // Warm the cache so the "static" path is actually static.
    if registration == Registration::Cached {
        a.send(&b.address(), &payload, registration);
        b.recv();
    }
    const REPS: usize = 8;
    let mut total_ns = 0.0;
    for _ in 0..REPS {
        let receipt = a.send(&b.address(), &payload, registration);
        let (_, recv_ns) = b.recv();
        total_ns += receipt.sender_ns + recv_ns;
    }
    len as f64 / (total_ns / REPS as f64) * 1e9
}

fn main() {
    let machine = bench::machine_arg();
    let ic = machine.interconnect;
    println!("Fig. 4 — RDMA Get bandwidth vs message size ({})", machine.name);
    println!(
        "{:>12} {:>16} {:>16} {:>16} {:>16}",
        "size (B)", "static MB/s", "dynamic MB/s", "static(sim)", "dynamic(sim)"
    );
    let net = NetSim::new(ic, 2);
    for shift in 10..=24 {
        let len = 1usize << shift;
        let static_model = ic.static_reg_bandwidth(len as u64) / 1e6;
        let dynamic_model = ic.dynamic_reg_bandwidth(len as u64) / 1e6;
        let static_sim = measured_bandwidth(&net, len, Registration::Cached) / 1e6;
        let dynamic_sim = measured_bandwidth(&net, len, Registration::Dynamic) / 1e6;
        println!(
            "{len:>12} {static_model:>16.1} {dynamic_model:>16.1} {static_sim:>16.1} {dynamic_sim:>16.1}"
        );
    }
    println!(
        "\nShape check (paper): dynamic registration costs roughly half the\n\
         bandwidth at small-to-mid sizes and narrows at large messages."
    );
}
