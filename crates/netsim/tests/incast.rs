//! Integration: the Get-scheduling policy under incast — many senders
//! pushing bulk data toward one staging node (paper §II.E: the scheduling
//! technique "can effectively reduce network contention").

use std::sync::Arc;
use std::thread;

use machine::InterconnectParams;
use netsim::{GetScheduler, NetSim, Registration, SchedulingPolicy};

const SENDERS: usize = 6;
const SIZE: usize = 2 << 20;

/// Run an incast: `SENDERS` nodes each send one bulk message to its own
/// receiver port on node 0; receiver ports share `scheduler` and drain
/// concurrently. Returns the mean modelled receive time.
fn incast(scheduler_for: impl Fn() -> GetScheduler + Sync) -> f64 {
    let net = NetSim::new(InterconnectParams::gemini(), SENDERS + 1);
    let net = Arc::new(net);
    let mut handles = Vec::new();
    let mut addresses = Vec::new();
    let mut receivers = Vec::new();
    for s in 0..SENDERS {
        let rx = net.open_port_with_scheduler(0, scheduler_for());
        addresses.push(rx.address());
        receivers.push(rx);
        let tx_net = Arc::clone(&net);
        let dst = addresses[s];
        handles.push(thread::spawn(move || {
            let mut tx = tx_net.open_port(s + 1);
            tx.send(&dst, &vec![1u8; SIZE], Registration::Cached);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Drain concurrently so the receive-side flows genuinely overlap.
    let drains: Vec<_> = receivers
        .into_iter()
        .map(|mut rx| {
            thread::spawn(move || {
                let (payload, ns) = rx.recv();
                assert_eq!(payload.len(), SIZE);
                ns
            })
        })
        .collect();
    let times: Vec<f64> = drains.into_iter().map(|d| d.join().unwrap()).collect();
    times.iter().sum::<f64>() / times.len() as f64
}

#[test]
fn windowed_scheduling_reduces_per_transfer_contention() {
    // Unthrottled: every Get proceeds at once; the receiving NIC divides
    // its bandwidth across all concurrent flows.
    let unthrottled = incast(|| GetScheduler::new(SchedulingPolicy::Unthrottled));
    // Windowed(1) shared across the node's ports: one Get at a time, each
    // at (nearly) full NIC bandwidth.
    let shared = GetScheduler::new(SchedulingPolicy::Windowed(1));
    let windowed = incast(|| shared.clone());
    // Per-transfer modelled time must be markedly lower when scheduled
    // (the windowed transfer sees ~no contention; the unthrottled ones
    // share the NIC several ways).
    assert!(
        windowed < unthrottled * 0.8,
        "windowed {windowed:.0} ns should beat unthrottled {unthrottled:.0} ns per transfer"
    );
}

#[test]
fn scheduling_preserves_every_payload() {
    let shared = GetScheduler::new(SchedulingPolicy::Windowed(2));
    let mean = incast(|| shared.clone());
    assert!(mean.is_finite() && mean > 0.0);
}
