//! The canned Data Conditioning plug-ins from paper §II.F.
//!
//! "Useful examples of DC Plug-ins include data markup, annotation,
//! sampling, bounding box, unit conversion, etc." Each function here
//! returns a ready-to-compile source string, parameterized where the
//! reader-side caller would parameterize it (field names, thresholds,
//! sampling strides). FlexIO ships these strings to whichever address
//! space the plug-in should run in.

/// Keep every `stride`-th element of `field` (paper: "sampling").
pub fn sampling(field: &str, stride: usize) -> String {
    format!(
        r#"// DC plug-in: sampling
let v = get_f64("{field}");
let out = array();
for i in 0..len(v) {{
    if i % {stride} == 0 {{ push(out, v[i]); }}
}}
emit_f64("{field}", out);
emit_int("dc_sampled_stride", {stride});
"#
    )
}

/// Keep elements of `field` inside `[lo, hi]` (paper: "bounding box" /
/// the GTS velocity range query is this with the query's bounds).
pub fn bounding_box(field: &str, lo: f64, hi: f64) -> String {
    format!(
        r#"// DC plug-in: bounding box / range selection
let v = get_f64("{field}");
let out = array();
for i in 0..len(v) {{
    if v[i] >= {lo} && v[i] <= {hi} {{ push(out, v[i]); }}
}}
emit_f64("{field}", out);
emit_int("dc_selected", len(out));
"#
    )
}

/// Multiply every element of `field` by `factor` (paper: "unit
/// conversion").
pub fn unit_conversion(field: &str, factor: f64) -> String {
    format!(
        r#"// DC plug-in: unit conversion
let v = get_f64("{field}");
let out = array();
for i in 0..len(v) {{ push(out, v[i] * {factor}); }}
emit_f64("{field}", out);
"#
    )
}

/// Pass `field` through and attach provenance markup (paper: "data
/// markup, annotation").
pub fn annotate(field: &str, tag: &str) -> String {
    format!(
        r#"// DC plug-in: annotation / data markup
let v = get_f64("{field}");
emit_f64("{field}", v);
emit_str("dc_annotation", "{tag}");
emit_int("dc_count", len(v));
emit_float("dc_sum", sum(v));
"#
    )
}

/// Reduce `field` to summary statistics only — an aggressive data
/// reduction conditioning step (min/max/mean), dropping the raw data.
pub fn summarize(field: &str) -> String {
    format!(
        r#"// DC plug-in: summary statistics reduction
let v = get_f64("{field}");
let n = len(v);
if n == 0 {{
    emit_int("dc_count", 0);
    return;
}}
let lo = v[0];
let hi = v[0];
for i in 1..n {{
    lo = min(lo, v[i]);
    hi = max(hi, v[i]);
}}
emit_int("dc_count", n);
emit_float("dc_min", lo);
emit_float("dc_max", hi);
emit_float("dc_mean", sum(v) / float(n));
"#
    )
}

#[cfg(test)]
mod tests {
    use crate::Codelet;
    use evpath::{FieldValue, Record};

    fn particles() -> Record {
        Record::new()
            .with("velocity", FieldValue::F64Array(vec![0.1, 0.9, 1.5, 2.4, 3.0, 0.5, 1.1, 2.0]))
    }

    #[test]
    fn sampling_keeps_every_kth() {
        let c = Codelet::compile(&super::sampling("velocity", 3)).unwrap();
        let out = c.run(&particles()).unwrap();
        assert_eq!(out.get_f64_array("velocity"), Some(&[0.1, 2.4, 1.1][..]));
        assert_eq!(out.get_i64("dc_sampled_stride"), Some(3));
    }

    #[test]
    fn bounding_box_filters_range() {
        let c = Codelet::compile(&super::bounding_box("velocity", 1.0, 2.4)).unwrap();
        let out = c.run(&particles()).unwrap();
        assert_eq!(out.get_f64_array("velocity"), Some(&[1.5, 2.4, 1.1, 2.0][..]));
        assert_eq!(out.get_i64("dc_selected"), Some(4));
    }

    #[test]
    fn unit_conversion_scales() {
        let c = Codelet::compile(&super::unit_conversion("velocity", 100.0)).unwrap();
        let out = c.run(&particles()).unwrap();
        let vals = out.get_f64_array("velocity").unwrap();
        assert_eq!(vals[0], 10.0);
        assert_eq!(vals[4], 300.0);
    }

    #[test]
    fn annotate_adds_markup_preserving_data() {
        let c = Codelet::compile(&super::annotate("velocity", "gts-run-42")).unwrap();
        let out = c.run(&particles()).unwrap();
        assert_eq!(out.get_str("dc_annotation"), Some("gts-run-42"));
        assert_eq!(out.get_i64("dc_count"), Some(8));
        assert_eq!(out.get_f64_array("velocity").unwrap().len(), 8);
    }

    #[test]
    fn summarize_reduces_to_stats() {
        let c = Codelet::compile(&super::summarize("velocity")).unwrap();
        let out = c.run(&particles()).unwrap();
        assert_eq!(out.get_i64("dc_count"), Some(8));
        assert_eq!(out.get_f64("dc_min"), Some(0.1));
        assert_eq!(out.get_f64("dc_max"), Some(3.0));
        assert!((out.get_f64("dc_mean").unwrap() - 1.4375).abs() < 1e-12);
        assert!(out.get("velocity").is_none(), "raw data must be dropped");
    }

    #[test]
    fn summarize_empty_input() {
        let input = Record::new().with("velocity", FieldValue::F64Array(vec![]));
        let c = Codelet::compile(&super::summarize("velocity")).unwrap();
        let out = c.run(&input).unwrap();
        assert_eq!(out.get_i64("dc_count"), Some(0));
        assert!(out.get("dc_min").is_none());
    }

    #[test]
    fn plugins_survive_source_round_trip() {
        // Migration ships the *source*; recompiling elsewhere must agree.
        let src = super::bounding_box("velocity", 0.5, 2.0);
        let original = Codelet::compile(&src).unwrap();
        let migrated = Codelet::compile(original.source()).unwrap();
        let a = original.run(&particles()).unwrap();
        let b = migrated.run(&particles()).unwrap();
        assert_eq!(a, b);
    }
}
