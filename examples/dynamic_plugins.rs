//! Data Conditioning plug-ins in motion (paper §II.F): a reader deploys a
//! sampling plug-in into the writer's address space, observes the data
//! volume drop, then migrates the plug-in to its own side at runtime and
//! watches the volume climb back while results stay identical.
//!
//! Run with: `cargo run --example dynamic_plugins`

use std::thread;

use adios::{ReadEngine, Selection, StepStatus, VarValue, WriteEngine};
use flexio::{FlexIo, MonitorEvent, PluginPlacement, PluginSpec, StreamHints, WriteMode};
use machine::{laptop, CoreLocation};

const STEPS: u64 = 6;
const N: usize = 10_000;
const STRIDE: usize = 10;

fn main() {
    let io = FlexIo::single_node(laptop());
    // Synchronous writes keep the two sides in lockstep so the migration
    // point is deterministic.
    let hints = StreamHints { write_mode: WriteMode::Sync, ..StreamHints::default() };

    let io_w = io.clone();
    let hints_w = hints.clone();
    let writer = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = CoreLocation { node: 0, numa: 0, core: 0 };
            let mut w = io_w
                .open_writer("signal", 0, 1, core, vec![core], hints_w.clone())
                .expect("open writer");
            for step in 0..STEPS {
                w.begin_step(step);
                let data: Vec<f64> = (0..N).map(|i| (step as usize * N + i) as f64).collect();
                w.write(
                    "signal",
                    VarValue::Block(
                        adios::LocalBlock {
                            global_shape: vec![N as u64],
                            offset: vec![0],
                            count: vec![N as u64],
                            data: adios::ArrayData::F64(data),
                        }
                        .validated(),
                    ),
                );
                w.end_step();
            }
            let link = w.link().clone();
            w.close();
            link
        })
    });

    let io_r = io.clone();
    let reader = thread::spawn(move || {
        rankrt::launch(1, move |_| {
            let core = CoreLocation { node: 0, numa: 1, core: 0 };
            let mut r = io_r
                .open_reader("signal", 0, 1, core, vec![core], hints.clone())
                .expect("open reader");
            r.subscribe("signal", Selection::ProcessGroup(0));
            let sampling = |placement| PluginSpec {
                var: "signal".to_string(),
                source: codelet::plugins::sampling("signal", STRIDE),
                placement,
            };
            // Phase 1: conditioning inside the WRITER — only 1/STRIDE of
            // the samples ever cross the transport.
            r.install_plugin(sampling(PluginPlacement::WriterSide));
            let monitor = r.link().monitor.clone();
            let mut migrated = false;
            let mut per_step_bytes = Vec::new();
            let mut lens = Vec::new();
            let mut prev_bytes = 0;
            loop {
                match r.begin_step() {
                    StepStatus::Step(step) => {
                        let v = r.read("signal", &Selection::ProcessGroup(0)).unwrap();
                        let VarValue::Block(b) = v else { unreachable!() };
                        lens.push(b.data.as_f64().len());
                        let now = monitor.total_bytes(MonitorEvent::DataSend);
                        per_step_bytes.push(now - prev_bytes);
                        prev_bytes = now;
                        r.end_step();
                        if step == 2 && !migrated {
                            migrated = true;
                            println!("-- migrating the sampling plug-in to the reader side --");
                            r.install_plugin(sampling(PluginPlacement::ReaderSide));
                        }
                    }
                    StepStatus::EndOfStream => break,
                }
            }
            (per_step_bytes, lens)
        })
    });

    let _writer_link = writer.join().expect("writer");
    let mut results = reader.join().expect("reader");
    let (bytes, lens) = results.pop().expect("one reader");
    println!("{:<6} {:>14} {:>12}", "step", "wire bytes", "samples");
    for (i, (b, l)) in bytes.iter().zip(&lens).enumerate() {
        println!("{i:<6} {b:>14} {l:>12}");
    }
    // Every step delivers the sampled signal regardless of where the
    // plug-in ran.
    assert!(lens.iter().all(|&l| l == N / STRIDE), "conditioned length stable: {lens:?}");
    // Writer-side conditioning kept early steps small on the wire; after
    // migration (takes effect within a step) the full signal crosses.
    let early = bytes[1] as f64;
    let late = *bytes.last().expect("steps ran") as f64;
    assert!(
        late > early * (STRIDE as f64) * 0.5,
        "wire volume must grow after migration: early {early}, late {late}"
    );
    println!("writer-side conditioning moved ~{:.0}x fewer bytes than reader-side.", late / early);
}
