//! Differential testing of the codelet compiler+VM against a direct AST
//! reference evaluator: random expressions must produce identical values
//! through both paths (catching compiler bugs in jump patching, operator
//! precedence, stack discipline).

use codelet::ast::{BinOp, Expr, UnOp};
use codelet::Codelet;
use evpath::Record;
use proptest::prelude::*;

/// Reference semantics for integer expressions (mirrors the VM's wrapping
/// arithmetic and error conditions).
fn eval_ref(e: &Expr) -> Option<i64> {
    Some(match e {
        Expr::Int(v) => *v,
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_ref(lhs)?;
            let b = eval_ref(rhs)?;
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                _ => unreachable!("generator emits arithmetic only"),
            }
        }
        Expr::Unary { op: UnOp::Neg, expr } => eval_ref(expr)?.wrapping_neg(),
        _ => unreachable!("generator emits arithmetic only"),
    })
}

/// Render an arithmetic AST back to codelet source.
fn to_source(e: &Expr) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                format!("(0 - {})", v.unsigned_abs())
            } else {
                v.to_string()
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                _ => unreachable!(),
            };
            format!("({} {} {})", to_source(lhs), o, to_source(rhs))
        }
        Expr::Unary { op: UnOp::Neg, expr } => format!("(-{})", to_source(expr)),
        _ => unreachable!(),
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (-50i64..50).prop_map(Expr::Int);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0..5usize).prop_map(|(l, r, op)| {
                let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem][op];
                Expr::Binary { op, lhs: Box::new(l), rhs: Box::new(r) }
            }),
            inner.prop_map(|e| Expr::Unary { op: UnOp::Neg, expr: Box::new(e) }),
        ]
    })
}

proptest! {
    #[test]
    fn compiled_vm_matches_reference(expr in arb_expr()) {
        let src = format!("emit_int(\"r\", {});", to_source(&expr));
        let code = Codelet::compile(&src).expect("generated source is valid");
        let result = code.run(&Record::new());
        match eval_ref(&expr) {
            Some(v) => {
                let out = result.expect("reference evaluated, VM must too");
                prop_assert_eq!(out.get_i64("r"), Some(v));
            }
            None => {
                // Division by zero: both reject.
                prop_assert!(result.is_err());
            }
        }
    }

    /// Comparison chains: the VM's boolean results match Rust's.
    #[test]
    fn comparisons_match(a in -100i64..100, b in -100i64..100) {
        let src = format!(
            "emit_int(\"lt\", 0); if {a} < {b} {{ emit_int(\"lt\", 1); }}\
             emit_int(\"le\", 0); if {a} <= {b} {{ emit_int(\"le\", 1); }}\
             emit_int(\"eq\", 0); if {a} == {b} {{ emit_int(\"eq\", 1); }}"
        );
        // Negative literals need parentheses in source form.
        let src = src.replace("if -", "if 0 -");
        let code = Codelet::compile(&src);
        prop_assume!(code.is_ok());
        let out = code.unwrap().run(&Record::new()).unwrap();
        if a >= 0 && b >= 0 {
            prop_assert_eq!(out.get_i64("lt"), Some(i64::from(a < b)));
            prop_assert_eq!(out.get_i64("le"), Some(i64::from(a <= b)));
            prop_assert_eq!(out.get_i64("eq"), Some(i64::from(a == b)));
        }
    }

    /// Loop summation matches the closed form for arbitrary bounds.
    #[test]
    fn loops_sum_correctly(n in 0i64..200) {
        let src = format!(
            "let s = 0; for i in 0..{n} {{ s = s + i; }} emit_int(\"s\", s);"
        );
        let out = Codelet::compile(&src).unwrap().run(&Record::new()).unwrap();
        prop_assert_eq!(out.get_i64("s"), Some(n * (n - 1) / 2));
    }

    /// The sampling plug-in agrees with a direct Rust filter for random
    /// arrays and strides.
    #[test]
    fn sampling_plugin_matches_rust(
        values in proptest::collection::vec(-1e6f64..1e6, 0..300),
        stride in 1usize..12,
    ) {
        let plugin = Codelet::compile(&codelet::plugins::sampling("x", stride)).unwrap();
        let input = Record::new().with("x", evpath::FieldValue::F64Array(values.clone()));
        let out = plugin.run(&input).unwrap();
        let expected: Vec<f64> =
            values.iter().copied().step_by(stride).collect();
        prop_assert_eq!(out.get_f64_array("x"), Some(expected.as_slice()));
    }

    /// The bounding-box plug-in agrees with a direct Rust filter.
    #[test]
    fn bounding_box_plugin_matches_rust(
        values in proptest::collection::vec(-100f64..100.0, 0..300),
        lo in -50f64..0.0,
        hi in 0f64..50.0,
    ) {
        let plugin = Codelet::compile(&codelet::plugins::bounding_box("x", lo, hi)).unwrap();
        let input = Record::new().with("x", evpath::FieldValue::F64Array(values.clone()));
        let out = plugin.run(&input).unwrap();
        let expected: Vec<f64> =
            values.iter().copied().filter(|v| (lo..=hi).contains(v)).collect();
        prop_assert_eq!(out.get_f64_array("x"), Some(expected.as_slice()));
        prop_assert_eq!(out.get_i64("dc_selected"), Some(expected.len() as i64));
    }
}
